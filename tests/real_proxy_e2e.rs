//! End-to-end tests of the real-socket proxy over 127.0.0.1: browser →
//! C-Saw proxy → censoring middlebox → origin, all actual TCP.

use csaw_proxy::codec::{read_response, write_request};
use csaw_proxy::testbed::{
    spawn_middlebox, spawn_origin, MbAction, MbPolicy, OriginConfig, TestResolver,
};
use csaw_proxy::{spawn_proxy, CsawProxy, HostStatus, ProxyConfig, ProxySignature};
use csaw_webproto::bytes::BytesMut;
use csaw_webproto::http::{Request, Response};
use csaw_webproto::url::Url;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

struct Testbed {
    proxy: CsawProxy,
    middlebox: csaw_proxy::Middlebox,
    _origins: Vec<csaw_proxy::Origin>,
}

fn testbed() -> Testbed {
    let blocked = spawn_origin(OriginConfig::new("blocked.test", 50_000).page(
        "/small",
        "<html><body>tiny real page with plenty of words in it</body></html>",
    ))
    .unwrap();
    let clean = spawn_origin(OriginConfig::new("clean.test", 30_000)).unwrap();
    let mut policy = MbPolicy {
        block_page_html: "<html><head><title>Blocked</title></head><body><h1>Access Denied</h1>\
             <p>restricted by court order</p></body></html>"
            .into(),
        ..Default::default()
    };
    policy.routes.insert("blocked.test".into(), blocked.addr);
    policy.routes.insert("clean.test".into(), clean.addr);
    let middlebox = spawn_middlebox(policy).unwrap();
    let resolver = Arc::new(TestResolver::new());
    resolver.insert("blocked.test", middlebox.addr, blocked.addr);
    resolver.insert("clean.test", middlebox.addr, clean.addr);
    let proxy = spawn_proxy(
        Arc::clone(&resolver),
        ProxyConfig {
            get_timeout: Duration::from_millis(400),
            ..ProxyConfig::default()
        },
    )
    .unwrap();
    Testbed {
        proxy,
        middlebox,
        _origins: vec![blocked, clean],
    }
}

fn browse(proxy: &CsawProxy, host: &str) -> Response {
    let mut s = TcpStream::connect(proxy.addr).unwrap();
    let url = Url::parse(&format!("http://{host}/")).unwrap();
    write_request(&mut s, &Request::get(&url)).unwrap();
    let mut buf = BytesMut::new();
    read_response(&mut s, &mut buf).unwrap()
}

#[test]
fn clean_host_served_direct() {
    let tb = testbed();
    let r = browse(&tb.proxy, "clean.test");
    assert_eq!(r.status, 200);
    assert!(r.body.len() > 25_000);
    assert_eq!(tb.proxy.host_status("clean.test"), HostStatus::NotBlocked);
    assert!(tb.proxy.measurements().is_empty());
}

#[test]
fn block_page_detected_and_circumvented() {
    let tb = testbed();
    tb.middlebox.set_action("blocked.test", MbAction::BlockPage);
    let r = browse(&tb.proxy, "blocked.test");
    let body = String::from_utf8_lossy(&r.body);
    assert!(
        !body.contains("Access Denied"),
        "user must get the genuine page, got block page"
    );
    assert!(r.body.len() > 25_000, "genuine page is large");
    match tb.proxy.host_status("blocked.test") {
        HostStatus::Blocked(sig) => assert_eq!(sig, ProxySignature::BlockPage),
        other => panic!("status {other:?}"),
    }
}

#[test]
fn dropped_get_detected_and_circumvented() {
    let tb = testbed();
    tb.middlebox
        .set_action("blocked.test", MbAction::DropRequest);
    let r = browse(&tb.proxy, "blocked.test");
    assert_eq!(r.status, 200);
    assert!(r.body.len() > 25_000);
    match tb.proxy.host_status("blocked.test") {
        HostStatus::Blocked(sig) => assert_eq!(sig, ProxySignature::GetTimeout),
        other => panic!("status {other:?}"),
    }
}

#[test]
fn reset_detected_and_circumvented() {
    let tb = testbed();
    tb.middlebox.set_action("blocked.test", MbAction::Reset);
    let r = browse(&tb.proxy, "blocked.test");
    assert_eq!(r.status, 200);
    match tb.proxy.host_status("blocked.test") {
        HostStatus::Blocked(sig) => assert_eq!(sig, ProxySignature::ConnectionReset),
        other => panic!("status {other:?}"),
    }
}

#[test]
fn mid_run_blocking_event_caught_by_inline_measurement() {
    let tb = testbed();
    // Phase 1: clean. Establishes NotBlocked status.
    let r = browse(&tb.proxy, "blocked.test");
    assert!(r.body.len() > 25_000);
    assert_eq!(tb.proxy.host_status("blocked.test"), HostStatus::NotBlocked);
    // Phase 2: the censor switches on (the §7.5 event).
    tb.middlebox.set_action("blocked.test", MbAction::BlockPage);
    let r = browse(&tb.proxy, "blocked.test");
    let body = String::from_utf8_lossy(&r.body);
    assert!(
        !body.contains("Access Denied"),
        "served genuine content after refresh"
    );
    assert!(matches!(
        tb.proxy.host_status("blocked.test"),
        HostStatus::Blocked(ProxySignature::BlockPage)
    ));
    // Phase 3: subsequent requests go straight to circumvention.
    let r = browse(&tb.proxy, "blocked.test");
    assert!(r.body.len() > 25_000);
}

#[test]
fn measurement_log_exports_reports() {
    let tb = testbed();
    tb.middlebox.set_action("blocked.test", MbAction::BlockPage);
    browse(&tb.proxy, "blocked.test");
    let reports = tb.proxy.to_reports(17557);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].url, "http://blocked.test/");
    assert_eq!(reports[0].asn, 17557);
    // The wire format round-trips into the (simulated) server.
    let wire = csaw::global::Report::encode_batch(&reports);
    let server = csaw::global::ServerDb::builder(5).build().unwrap();
    let uuid = server
        .register(csaw_simnet::SimTime::from_secs(1), 0.0)
        .unwrap();
    let batch =
        csaw::global::Batch::from_wire(uuid, &wire, csaw_simnet::SimTime::from_secs(2)).unwrap();
    let receipt = server.ingest(batch).unwrap();
    assert_eq!(receipt.accepted, 1);
    assert_eq!(server.stats().unique_blocked_urls, 1);
}

#[test]
fn concurrent_browsers_share_measurements() {
    let tb = testbed();
    tb.middlebox
        .set_action("blocked.test", MbAction::DropRequest);
    // Ten concurrent browsers hit the blocked host at once.
    let mut handles = Vec::new();
    for _ in 0..10 {
        let addr = tb.proxy.addr;
        handles.push(std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let url = Url::parse("http://blocked.test/").unwrap();
            write_request(&mut s, &Request::get(&url)).unwrap();
            let mut buf = BytesMut::new();
            read_response(&mut s, &mut buf).unwrap()
        }));
    }
    for h in handles {
        let r = h.join().unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body.len() > 25_000);
    }
    // The status converged to Blocked regardless of interleaving.
    assert!(matches!(
        tb.proxy.host_status("blocked.test"),
        HostStatus::Blocked(_)
    ));
}

#[test]
fn absolute_form_targets_are_rewritten() {
    // Browsers talking to a forward proxy send absolute-form targets
    // ("GET http://host/path HTTP/1.1"); upstreams expect origin-form.
    let tb = testbed();
    let mut s = TcpStream::connect(tb.proxy.addr).unwrap();
    let mut req = Request::get(&Url::parse("http://clean.test/some/page").unwrap());
    req.target = "http://clean.test/some/page".to_string();
    csaw_proxy::codec::write_request(&mut s, &req).unwrap();
    let mut buf = BytesMut::new();
    let resp = csaw_proxy::codec::read_response(&mut s, &mut buf).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.len() > 25_000, "origin served the page");
}

#[test]
fn https_scheme_is_preserved_in_reports() {
    // A browser asking the proxy for an https URL (absolute-form
    // target) must see that scheme in the exported report — a censor
    // blocking https://host but not http://host is a distinct record.
    let tb = testbed();
    tb.middlebox.set_action("blocked.test", MbAction::BlockPage);
    let mut s = TcpStream::connect(tb.proxy.addr).unwrap();
    let mut req = Request::get(&Url::parse("http://blocked.test/").unwrap());
    req.target = "https://blocked.test/".to_string();
    write_request(&mut s, &req).unwrap();
    let mut buf = BytesMut::new();
    let r = read_response(&mut s, &mut buf).unwrap();
    assert_eq!(r.status, 200, "circumvented copy served");
    let reports = tb.proxy.to_reports(17557);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].url, "https://blocked.test/");
}

#[test]
fn measurements_are_stamped_on_the_obs_clock() {
    // The pipeline runs on virtual time; a proxy spawned inside an
    // observability scope must stamp measurements from that scope's
    // clock, not from a private wall-clock epoch.
    let clock = Arc::new(csaw_obs::clock::ManualClock::new());
    clock.set_us(1_234_567);
    let ctx = Arc::new(csaw_obs::scope::ObsCtx::new().with_clock(clock.clone()));
    let _g = csaw_obs::scope::install(ctx);
    let tb = testbed();
    tb.middlebox.set_action("blocked.test", MbAction::BlockPage);
    browse(&tb.proxy, "blocked.test");
    let ms = tb.proxy.measurements();
    assert_eq!(ms.len(), 1);
    assert_eq!(ms[0].measured_at_us, 1_234_567);
    assert_eq!(tb.proxy.to_reports(1)[0].measured_at_us, 1_234_567);
}

#[test]
fn shutdown_does_not_race_arriving_clients() {
    // Regression: the old accept loop checked `stop` only after a
    // blocking accept() returned, so Drop had to inject a wake-up
    // connection that raced real clients arriving at shutdown. Drop
    // while a swarm of clients is mid-connect: it must return promptly
    // (the harness timeout is the failure detector) and never panic.
    for _ in 0..10 {
        let tb = testbed();
        let addr = tb.proxy.addr;
        let hammering: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let _ = TcpStream::connect(addr);
                    }
                })
            })
            .collect();
        drop(tb);
        for h in hammering {
            h.join().unwrap();
        }
    }
}

#[test]
fn garbage_input_does_not_wedge_the_proxy() {
    use std::io::Write;
    let tb = testbed();
    // A client that speaks nonsense gets dropped...
    let mut bad = TcpStream::connect(tb.proxy.addr).unwrap();
    bad.write_all(b"\x16\x03\x01\x02\x00garbage not http at all\r\n\r\n")
        .unwrap();
    bad.flush().unwrap();
    drop(bad);
    // ...and the proxy keeps serving everyone else.
    let r = browse(&tb.proxy, "clean.test");
    assert_eq!(r.status, 200);
}

#[test]
fn missing_host_header_is_a_client_error() {
    let tb = testbed();
    let mut s = TcpStream::connect(tb.proxy.addr).unwrap();
    let mut req = Request::get(&Url::parse("http://clean.test/").unwrap());
    req.headers.remove("Host");
    csaw_proxy::codec::write_request(&mut s, &req).unwrap();
    let mut buf = BytesMut::new();
    let resp = csaw_proxy::codec::read_response(&mut s, &mut buf).unwrap();
    assert_eq!(resp.status, 400);
}

#[test]
fn unresolvable_host_is_bad_gateway() {
    let tb = testbed();
    let r = browse(&tb.proxy, "not-in-resolver.test");
    assert_eq!(r.status, 502);
}
