//! Cross-crate property-based tests on the system's core invariants.

use csaw::global::{Uuid, VoteLedger};
use csaw::local::{LocalDb, Status};
use csaw_censor::blocking::BlockingType;
use csaw_simnet::tcp::{transfer_time, TcpConfig};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_simnet::DetRng;
use csaw_webproto::url::{Host, Scheme, Url};
use proptest::prelude::*;

fn arb_url() -> impl Strategy<Value = Url> {
    (
        prop::bool::ANY,
        prop::collection::vec("[a-z]{2,8}", 1..3),
        prop::collection::vec("[a-z0-9]{1,8}", 0..4),
    )
        .prop_map(|(https, host_labels, segs)| {
            let scheme = if https { Scheme::Https } else { Scheme::Http };
            let host = format!("{}.example", host_labels.join("."));
            let path = format!("/{}", segs.join("/"));
            Url::from_parts(scheme, Host::parse(&host).unwrap(), None, &path, None)
        })
}

fn arb_blocking() -> impl Strategy<Value = BlockingType> {
    prop::sample::select(BlockingType::ALL.to_vec())
}

proptest! {
    /// Aggregation invariant: after recording any sequence of
    /// measurements, looking up a URL that was *directly measured as
    /// blocked* must never read NotBlocked before its record expires
    /// (censorship evidence is only discarded by fresher contradicting
    /// evidence, which this sequence doesn't produce for distinct URLs).
    #[test]
    fn blocked_verdicts_never_silently_vanish(
        urls in prop::collection::vec((arb_url(), arb_blocking()), 1..20)
    ) {
        let mut db = LocalDb::new(SimDuration::from_secs(3600));
        let now = SimTime::from_secs(1);
        // Record each URL as blocked, in order.
        for (u, bt) in &urls {
            db.record_measurement(u, Asn(1), now, Status::Blocked, vec![*bt]);
        }
        // Every recorded URL still reads Blocked.
        for (u, _) in &urls {
            let got = db.lookup(u, now).status;
            prop_assert_eq!(got, Status::Blocked, "lost verdict for {}", u);
        }
    }

    /// Aggregation never stores more records than the non-aggregating
    /// baseline, and lookups agree wherever the baseline has an answer
    /// for blocked URLs.
    #[test]
    fn aggregation_is_a_compression(
        items in prop::collection::vec((arb_url(), prop::bool::ANY), 1..30)
    ) {
        let mut agg = LocalDb::new(SimDuration::from_secs(3600));
        let mut raw = LocalDb::without_aggregation(SimDuration::from_secs(3600));
        let now = SimTime::from_secs(1);
        for (u, blocked) in &items {
            let (status, stages) = if *blocked {
                (Status::Blocked, vec![BlockingType::HttpDrop])
            } else {
                (Status::NotBlocked, vec![])
            };
            agg.record_measurement(u, Asn(1), now, status, stages.clone());
            raw.record_measurement(u, Asn(1), now, status, stages);
        }
        prop_assert!(agg.record_count() <= raw.record_count(),
            "aggregated {} > raw {}", agg.record_count(), raw.record_count());
    }

    /// Vote conservation: a client spends exactly one unit of vote no
    /// matter how many URLs it reports.
    #[test]
    fn vote_mass_is_conserved(
        n_urls in 1usize..200,
        client in 0u64..50
    ) {
        let mut ledger = VoteLedger::new();
        let urls: Vec<(String, Asn)> = (0..n_urls)
            .map(|i| (format!("http://u{i}.example/"), Asn(1)))
            .collect();
        ledger.set_client_report(Uuid::from_raw(client), urls.clone());
        let total: f64 = urls
            .iter()
            .map(|(u, a)| ledger.tally(u, *a).s)
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total vote {total}");
    }

    /// Transfer-time monotonicity: more bytes or more RTT never loads
    /// faster.
    #[test]
    fn transfer_time_monotone(
        size_a in 1u64..5_000_000,
        size_b in 1u64..5_000_000,
        rtt_ms in 5u64..500,
        bw_mbps in 1u64..200
    ) {
        let cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(rtt_ms);
        let bw = bw_mbps * 1_000_000;
        let (lo, hi) = if size_a <= size_b { (size_a, size_b) } else { (size_b, size_a) };
        prop_assert!(transfer_time(lo, rtt, bw, &cfg) <= transfer_time(hi, rtt, bw, &cfg));
        // RTT monotonicity at fixed size, up to the documented one-round
        // discretization slack (a larger RTT enlarges the BDP cap and can
        // save one slow-start round).
        let rtt2 = rtt + SimDuration::from_millis(50);
        let t1 = transfer_time(size_a, rtt, bw, &cfg);
        let t2 = transfer_time(size_a, rtt2, bw, &cfg);
        prop_assert!(t2 + rtt2 >= t1, "t1={t1}, t2={t2}, rtt2={rtt2}");
    }

    /// The phase-1 classifier never flags large, link-rich real pages
    /// regardless of the words they contain.
    #[test]
    fn phase1_structure_gate_holds(size_kb in 20usize..200, word in "[a-z]{4,10}") {
        let mut html = csaw_webproto::synth_html("Any Site", size_kb * 1024);
        // Adversarial: inject blocking vocabulary into the body.
        html.push_str(&format!(
            "<p>the {word} site was blocked and access denied by court order</p></html>"
        ));
        let v = csaw_blockpage::phase1_html(&html, &csaw_blockpage::Phase1Config::default());
        prop_assert_eq!(v, csaw_blockpage::Phase1Verdict::Normal);
    }

    /// Expiry is total: after the TTL passes, every lookup reads
    /// NotMeasured and purging removes every record.
    #[test]
    fn expiry_is_total(
        urls in prop::collection::vec(arb_url(), 1..15),
        ttl_s in 10u64..1000
    ) {
        let mut db = LocalDb::new(SimDuration::from_secs(ttl_s));
        let t0 = SimTime::from_secs(5);
        for u in &urls {
            db.record_measurement(u, Asn(1), t0, Status::Blocked, vec![BlockingType::HttpDrop]);
        }
        let later = t0 + SimDuration::from_secs(ttl_s) + SimDuration::from_secs(1);
        for u in &urls {
            prop_assert_eq!(db.lookup(u, later).status, Status::NotMeasured);
        }
        db.purge_expired(later);
        prop_assert_eq!(db.record_count(), 0);
    }
}

/// Longest-prefix matching agrees with a naive scan over all records.
#[test]
fn lpm_matches_naive_scan() {
    use proptest::test_runner::{Config, TestRunner};
    let mut runner = TestRunner::new(Config::with_cases(200));
    runner
        .run(
            &(
                proptest::collection::vec(
                    (proptest::collection::vec("[ab]{1,2}", 0..4), proptest::bool::ANY),
                    1..12,
                ),
                proptest::collection::vec("[ab]{1,2}", 0..5),
            ),
            |(records, query)| {
                use csaw::local::{LocalRecord, PathTrie, Status};
                let mk_url = |segs: &[String]| {
                    Url::parse(&format!("http://h.example/{}", segs.join("/"))).unwrap()
                };
                let mut trie = PathTrie::new();
                let mut naive: Vec<(Vec<String>, Status)> = Vec::new();
                for (segs, blocked) in &records {
                    let status = if *blocked { Status::Blocked } else { Status::NotBlocked };
                    let rec = match status {
                        Status::Blocked => LocalRecord::blocked(
                            mk_url(segs),
                            Asn(1),
                            SimTime::ZERO,
                            vec![BlockingType::HttpDrop],
                        ),
                        _ => LocalRecord::not_blocked(mk_url(segs), Asn(1), SimTime::ZERO),
                    };
                    trie.insert(segs, rec);
                    // Later inserts at the same path replace earlier ones,
                    // mirroring the trie's semantics.
                    naive.retain(|(s, _)| s != segs);
                    naive.push((segs.clone(), status));
                }
                // Naive LPM: the record with the longest path that is a
                // segment-prefix of the query.
                let expected = naive
                    .iter()
                    .filter(|(s, _)| s.len() <= query.len() && query[..s.len()] == s[..])
                    .max_by_key(|(s, _)| s.len())
                    .map(|(_, st)| *st);
                let got = trie.lpm(&query).map(|r| r.status);
                prop_assert_eq!(got, expected);
                Ok(())
            },
        )
        .unwrap();
}

/// Censor policies survive a serde round trip (deployments ship rule
/// sets as data).
#[test]
fn censor_policy_serde_roundtrip() {
    let policy = csaw_censor::isp_b();
    let json = serde_json::to_string(&policy).expect("serializable");
    let back: csaw_censor::CensorPolicy = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back.rule_count(), policy.rule_count());
    assert_eq!(back.name, policy.name);
    // Behavioural equivalence on a few decisions.
    let mut r1 = DetRng::new(5);
    let mut r2 = DetRng::new(5);
    for host in ["www.youtube.com", "example.com", "adult.example"] {
        assert_eq!(
            policy.on_dns_query(host, None, &mut r1),
            back.on_dns_query(host, None, &mut r2),
            "{host}"
        );
    }
}
