//! Cross-crate randomized tests on the system's core invariants.
//!
//! These were originally property-based tests; they are driven by the
//! workspace's own deterministic [`DetRng`] so the whole suite runs
//! hermetically (and reproducibly: every case derives from a fixed
//! seed, so a failure message's case index pinpoints the exact input).

use csaw::global::{Uuid, VoteLedger};
use csaw::local::{LocalDb, Status};
use csaw_censor::blocking::BlockingType;
use csaw_simnet::tcp::{transfer_time, TcpConfig};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_simnet::DetRng;
use csaw_webproto::url::{Host, Scheme, Url};

const CASES: usize = 200;

fn rand_string(rng: &mut DetRng, alphabet: &[u8], min: usize, max: usize) -> String {
    let n = rng.index(max - min + 1) + min;
    (0..n)
        .map(|_| alphabet[rng.index(alphabet.len())] as char)
        .collect()
}

fn rand_url(rng: &mut DetRng) -> Url {
    let scheme = if rng.chance(0.5) {
        Scheme::Https
    } else {
        Scheme::Http
    };
    let n_labels = rng.index(2) + 1;
    let host = format!(
        "{}.example",
        (0..n_labels)
            .map(|_| rand_string(rng, b"abcdefghijklmnopqrstuvwxyz", 2, 8))
            .collect::<Vec<_>>()
            .join(".")
    );
    let n_segs = rng.index(4);
    let path = format!(
        "/{}",
        (0..n_segs)
            .map(|_| rand_string(rng, b"abcdefghijklmnopqrstuvwxyz0123456789", 1, 8))
            .collect::<Vec<_>>()
            .join("/")
    );
    Url::from_parts(scheme, Host::parse(&host).unwrap(), None, &path, None)
}

fn rand_blocking(rng: &mut DetRng) -> BlockingType {
    BlockingType::ALL[rng.index(BlockingType::ALL.len())]
}

/// Aggregation invariant: after recording any sequence of measurements,
/// looking up a URL that was *directly measured as blocked* must never
/// read NotBlocked before its record expires (censorship evidence is
/// only discarded by fresher contradicting evidence, which this
/// sequence doesn't produce for distinct URLs).
#[test]
fn blocked_verdicts_never_silently_vanish() {
    let mut rng = DetRng::new(0xb10c);
    for case in 0..CASES {
        let n = rng.index(19) + 1;
        let urls: Vec<(Url, BlockingType)> = (0..n)
            .map(|_| (rand_url(&mut rng), rand_blocking(&mut rng)))
            .collect();
        let mut db = LocalDb::new(SimDuration::from_secs(3600));
        let now = SimTime::from_secs(1);
        for (u, bt) in &urls {
            db.record_measurement(u, Asn(1), now, Status::Blocked, vec![*bt]);
        }
        for (u, _) in &urls {
            let got = db.lookup(u, now).status;
            assert_eq!(got, Status::Blocked, "case {case}: lost verdict for {u}");
        }
    }
}

/// Aggregation never stores more records than the non-aggregating
/// baseline.
#[test]
fn aggregation_is_a_compression() {
    let mut rng = DetRng::new(0xa66);
    for case in 0..CASES {
        let n = rng.index(29) + 1;
        let items: Vec<(Url, bool)> = (0..n)
            .map(|_| (rand_url(&mut rng), rng.chance(0.5)))
            .collect();
        let mut agg = LocalDb::new(SimDuration::from_secs(3600));
        let mut raw = LocalDb::without_aggregation(SimDuration::from_secs(3600));
        let now = SimTime::from_secs(1);
        for (u, blocked) in &items {
            let (status, stages) = if *blocked {
                (Status::Blocked, vec![BlockingType::HttpDrop])
            } else {
                (Status::NotBlocked, vec![])
            };
            agg.record_measurement(u, Asn(1), now, status, stages.clone());
            raw.record_measurement(u, Asn(1), now, status, stages);
        }
        assert!(
            agg.record_count() <= raw.record_count(),
            "case {case}: aggregated {} > raw {}",
            agg.record_count(),
            raw.record_count()
        );
    }
}

/// Vote conservation: a client spends exactly one unit of vote no
/// matter how many URLs it reports.
#[test]
fn vote_mass_is_conserved() {
    let mut rng = DetRng::new(0x107e);
    for case in 0..CASES {
        let n_urls = rng.index(199) + 1;
        let client = rng.range_u64(0, 50);
        let ledger = VoteLedger::new();
        let urls: Vec<(String, Asn)> = (0..n_urls)
            .map(|i| (format!("http://u{i}.example/"), Asn(1)))
            .collect();
        ledger.set_client_report(Uuid::from_raw(client), urls.clone());
        let total: f64 = urls.iter().map(|(u, a)| ledger.tally(u, *a).s).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "case {case}: total vote {total}"
        );
    }
}

/// Transfer-time monotonicity: more bytes or more RTT never loads
/// faster.
#[test]
fn transfer_time_monotone() {
    let mut rng = DetRng::new(0x7cf);
    for case in 0..CASES {
        let size_a = rng.range_u64(1, 5_000_000);
        let size_b = rng.range_u64(1, 5_000_000);
        let rtt_ms = rng.range_u64(5, 500);
        let bw_mbps = rng.range_u64(1, 200);
        let cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(rtt_ms);
        let bw = bw_mbps * 1_000_000;
        let (lo, hi) = if size_a <= size_b {
            (size_a, size_b)
        } else {
            (size_b, size_a)
        };
        assert!(
            transfer_time(lo, rtt, bw, &cfg) <= transfer_time(hi, rtt, bw, &cfg),
            "case {case}: size monotonicity"
        );
        // RTT monotonicity at fixed size, up to the documented one-round
        // discretization slack (a larger RTT enlarges the BDP cap and can
        // save one slow-start round).
        let rtt2 = rtt + SimDuration::from_millis(50);
        let t1 = transfer_time(size_a, rtt, bw, &cfg);
        let t2 = transfer_time(size_a, rtt2, bw, &cfg);
        assert!(
            t2 + rtt2 >= t1,
            "case {case}: t1={t1}, t2={t2}, rtt2={rtt2}"
        );
    }
}

/// The phase-1 classifier never flags large, link-rich real pages
/// regardless of the words they contain.
#[test]
fn phase1_structure_gate_holds() {
    let mut rng = DetRng::new(0x9a7e);
    for case in 0..CASES {
        let size_kb = rng.index(180) + 20;
        let word = rand_string(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 4, 10);
        let mut html = csaw_webproto::synth_html("Any Site", size_kb * 1024);
        // Adversarial: inject blocking vocabulary into the body.
        html.push_str(&format!(
            "<p>the {word} site was blocked and access denied by court order</p></html>"
        ));
        let v = csaw_blockpage::phase1_html(&html, &csaw_blockpage::Phase1Config::default());
        assert_eq!(v, csaw_blockpage::Phase1Verdict::Normal, "case {case}");
    }
}

/// Expiry is total: after the TTL passes, every lookup reads
/// NotMeasured and purging removes every record.
#[test]
fn expiry_is_total() {
    let mut rng = DetRng::new(0xdead);
    for case in 0..CASES {
        let n = rng.index(14) + 1;
        let urls: Vec<Url> = (0..n).map(|_| rand_url(&mut rng)).collect();
        let ttl_s = rng.range_u64(10, 1000);
        let mut db = LocalDb::new(SimDuration::from_secs(ttl_s));
        let t0 = SimTime::from_secs(5);
        for u in &urls {
            db.record_measurement(u, Asn(1), t0, Status::Blocked, vec![BlockingType::HttpDrop]);
        }
        let later = t0 + SimDuration::from_secs(ttl_s) + SimDuration::from_secs(1);
        for u in &urls {
            assert_eq!(
                db.lookup(u, later).status,
                Status::NotMeasured,
                "case {case}"
            );
        }
        db.purge_expired(later);
        assert_eq!(db.record_count(), 0, "case {case}");
    }
}

/// Longest-prefix matching agrees with a naive scan over all records.
#[test]
fn lpm_matches_naive_scan() {
    use csaw::local::{LocalRecord, PathTrie};
    let mut rng = DetRng::new(0x19e);
    let rand_segs = |rng: &mut DetRng, max_len: usize| -> Vec<String> {
        let n = rng.index(max_len + 1);
        (0..n).map(|_| rand_string(rng, b"ab", 1, 2)).collect()
    };
    for case in 0..CASES {
        let n_records = rng.index(11) + 1;
        let records: Vec<(Vec<String>, bool)> = (0..n_records)
            .map(|_| (rand_segs(&mut rng, 3), rng.chance(0.5)))
            .collect();
        let query = rand_segs(&mut rng, 4);
        let mk_url =
            |segs: &[String]| Url::parse(&format!("http://h.example/{}", segs.join("/"))).unwrap();
        let mut trie = PathTrie::new();
        let mut naive: Vec<(Vec<String>, Status)> = Vec::new();
        for (segs, blocked) in &records {
            let status = if *blocked {
                Status::Blocked
            } else {
                Status::NotBlocked
            };
            let rec = match status {
                Status::Blocked => LocalRecord::blocked(
                    mk_url(segs),
                    Asn(1),
                    SimTime::ZERO,
                    vec![BlockingType::HttpDrop],
                ),
                _ => LocalRecord::not_blocked(mk_url(segs), Asn(1), SimTime::ZERO),
            };
            trie.insert(segs, rec);
            // Later inserts at the same path replace earlier ones,
            // mirroring the trie's semantics.
            naive.retain(|(s, _)| s != segs);
            naive.push((segs.clone(), status));
        }
        // Naive LPM: the record with the longest path that is a
        // segment-prefix of the query.
        let expected = naive
            .iter()
            .filter(|(s, _)| s.len() <= query.len() && query[..s.len()] == s[..])
            .max_by_key(|(s, _)| s.len())
            .map(|(_, st)| *st);
        let got = trie.lpm(&query).map(|r| r.status);
        assert_eq!(
            got, expected,
            "case {case}: records {records:?}, query {query:?}"
        );
    }
}

/// Censor policies are pure data + deterministic decisions: two
/// independently-constructed copies of the same deployment make
/// identical decisions under identical randomness (deployments ship
/// rule sets as data; this is the property that makes that sound).
#[test]
fn censor_policy_decisions_are_reproducible() {
    let policy = csaw_censor::isp_b();
    let copy = csaw_censor::isp_b();
    assert_eq!(copy.rule_count(), policy.rule_count());
    assert_eq!(copy.name, policy.name);
    let mut r1 = DetRng::new(5);
    let mut r2 = DetRng::new(5);
    for host in ["www.youtube.com", "example.com", "adult.example"] {
        assert_eq!(
            policy.on_dns_query(host, None, &mut r1),
            copy.on_dns_query(host, None, &mut r2),
            "{host}"
        );
    }
}
