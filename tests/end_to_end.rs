//! Cross-crate integration tests: full client ↔ server ↔ world loops in
//! virtual time.

use csaw::prelude::*;
use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
use csaw_censor::profiles;
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::prelude::*;
use csaw_webproto::Url;

fn url(s: &str) -> Url {
    s.parse().expect("static URL")
}

/// Test shorthand over the first-class server API: post parsed reports
/// (returning the accepted count) and read a blocked list from the
/// never-failing in-memory backend.
trait ServerTestExt {
    fn post(
        &self,
        c: csaw::global::Uuid,
        reports: &[csaw::global::Report],
        now: SimTime,
    ) -> Result<usize, csaw::global::StoreError>;
    fn blocked(&self, asn: Asn, filter: &ConfidenceFilter) -> Vec<csaw::global::GlobalRecord>;
}

impl ServerTestExt for ServerDb {
    fn post(
        &self,
        c: csaw::global::Uuid,
        reports: &[csaw::global::Report],
        now: SimTime,
    ) -> Result<usize, csaw::global::StoreError> {
        self.ingest(csaw::global::Batch::new(c, reports.to_vec(), now))
            .map(|r| r.accepted)
    }
    fn blocked(&self, asn: Asn, filter: &ConfidenceFilter) -> Vec<csaw::global::GlobalRecord> {
        self.blocked_for_as(asn, filter)
            .expect("in-memory backend reads are infallible")
    }
}

fn youtube_world(policy: csaw_censor::CensorPolicy, asn: Asn) -> World {
    let provider = Provider::new(asn, "isp");
    World::builder(AccessNetwork::single(provider))
        .site(
            SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                .category(csaw_censor::Category::Video)
                .frontable(true)
                .serves_by_ip(true)
                .default_page(360_000, 20),
        )
        .site(SiteSpec::new(
            "cdn-front.example",
            Site::in_region(Region::Singapore),
        ))
        .censor(asn, policy)
        .build()
}

/// The headline loop: measurement → report → crowdsourced benefit,
/// with a spam client failing to poison the well.
#[test]
fn crowdsourcing_with_spam_resistance() {
    let world = youtube_world(profiles::isp_a(), profiles::ISP_A_ASN);
    let server = ServerDb::builder(1).build().unwrap();
    let yt = url("http://www.youtube.com/");

    // Three honest pioneers measure and report.
    for seed in 0..3 {
        let mut c = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), seed);
        c.register(&server, profiles::ISP_A_ASN, SimTime::from_secs(seed), 0.05)
            .unwrap();
        c.request(&world, &yt, SimTime::from_secs(10 + seed));
        assert!(c.post_reports(&server, SimTime::from_secs(20 + seed)) >= 1);
    }

    // A spammer floods 500 fake URLs.
    let spammer = server.register(SimTime::from_secs(50), 0.3).unwrap();
    let fakes: Vec<csaw::global::Report> = (0..500)
        .map(|i| csaw::global::Report {
            url: format!("http://innocent-{i}.example/"),
            asn: profiles::ISP_A_ASN.0,
            measured_at_us: 0,
            stages: vec![csaw_censor::BlockingType::HttpDrop],
        })
        .collect();
    server
        .post(spammer, &fakes, SimTime::from_secs(51))
        .unwrap();

    // A newcomer with a strict confidence filter sees only the real entry.
    let strict = ConfidenceFilter::strict(2, 0.2);
    let mut newbie = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 99)
        .with_confidence(strict);
    newbie
        .register(&server, profiles::ISP_A_ASN, SimTime::from_secs(60), 0.05)
        .unwrap();
    assert!(newbie.global_lookup(&yt).is_some(), "real entry visible");
    assert!(
        newbie
            .global_lookup(&url("http://innocent-7.example/"))
            .is_none(),
        "spam filtered by vote confidence"
    );
    // And the first visit skips the measurement round entirely.
    let r = newbie.request(&world, &yt, SimTime::from_secs(70));
    assert_eq!(newbie.stats.measurements, 0);
    assert_eq!(r.transport, "https");
}

/// Churn Scenario A (§4.4): blocked → whitelisted, observed after expiry.
#[test]
fn churn_blocked_to_unblocked_via_expiry() {
    let mut world = youtube_world(profiles::isp_a(), profiles::ISP_A_ASN);
    let cfg = CsawConfig::default()
        .with_record_ttl(SimDuration::from_secs(600))
        .with_revalidate_p(0.0); // isolate the expiry path
    let mut c = CsawClient::new(cfg, Some("cdn-front.example"), 5);
    let yt = url("http://www.youtube.com/");
    let r = c.request(&world, &yt, SimTime::from_secs(10));
    assert_eq!(r.status_after, Status::Blocked);

    // The censor whitelists YouTube (the January 2016 event).
    world.remove_censor(profiles::ISP_A_ASN);

    // Before expiry the client still circumvents (stale record).
    let r = c.request(&world, &yt, SimTime::from_secs(100));
    assert_ne!(r.transport, "direct");

    // After expiry the record reads not-measured; redundant requests
    // re-measure and discover the whitelisting.
    let r = c.request(&world, &yt, SimTime::from_secs(1_000));
    assert!(r.measured);
    assert_eq!(r.status_after, Status::NotBlocked);
    let r = c.request(&world, &yt, SimTime::from_secs(1_100));
    assert_eq!(r.transport, "direct");
}

/// Churn Scenario B (§4.4): unblocked → blocked, caught in-line because
/// the direct path is always measured.
#[test]
fn churn_unblocked_to_blocked_inline() {
    let mut world = youtube_world(profiles::clean(), Asn(77));
    let mut c = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 6);
    let yt = url("http://www.youtube.com/");
    let r = c.request(&world, &yt, SimTime::from_secs(10));
    assert_eq!(r.status_after, Status::NotBlocked);

    world.install_censor(
        Asn(77),
        profiles::single_mechanism(
            "evt",
            "www.youtube.com",
            DnsTamper::None,
            IpAction::None,
            HttpAction::BlockPageInline,
            TlsAction::None,
        ),
    );
    let r = c.request(&world, &yt, SimTime::from_secs(50));
    assert_eq!(
        r.status_after,
        Status::Blocked,
        "caught on the very next visit"
    );
    assert!(r.plt.is_some(), "user still served");
}

/// Multihoming (§4.4): after detection, the strategy stops oscillating —
/// requests succeed no matter which provider carries the flow.
#[test]
fn multihoming_strategy_converges() {
    let world = csaw_bench::worlds::multihomed_university_world();
    let mut c = CsawClient::new(
        CsawConfig::default().with_revalidate_p(0.0),
        Some(csaw_bench::worlds::FRONT),
        7,
    );
    let yt = url("http://www.youtube.com/");
    let mut served = 0;
    let mut failed = 0;
    for i in 0..30u64 {
        let r = c.request(&world, &yt, SimTime::from_secs(30 * (i + 1)));
        if r.plt.is_some() {
            served += 1;
        } else {
            failed += 1;
        }
    }
    assert!(c.multihoming.multihomed, "two providers must be detected");
    assert!(
        served >= 28,
        "steady service expected, got {served} served / {failed} failed"
    );
    // Per-provider observations exist for both ISPs once both have
    // carried a blocked flow.
    let n = c.per_provider.provider_count(&yt.base().to_string());
    assert!(n >= 1, "providers with observations: {n}");
}

/// The pilot study's CDN discovery (§7.4): a page's CDN-hosted resources
/// face the censor on the direct path, and the failures are visible.
#[test]
fn cdn_blocking_surfaces_in_resource_failures() {
    use csaw_circumvent::fetch::{direct_like_fetch, DirectOpts};
    use csaw_webproto::page::WebPage;

    let provider = Provider::new(Asn(88), "isp");
    let page = WebPage::synthetic(url("http://news.pk/"), 200_000, 10)
        .with_cdn_resources(&url("http://cdn.blocked.example/"), 4);
    let world = World::builder(AccessNetwork::single(provider.clone()))
        .site(
            SiteSpec::new("news.pk", Site::in_region(Region::Pakistan))
                .page(page)
                .default_page(200_000, 0),
        )
        .site(
            SiteSpec::new("cdn.blocked.example", Site::in_region(Region::UsEast))
                .category(csaw_censor::Category::Cdn),
        )
        .censor(
            Asn(88),
            profiles::single_mechanism(
                "cdn-censor",
                "cdn.blocked.example",
                DnsTamper::Nxdomain,
                IpAction::None,
                HttpAction::None,
                TlsAction::None,
            ),
        )
        .build();
    let mut rng = DetRng::new(1);
    let report = direct_like_fetch(
        &world,
        &provider,
        &url("http://news.pk/"),
        &DirectOpts::default(),
        &mut rng,
    );
    // The page itself loads...
    assert!(report.outcome.is_genuine_page());
    // ...but the CDN resources failed with a DNS signature.
    assert_eq!(
        report.resource_failures.len(),
        4,
        "{:?}",
        report.resource_failures
    );
    for (u, kind) in &report.resource_failures {
        assert_eq!(u.host().to_string(), "cdn.blocked.example");
        assert_eq!(*kind, csaw_circumvent::FailureKind::DnsNxdomain);
    }
}

/// Anonymity-preferring users never touch non-anonymous transports, even
/// when those would be faster (§4.4).
#[test]
fn anonymity_preference_is_absolute() {
    let world = youtube_world(profiles::isp_b(), profiles::ISP_B_ASN);
    let cfg = CsawConfig::default().with_preference(UserPreference::Anonymity);
    let mut c = CsawClient::new(cfg, Some("cdn-front.example"), 8);
    let yt = url("http://www.youtube.com/");
    for i in 0..10u64 {
        let r = c.request(&world, &yt, SimTime::from_secs(60 * (i + 1)));
        assert!(
            r.transport == "tor" || r.transport == "none",
            "visit {i} leaked through {}",
            r.transport
        );
    }
}

/// Determinism: the same seed reproduces the same run bit-for-bit.
#[test]
fn runs_are_deterministic() {
    let run = |seed: u64| -> Vec<(Option<u64>, String)> {
        let world = youtube_world(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut c = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), seed);
        (0..8u64)
            .map(|i| {
                let r = c.request(
                    &world,
                    &url("http://www.youtube.com/"),
                    SimTime::from_secs(30 * (i + 1)),
                );
                (r.plt.map(|p| p.as_micros()), r.transport)
            })
            .collect()
    };
    assert_eq!(run(1234), run(1234));
    assert_ne!(run(1234), run(4321), "different seeds explore differently");
}

/// Mobility (§8 "Can C-Saw work with mobile users?"): when the user's AS
/// changes, the next sync pulls the new AS's blocked list and the client
/// adapts without remeasuring what the crowd already knows.
#[test]
fn mobility_between_ases() {
    // Two cities: home AS censors YouTube at the HTTP level; travel AS
    // censors it at the DNS level.
    let home_asn = Asn(1111);
    let travel_asn = Asn(2222);
    let home = youtube_world(
        profiles::single_mechanism(
            "home",
            "www.youtube.com",
            DnsTamper::None,
            IpAction::None,
            HttpAction::BlockPageRedirect,
            TlsAction::None,
        ),
        home_asn,
    );
    let travel = youtube_world(
        profiles::single_mechanism(
            "travel",
            "www.youtube.com",
            DnsTamper::Nxdomain,
            IpAction::None,
            HttpAction::None,
            TlsAction::None,
        ),
        travel_asn,
    );
    let server = ServerDb::builder(2).build().unwrap();
    // The crowd already measured both ASes.
    let mut scout_home = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 21);
    scout_home
        .register(&server, home_asn, SimTime::from_secs(1), 0.0)
        .unwrap();
    scout_home.request(
        &home,
        &url("http://www.youtube.com/"),
        SimTime::from_secs(5),
    );
    scout_home.post_reports(&server, SimTime::from_secs(6));
    let mut scout_travel = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 22);
    scout_travel
        .register(&server, travel_asn, SimTime::from_secs(2), 0.0)
        .unwrap();
    scout_travel.request(
        &travel,
        &url("http://www.youtube.com/"),
        SimTime::from_secs(7),
    );
    scout_travel.post_reports(&server, SimTime::from_secs(8));

    // The mobile user starts at home...
    let mut user = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 23);
    user.register(&server, home_asn, SimTime::from_secs(100), 0.0)
        .unwrap();
    let r = user.request(
        &home,
        &url("http://www.youtube.com/"),
        SimTime::from_secs(110),
    );
    assert_eq!(r.transport, "https", "home fix for HTTP blocking");
    assert_eq!(user.stats.measurements, 0);

    // ...then travels: the periodic sync against the new AS's world pulls
    // the travel blocked-list (sync keys on the world's providers).
    user.sync_global(&server, &[travel_asn], SimTime::from_secs(1_000))
        .expect("travel sync succeeds");
    // Local records from home have host-level identity; travel mechanisms
    // differ, so the lookup hits the (synced) global view... after the
    // stale local record expires or is revalidated. Force a fresh client
    // state read by expiring home records.
    user.local_db.ttl = SimDuration::from_secs(1);
    user.local_db.purge_expired(SimTime::from_secs(2_000));
    let r = user.request(
        &travel,
        &url("http://www.youtube.com/"),
        SimTime::from_secs(2_010),
    );
    assert!(
        r.plt.is_some(),
        "served in the travel AS without a fresh measurement round"
    );
    assert_eq!(user.stats.measurements, 0, "crowd knowledge reused");
}

/// §5's reputation loop: the server audits behaviour, revokes the
/// spammer, and its pollution disappears from what clients download.
#[test]
fn reputation_audit_cleans_the_global_db() {
    let server = ServerDb::builder(3).build().unwrap();
    // 10 honest clients report the same small genuinely-blocked set.
    for i in 0..10u64 {
        let c = server.register(SimTime::from_secs(i), 0.0).unwrap();
        let reports: Vec<csaw::global::Report> = (0..5)
            .map(|k| csaw::global::Report {
                url: format!("http://blocked-{k}.example/"),
                asn: 1,
                measured_at_us: 0,
                stages: vec![csaw_censor::BlockingType::DnsNxdomain],
            })
            .collect();
        server
            .post(c, &reports, SimTime::from_secs(i + 10))
            .unwrap();
    }
    // The spammer floods 400 fakes.
    let spammer = server.register(SimTime::from_secs(30), 0.3).unwrap();
    let fakes: Vec<csaw::global::Report> = (0..400)
        .map(|i| csaw::global::Report {
            url: format!("http://fake-{i}.example/"),
            asn: 1,
            measured_at_us: 0,
            stages: vec![csaw_censor::BlockingType::HttpDrop],
        })
        .collect();
    server
        .post(spammer, &fakes, SimTime::from_secs(31))
        .unwrap();
    assert_eq!(server.stats().unique_blocked_urls, 405);

    let flags = server.audit_and_revoke(&csaw::global::ReputationConfig::default());
    assert_eq!(flags.len(), 1);
    assert_eq!(flags[0].client, spammer);
    // The fakes are gone even under the *default* (permissive) filter.
    let visible = server.blocked(Asn(1), &ConfidenceFilter::default());
    assert_eq!(visible.len(), 5, "{:?}", visible.len());
    assert!(visible.iter().all(|r| r.url.starts_with("http://blocked-")));
    // And the spammer can't come back under the same UUID.
    assert!(server.post(spammer, &[], SimTime::from_secs(40)).is_err());
}

/// Collector failover end to end: a client behind a censor that blocked
/// two of three collectors still gets its reports through.
#[test]
fn collector_failover_delivers_reports() {
    use csaw::global::{CollectorSet, SubmitError};
    let server = ServerDb::builder(4).build().unwrap();
    let client = server.register(SimTime::from_secs(1), 0.0).unwrap();
    let mut set = CollectorSet::default_set();
    set.set_reachable("collector-a.onion", false);
    set.set_reachable("collector-c.onion", false);
    let mut rng = DetRng::new(9);
    let reports = vec![csaw::global::Report {
        url: "http://blocked.example/".into(),
        asn: 17557,
        measured_at_us: 5,
        stages: vec![csaw_censor::BlockingType::SniDrop],
    }];
    let receipt = set
        .submit(&server, client, &reports, SimTime::from_secs(10), &mut rng)
        .expect("one collector still reachable");
    assert_eq!(receipt.via, "collector-b.onion");
    assert_eq!(server.stats().unique_blocked_urls, 1);
    // Censor completes the sweep: now submission fails loudly (the
    // client keeps the batch queued for later).
    set.set_reachable("collector-b.onion", false);
    let err = set
        .submit(&server, client, &reports, SimTime::from_secs(20), &mut rng)
        .unwrap_err();
    assert_eq!(err, SubmitError::AllCollectorsBlocked);
}

/// An event-driven session: browse events and background ticks flow
/// through the simnet discrete-event scheduler, exactly how a long-lived
/// deployment runs (requests, periodic syncs and report posts interleaved
/// on one virtual clock).
#[test]
fn event_driven_session_via_scheduler() {
    #[derive(Debug)]
    enum Ev {
        Browse(&'static str),
        Tick,
    }
    let world = youtube_world(profiles::isp_a(), profiles::ISP_A_ASN);
    let server = ServerDb::builder(12).build().unwrap();
    let mut client = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 13);
    client
        .register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
        .unwrap();

    let mut sched: Scheduler<Ev> = Scheduler::new();
    for i in 0..20u64 {
        sched.schedule(
            SimTime::from_secs(30 + i * 45),
            Ev::Browse("http://www.youtube.com/"),
        );
    }
    sched.schedule(SimTime::from_secs(400), Ev::Tick);
    sched.schedule(SimTime::from_secs(800), Ev::Tick);

    let mut served = 0;
    let dispatched = sched.run_until(SimTime::from_secs(1_000), |now, ev, _s| match ev {
        Ev::Browse(u) => {
            let r = client.request(&world, &url(u), now);
            if r.plt.is_some() {
                served += 1;
            }
        }
        Ev::Tick => client.tick(&world, &server, now),
    });
    assert_eq!(dispatched, 22);
    assert!(served >= 19, "served {served}");
    // The ticks carried the discovery to the server.
    assert!(server.stats().unique_blocked_urls >= 1);
    assert_eq!(sched.now(), SimTime::from_secs(1_000));
}

/// The client-level collector path: reports queue through the hidden-
/// service tier, survive total blockage, and drain on recovery.
#[test]
fn client_posts_reports_via_collectors() {
    use csaw::global::{CollectorSet, SubmitError};
    let world = youtube_world(profiles::isp_a(), profiles::ISP_A_ASN);
    let server = ServerDb::builder(21).build().unwrap();
    let mut client = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 33);
    client
        .register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
        .unwrap();
    client.request(
        &world,
        &url("http://www.youtube.com/"),
        SimTime::from_secs(5),
    );

    let mut set = CollectorSet::default_set();
    for id in [
        "collector-a.onion",
        "collector-b.onion",
        "collector-c.onion",
    ] {
        set.set_reachable(id, false);
    }
    // Total blockage: the batch stays queued.
    let err = client
        .post_reports_via(&set, &server, SimTime::from_secs(10))
        .unwrap_err();
    assert_eq!(err, SubmitError::AllCollectorsBlocked);
    assert_eq!(server.stats().unique_blocked_urls, 0);

    // One collector recovers: the same queue drains.
    set.set_reachable("collector-b.onion", true);
    let receipt = client
        .post_reports_via(&set, &server, SimTime::from_secs(20))
        .unwrap();
    assert!(receipt.accepted >= 1);
    assert_eq!(receipt.via, "collector-b.onion");
    assert!(server.stats().unique_blocked_urls >= 1);

    // Queue drained: a second post is a no-op.
    let receipt = client
        .post_reports_via(&set, &server, SimTime::from_secs(30))
        .unwrap();
    assert_eq!(receipt.accepted, 0);
}

/// Multi-stage discovery through failed local fixes: a client whose
/// record only names part of ISP-B's blocking pays once to discover the
/// TLS stage (the HTTPS fix dies), learns from the failure, re-reports
/// the enriched stage set, and never retries the dead end.
#[test]
fn failed_fixes_teach_missing_stages() {
    let world = youtube_world(profiles::isp_b(), profiles::ISP_B_ASN);
    let server = ServerDb::builder(31).build().unwrap();
    // Seed the global DB with a *partial* report (DNS + HTTP only — no
    // TLS stage), as an early scout might have filed.
    let scout = server.register(SimTime::ZERO, 0.0).unwrap();
    server
        .post(
            scout,
            &[csaw::global::Report {
                url: "http://www.youtube.com/".into(),
                asn: profiles::ISP_B_ASN.0,
                measured_at_us: 0,
                stages: vec![
                    csaw_censor::BlockingType::DnsHijack,
                    csaw_censor::BlockingType::HttpDrop,
                ],
            }],
            SimTime::from_secs(1),
        )
        .unwrap();

    let cfg = CsawConfig::default().with_revalidate_p(0.0);
    let mut c = CsawClient::new(cfg, Some("cdn-front.example"), 37);
    c.register(&server, profiles::ISP_B_ASN, SimTime::from_secs(5), 0.0)
        .unwrap();
    let yt = url("http://www.youtube.com/");

    // Visit 1: the record says DNS+HTTP, so the HTTPS fix is tried and
    // dies on the unknown TLS stage (21 s) before a working fix lands.
    let r1 = c.request(&world, &yt, SimTime::from_secs(10));
    assert!(r1.plt.is_some());
    // The failure taught the client the TLS stage.
    let rec = c
        .local_db
        .lookup(&yt, SimTime::from_secs(11))
        .record
        .expect("recorded");
    assert!(
        rec.stages.contains(&csaw_censor::BlockingType::SniDrop),
        "learned stages: {:?}",
        rec.stages
    );

    // Visit 2+: no more 21 s dead ends.
    let r2 = c.request(&world, &yt, SimTime::from_secs(60));
    assert!(
        r2.plt.unwrap() < SimDuration::from_secs(10),
        "visit 2 still paying dead ends: {:?}",
        r2.plt
    );
    assert!(r2.plt.unwrap() < r1.plt.unwrap());

    // And the enriched stage set flowed back to the crowd.
    c.post_reports(&server, SimTime::from_secs(70));
    let list = server.blocked(profiles::ISP_B_ASN, &ConfidenceFilter::default());
    let entry = list
        .iter()
        .find(|r| r.url == "http://www.youtube.com/")
        .expect("entry exists");
    assert!(
        entry.stages.contains(&csaw_censor::BlockingType::SniDrop),
        "crowd got the update: {:?}",
        entry.stages
    );
}

/// Client restart: the local DB persists through its JSON snapshot
/// format (the paper's client survives restarts with its measurements
/// intact) and the revived DB serves lookups identically.
#[test]
fn local_db_survives_restart_via_serde() {
    let world = youtube_world(profiles::isp_a(), profiles::ISP_A_ASN);
    let mut c = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 51);
    let yt = url("http://www.youtube.com/");
    c.request(&world, &yt, SimTime::from_secs(10));
    assert_eq!(
        c.local_db.lookup(&yt, SimTime::from_secs(20)).status,
        Status::Blocked
    );

    // "Shut down": serialize the DB; "restart": deserialize into a
    // fresh one.
    let saved = c.local_db.to_json_string();
    let revived: LocalDb = LocalDb::from_json_str(&saved).expect("local_db deserializes");
    assert_eq!(revived.record_count(), c.local_db.record_count());
    let l = revived.lookup(&yt, SimTime::from_secs(20));
    assert_eq!(l.status, Status::Blocked);
    assert_eq!(
        l.record.unwrap().stages,
        c.local_db
            .lookup(&yt, SimTime::from_secs(20))
            .record
            .unwrap()
            .stages
    );
    // Expiry semantics survive the round trip too.
    let after_ttl = SimTime::from_secs(20) + revived.ttl + SimDuration::from_secs(1);
    assert_eq!(revived.lookup(&yt, after_ttl).status, Status::NotMeasured);
}

/// Scheduler stress: 100k events with interleaved re-scheduling stay
/// ordered and deterministic.
#[test]
fn scheduler_stress_100k_events() {
    let mut s: Scheduler<u64> = Scheduler::new();
    let mut rng = DetRng::new(77);
    for i in 0..100_000u64 {
        s.schedule(SimTime::from_micros(rng.range_u64(0, 1_000_000)), i);
    }
    let mut last = SimTime::ZERO;
    let mut count = 0u64;
    let mut spawned = 0u64;
    while let Some((t, _ev)) = s.next() {
        assert!(t >= last, "time went backwards");
        last = t;
        count += 1;
        // Handlers occasionally schedule follow-ups (bounded).
        if spawned < 5_000 && count.is_multiple_of(40) {
            spawned += 1;
            s.schedule(t + SimDuration::from_micros(17), 1_000_000 + spawned);
        }
    }
    assert_eq!(count, 100_000 + spawned);
    assert_eq!(s.pending(), 0);
}
