//! Hold-On vs an injecting, GFW-style censor (§2.2 + §8).
//!
//! This censor poisons DNS answers *on path* — switching to a public
//! resolver doesn't help, because the forged answer races back before
//! the honest one. Hold-On (Duan et al.) keeps listening past the first
//! answer and keeps the one that arrives at the resolver's true RTT.
//!
//! ```sh
//! cargo run --example dns_injection
//! ```

use csaw::prelude::*;
use csaw_censor::profiles;
use csaw_circumvent::transports::{FetchCtx, HoldOnDns, PublicDns, Transport};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::prelude::*;

fn main() {
    let provider = Provider::new(Asn(4134), "ISP-GFW");
    let mut world = World::builder(AccessNetwork::single(provider.clone()))
        .site(
            SiteSpec::new("news-site.example", Site::in_region(Region::UsEast))
                .serves_by_ip(true)
                .default_page(200_000, 10),
        )
        .censor(Asn(4134), profiles::resourceful(&["news-site.example"]))
        .build();
    world.set_public_dns_intercepted(true); // on-path injection reaches 8.8.8.8 too

    let ctx = FetchCtx {
        now: SimTime::ZERO,
        provider,
    };
    let url: csaw_webproto::Url = "http://news-site.example/".parse().expect("static URL");
    let mut rng = DetRng::new(7);

    println!("== On-path DNS injection vs Hold-On ==\n");
    for i in 0..3 {
        let r = PublicDns.fetch(&world, &ctx, &url, &mut rng);
        println!(
            "public DNS, try {}: {:<28} after {:.2}s",
            i + 1,
            match r.outcome.failure() {
                Some(k) => format!("{k}"),
                None if r.outcome.is_genuine_page() => "genuine page".into(),
                None => "block page".into(),
            },
            r.elapsed.as_secs_f64()
        );
    }
    println!();
    for i in 0..3 {
        let r = HoldOnDns.fetch(&world, &ctx, &url, &mut rng);
        println!(
            "Hold-On,    try {}: {:<28} after {:.2}s",
            i + 1,
            if r.outcome.is_genuine_page() {
                "genuine page".to_string()
            } else {
                format!("{:?}", r.outcome.failure())
            },
            r.elapsed.as_secs_f64()
        );
    }
    println!("\nHold-On recovers the real records — but this censor also resets");
    println!("plaintext HTTP, so fixing DNS alone is not enough. A full C-Saw");
    println!("client keeps adapting until something works:\n");

    let mut client = CsawClient::new(CsawConfig::default(), None, 11);
    for i in 0..4u64 {
        let r = client.request(&world, &url, SimTime::from_secs(60 * (i + 1)));
        println!(
            "C-Saw visit {}: {:?} via {:<16} PLT {}",
            i + 1,
            r.status_after,
            r.transport,
            r.plt
                .map(|p| format!("{:.2}s", p.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
        );
    }
    let rec = client
        .local_db
        .lookup(&url, SimTime::from_secs(600))
        .record
        .expect("recorded");
    println!("\nLearned multi-stage record: {:?}", rec.stages);
    println!("(IP-as-hostname wins: an IP-addressed plain-HTTP fetch matches neither");
    println!("the DNS blacklist, the SNI filter, nor the Host-based HTTP rules.)");
}
