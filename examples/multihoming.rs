//! Multihoming (§4.4): the paper's University vantage connects through
//! both ISP-A and ISP-B, which block YouTube *differently*. Without the
//! multihoming manager a client oscillates between "blocked" and
//! "not-blocked" verdicts as flows land on different providers; with it,
//! C-Saw detects the multihoming from egress-ASN probes and adopts the
//! strict-union strategy that works on either path.
//!
//! ```sh
//! cargo run --example multihoming
//! ```

use csaw::prelude::*;
use csaw_simnet::prelude::*;

fn main() {
    let world = csaw_bench::worlds::multihomed_university_world();
    let mut client = CsawClient::new(CsawConfig::default(), Some(csaw_bench::worlds::FRONT), 9);
    let url: csaw_webproto::Url = "http://www.youtube.com/".parse().expect("static URL");

    println!("== Browsing YouTube from a multihomed campus (ISP-A + ISP-B) ==\n");
    for i in 0..10u64 {
        let t = SimTime::from_secs(30 * (i + 1));
        let r = client.request(&world, &url, t);
        println!(
            "visit {:>2}: via {:<16} PLT {:>6}   multihomed detected: {}",
            i + 1,
            r.transport,
            r.plt
                .map(|p| format!("{:.2}s", p.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            client.multihoming.multihomed,
        );
    }
    let key = url.base().to_string();
    println!(
        "\nStrict-union mechanisms for {}: {:?}",
        key,
        client.per_provider.strict_union(&key)
    );
    println!(
        "Providers observed: {:?}",
        client.multihoming.asns_in_window()
    );
    println!("\nOnce multihoming is detected, blocked-URL strategy comes from the strict");
    println!("union of per-provider observations, so the chosen transport keeps working");
    println!("no matter which ISP happens to carry a given flow.");
}
