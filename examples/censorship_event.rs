//! Replay of §7.5 "C-Saw in the Wild": the November 2017 Twitter/
//! Instagram blocking event, where different ASes blocked the same
//! service with different mechanisms — and C-Saw's in-line detection
//! picked up each variant within minutes.
//!
//! ```sh
//! cargo run --example censorship_event
//! ```

fn main() {
    let w = csaw_bench::experiments::wild::run(2026);
    println!("{}", w.render());
    println!("Compare with the paper's snapshot:");
    println!("  * Twitter blocked from AS 38193 (Response: HTTP_GET_TIMEOUT)");
    println!("  * Twitter blocked from AS 17557 (Response: HTTP_GET_BLOCKPAGE)");
    println!("  * Instagram blocked from AS 38193 / 59257 / 45773 (Response: DNS blocking)");
}
