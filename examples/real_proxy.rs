//! The real-socket demo: a C-Saw proxy on 127.0.0.1, a censoring
//! middlebox, and origin servers — all actual TCP, no simulation.
//!
//! A raw "browser" sends requests through the proxy. The first visit to
//! the blocked site races redundant requests over the censored and clean
//! paths, detects the block page, and serves the genuine content; the
//! measurement log at the end is exportable as global-DB reports.
//!
//! ```sh
//! cargo run --example real_proxy
//! ```

use csaw_proxy::codec::{read_response, write_request};
use csaw_proxy::testbed::{
    spawn_middlebox, spawn_origin, MbAction, MbPolicy, OriginConfig, TestResolver,
};
use csaw_proxy::{spawn_proxy, ProxyConfig};
use csaw_webproto::bytes::BytesMut;
use csaw_webproto::http::Request;
use csaw_webproto::url::Url;
use std::net::TcpStream;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // Origins: one censored site, one clean site.
    let blocked_origin = spawn_origin(OriginConfig::new("video-site.test", 60_000))?;
    let clean_origin = spawn_origin(OriginConfig::new("news-site.test", 40_000))?;

    // The censoring middlebox: block-pages the video site, passes news.
    let mut policy = MbPolicy {
        block_page_html: "<html><head><title>Blocked</title></head><body><h1>Access Denied</h1>\
             <p>This website is restricted by order of the regulator.</p></body></html>"
            .into(),
        ..Default::default()
    };
    policy
        .routes
        .insert("video-site.test".into(), blocked_origin.addr);
    policy
        .routes
        .insert("news-site.test".into(), clean_origin.addr);
    policy
        .actions
        .insert("video-site.test".into(), MbAction::BlockPage);
    let middlebox = spawn_middlebox(policy)?;

    // The resolver: direct path via the middlebox, clean path straight
    // to the origin (standing in for a circumvention tunnel's exit).
    let resolver = Arc::new(TestResolver::new());
    resolver.insert("video-site.test", middlebox.addr, blocked_origin.addr);
    resolver.insert("news-site.test", middlebox.addr, clean_origin.addr);

    // The C-Saw proxy.
    let proxy = spawn_proxy(Arc::clone(&resolver), ProxyConfig::default())?;
    println!("C-Saw proxy listening on {}\n", proxy.addr);

    // A raw browser.
    let fetch = |host: &str| -> std::io::Result<_> {
        let mut s = TcpStream::connect(proxy.addr)?;
        let url = Url::parse(&format!("http://{host}/")).expect("static URL");
        write_request(&mut s, &Request::get(&url))?;
        let mut buf = BytesMut::new();
        read_response(&mut s, &mut buf)
    };

    for (label, host) in [
        ("clean site            ", "news-site.test"),
        ("censored site, visit 1", "video-site.test"),
        ("censored site, visit 2", "video-site.test"),
    ] {
        let resp = fetch(host)?;
        let body = String::from_utf8_lossy(&resp.body);
        let verdict = if body.contains("Access Denied") {
            "BLOCK PAGE (!)"
        } else {
            "genuine content"
        };
        println!(
            "GET http://{host}/ [{label}] -> {} bytes, {}",
            resp.body.len(),
            verdict
        );
    }

    println!("\nProxy measurement log:");
    for m in proxy.measurements() {
        println!(
            "  {}://{} blocked ({:?}) at +{}µs",
            m.scheme.as_str(),
            m.host,
            m.signature,
            m.measured_at_us
        );
    }
    println!("\nAs global-DB reports (JSON wire format):");
    let reports = proxy.to_reports(17557);
    println!("{}", csaw::global::Report::encode_batch(&reports));
    Ok(())
}
