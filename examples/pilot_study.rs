//! A scaled replica of the paper's §7.4 pilot deployment: dozens of users
//! across 16 ASes browse a censored web for a while; the global DB's
//! aggregates are printed next to the paper's Table 7.
//!
//! ```sh
//! cargo run --release --example pilot_study            # 123 users (paper scale)
//! cargo run --release --example pilot_study -- 32      # custom user count
//! ```

fn main() {
    let users: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(123);
    println!("Running the pilot study with {users} users across 16 ASes...\n");
    let t = csaw_bench::experiments::table7::run(1, users);
    println!("{}", t.render());
    println!("Note: the universe (420 domains / 997 URLs / mechanism mix) follows the");
    println!("paper's published totals; the experiment validates that the full pipeline");
    println!("(browse -> detect -> aggregate -> report -> vote -> download) recovers them.");
}
