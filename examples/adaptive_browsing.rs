//! Crowdsourcing in action: one user's measurements make the next
//! user's first visit fast.
//!
//! Two C-Saw clients sit behind ISP-B (multi-stage DNS + HTTP/HTTPS
//! blocking of YouTube, per Table 1). Client A browses first, pays the
//! detection cost, and reports to the global DB. Client B syncs the
//! per-AS blocked list at registration and goes straight to domain
//! fronting on its *first* visit.
//!
//! ```sh
//! cargo run --example adaptive_browsing
//! ```

use csaw::prelude::*;
use csaw_censor::profiles;
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::prelude::*;

fn main() {
    let provider = Provider::new(profiles::ISP_B_ASN, "ISP-B");
    let world = World::builder(AccessNetwork::single(provider))
        .site(
            SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                .category(csaw_censor::Category::Video)
                .frontable(true)
                .default_page(360_000, 20),
        )
        .site(SiteSpec::new(
            "cdn-front.example",
            Site::in_region(Region::Singapore),
        ))
        .censor(profiles::ISP_B_ASN, profiles::isp_b())
        .build();

    let server = ServerDb::builder(7).build().unwrap();
    let url: csaw_webproto::Url = "http://www.youtube.com/".parse().expect("static URL");

    println!("== Crowdsourced measurements make circumvention fast ==\n");

    // --- Client A: the pioneer -----------------------------------------
    let mut alice = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 1);
    alice
        .register(&server, profiles::ISP_B_ASN, SimTime::from_secs(0), 0.05)
        .expect("alice registers");
    let r1 = alice.request(&world, &url, SimTime::from_secs(10));
    println!(
        "Alice, first visit : PLT {:>6.2}s via {:<16} (paid the measurement cost)",
        r1.plt.map(|p| p.as_secs_f64()).unwrap_or(f64::NAN),
        r1.transport
    );
    let r2 = alice.request(&world, &url, SimTime::from_secs(60));
    println!(
        "Alice, second visit: PLT {:>6.2}s via {:<16} (adapted)",
        r2.plt.map(|p| p.as_secs_f64()).unwrap_or(f64::NAN),
        r2.transport
    );
    let posted = alice.post_reports(&server, SimTime::from_secs(70));
    println!("Alice posts {posted} report(s) to the global DB (over Tor, no PII)\n");

    // --- Client B: the beneficiary --------------------------------------
    let mut bob = CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), 2);
    bob.register(&server, profiles::ISP_B_ASN, SimTime::from_secs(100), 0.05)
        .expect("bob registers");
    println!(
        "Bob syncs the blocked list for {}: {} entr{} about youtube",
        profiles::ISP_B_ASN,
        bob.global_lookup(&url).map(|s| s.len()).unwrap_or(0),
        if bob.global_lookup(&url).map(|s| s.len()).unwrap_or(0) == 1 {
            "y"
        } else {
            "ies"
        },
    );
    let r3 = bob.request(&world, &url, SimTime::from_secs(110));
    println!(
        "Bob, FIRST visit   : PLT {:>6.2}s via {:<16} (no measurement round needed)",
        r3.plt.map(|p| p.as_secs_f64()).unwrap_or(f64::NAN),
        r3.transport
    );
    println!(
        "\nServer now tracks {} blocked URL(s); vote tally for youtube: {:?}",
        server.stats().unique_blocked_urls,
        server.tally("http://www.youtube.com/", profiles::ISP_B_ASN)
    );
}
