//! Quickstart: build a censored world, run a C-Saw client against it,
//! and watch the adaptive circumvention kick in.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use csaw::prelude::*;
use csaw_censor::profiles;
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::prelude::*;

fn main() {
    // ISP-A from the paper's Table 1: HTTP-level blocking with a
    // redirect to a block page. HTTPS is untouched — so the right
    // circumvention is a cheap local fix, not a relay.
    let provider = Provider::new(profiles::ISP_A_ASN, "ISP-A");
    let world = World::builder(AccessNetwork::single(provider))
        .site(
            SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                .category(csaw_censor::Category::Video)
                .default_page(360_000, 20),
        )
        .site(
            SiteSpec::new("news.example", Site::in_region(Region::UsEast)).default_page(95_000, 6),
        )
        .censor(profiles::ISP_A_ASN, profiles::isp_a())
        .build();

    let mut client = CsawClient::new(CsawConfig::default(), None, 42);

    println!("== C-Saw quickstart: browsing behind ISP-A ==\n");
    let urls = [
        "http://news.example/",    // unblocked
        "http://www.youtube.com/", // HTTP-blocked
        "http://www.youtube.com/", // second visit: adapted
        "http://www.youtube.com/", // steady state
        "http://news.example/",    // unblocked again
    ];
    for (i, u) in urls.iter().enumerate() {
        let url = u.parse().expect("static URL");
        let t = SimTime::from_secs(10 * (i as u64 + 1));
        let r = client.request(&world, &url, t);
        println!(
            "t={:>4}s  GET {:<28} -> status={:?} via {:<16} PLT={}",
            t.as_millis() / 1000,
            u,
            r.status_after,
            r.transport,
            r.plt
                .map(|p| format!("{:.2}s", p.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\nLocal DB now holds {} record(s):",
        client.local_db.record_count()
    );
    for rec in client.local_db.blocked_records(SimTime::from_secs(60)) {
        println!(
            "  {} blocked via {:?} (measured from {})",
            rec.url, rec.stages, rec.asn
        );
    }
    println!("\nKey observation: the first YouTube visit pays the measurement cost;");
    println!("every later visit rides the HTTPS local fix at near-direct PLT.");
}
