//! Root crate: hosts examples and integration tests for the C-Saw reproduction.
