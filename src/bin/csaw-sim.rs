//! `csaw-sim` — drive the C-Saw reproduction from the command line.
//!
//! ```text
//! csaw-sim scenarios                          list the built-in worlds
//! csaw-sim browse --scenario isp-b [-n 20] [--seed 7] [--anonymity]
//!                                             run a client and print each request
//! csaw-sim experiments                        list every table/figure runner
//! csaw-sim experiment table5 [--seed 1]       regenerate one artifact
//! ```
//!
//! Argument parsing is deliberately hand-rolled — the workspace's only
//! dependencies are the ones DESIGN.md justifies.

use csaw::prelude::*;
use csaw_bench::experiments as exp;
use csaw_circumvent::world::World;
use csaw_simnet::prelude::*;

const SCENARIOS: &[(&str, &str)] = &[
    ("clean", "no censorship (control)"),
    (
        "isp-a",
        "Table 1 ISP-A: HTTP blocking with block-page redirects",
    ),
    (
        "isp-b",
        "Table 1 ISP-B: DNS hijack + HTTP/HTTPS drop for YouTube",
    ),
    (
        "multihomed",
        "the §2.3 University: ISP-A and ISP-B together",
    ),
    ("keyword", "keyword filter (defeated by IP-as-hostname)"),
];

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table5",
    "table6",
    "table7",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig2",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig7c",
    "wild",
    "datausage",
    "fingerprint",
    "ablation-explore",
    "nonweb",
    "propagation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("scenarios") => {
            println!("scenarios:");
            for (name, desc) in SCENARIOS {
                println!("  {name:<12} {desc}");
            }
        }
        Some("experiments") => {
            println!("experiments (cargo run --bin csaw-sim -- experiment <id>):");
            for e in EXPERIMENTS {
                println!("  {e}");
            }
        }
        Some("experiment") => run_experiment(&args[1..]),
        Some("browse") => browse(&args[1..]),
        _ => {
            eprintln!(
                "usage: csaw-sim <scenarios|browse|experiments|experiment> [options]\n\
                 \n  csaw-sim browse --scenario isp-b [-n 20] [--seed 7] [--anonymity]\n  csaw-sim experiment table5 [--seed 1]"
            );
            std::process::exit(2);
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parse a numeric flag strictly: present-but-garbage is an error, not a
/// silent fallback to the default.
fn numeric_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {name}: {v:?} (expected a number)");
            std::process::exit(2);
        }),
    }
}

fn scenario_world(name: &str) -> Option<World> {
    use csaw_bench::worlds;
    match name {
        "clean" => Some(worlds::clean_world()),
        "isp-a" => Some(worlds::single_isp_world(
            csaw_censor::ISP_A_ASN,
            "ISP-A",
            csaw_censor::isp_a(),
        )),
        "isp-b" => Some(worlds::single_isp_world(
            csaw_censor::ISP_B_ASN,
            "ISP-B",
            csaw_censor::isp_b(),
        )),
        "multihomed" => Some(worlds::multihomed_university_world()),
        "keyword" => Some(worlds::single_isp_world(
            Asn(64001),
            "ISP-KW",
            csaw_censor::keyword_filter(&["adult", "proxy"]),
        )),
        _ => None,
    }
}

fn browse(args: &[String]) {
    let scenario = flag_value(args, "--scenario").unwrap_or("isp-a");
    let n: usize = if flag_value(args, "-n").is_some() {
        numeric_flag(args, "-n", 12)
    } else {
        numeric_flag(args, "--requests", 12)
    };
    let seed: u64 = numeric_flag(args, "--seed", 42);
    let anonymity = args.iter().any(|a| a == "--anonymity");
    let Some(world) = scenario_world(scenario) else {
        eprintln!("unknown scenario {scenario:?}; see `csaw-sim scenarios`");
        std::process::exit(2);
    };
    let mut cfg = CsawConfig::default();
    if anonymity {
        cfg = cfg.with_preference(UserPreference::Anonymity);
    }
    let mut client = CsawClient::new(cfg, Some(csaw_bench::worlds::FRONT), seed);

    // A revisit-heavy browse mix over the standard sites.
    let pool = [
        format!("http://{}/", csaw_bench::worlds::YOUTUBE),
        format!("http://{}/", csaw_bench::worlds::SMALL_PAGE),
        format!("http://{}/", csaw_bench::worlds::PORN_PAGE),
        "http://twitter.com/".to_string(),
        format!("http://{}/watch/trending", csaw_bench::worlds::YOUTUBE),
    ];
    println!("browsing {n} requests in scenario {scenario:?} (seed {seed}):\n");
    let mut rng = DetRng::new(seed ^ 0xb10);
    for i in 0..n {
        let url: csaw_webproto::Url = pool[rng.index(pool.len())].parse().expect("static URL");
        let t = SimTime::from_secs(30 * (i as u64 + 1));
        let r = client.request(&world, &url, t);
        println!(
            "  t={:>5}s  {:<44} {:<11} via {:<16} PLT {}",
            t.as_millis() / 1000,
            url.to_string(),
            format!("{:?}", r.status_after),
            r.transport,
            r.plt
                .map(|p| format!("{:>6.2}s", p.as_secs_f64()))
                .unwrap_or_else(|| "     -".into()),
        );
    }
    let s = client.stats;
    println!(
        "\nsummary: {} requests | {} direct | {} circumvented | {} failed | {} measurements | {} blocked records",
        s.requests, s.served_direct, s.served_circumvention, s.failed, s.measurements, s.blocked_recorded
    );
}

fn run_experiment(args: &[String]) {
    let Some(id) = args.first() else {
        eprintln!("usage: csaw-sim experiment <id> [--seed S]; see `csaw-sim experiments`");
        std::process::exit(2);
    };
    let seed: u64 = numeric_flag(args, "--seed", 1);
    let out = match id.as_str() {
        "table1" => exp::table1::run(seed).render(),
        "table2" => exp::table2::run(seed).render(),
        "table5" => exp::table5::run(seed).render(),
        "table6" => exp::table6::run(seed).render(),
        "table7" => exp::table7::run(seed, 123).render(),
        "fig1a" => exp::fig1::run_1a(seed).render(),
        "fig1b" => exp::fig1::run_1b(seed).render(),
        "fig1c" => exp::fig1::run_1c(seed).render(),
        "fig2" => exp::fig2::run(seed).render(),
        "fig5a" => exp::fig5::run_5a(seed).render(),
        "fig5b" => exp::fig5::run_5b(seed).render(),
        "fig5c" => exp::fig5::run_5c(seed).render(),
        "fig6a" => exp::fig6::run_6a(seed).render(),
        "fig6b" => exp::fig6::run_6b(seed).render(),
        "fig7a" => exp::fig7::run_7a(seed).render(),
        "fig7b" => exp::fig7::run_7b(seed).render(),
        "fig7c" => exp::fig7::run_7c(seed).render(),
        "wild" => exp::wild::run(seed).render(),
        "datausage" => exp::datausage::run(seed).render(),
        "fingerprint" => exp::fingerprint::run(seed).render(),
        "ablation-explore" => exp::ablation_explore::run(seed).render(),
        "nonweb" => exp::nonweb::run(seed).render(),
        "propagation" => exp::propagation::run(seed).render(),
        other => {
            eprintln!("unknown experiment {other:?}; see `csaw-sim experiments`");
            std::process::exit(2);
        }
    };
    println!("{out}");
}
