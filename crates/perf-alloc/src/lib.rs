//! A counting global allocator for the perf-attribution layer.
//!
//! The scorecard's `allocs/report` number answers "is ingest
//! allocation-bound?" — the one question lock telemetry cannot. This
//! crate wraps [`std::alloc::System`] with per-thread-shard atomic
//! counters (allocation count and bytes requested), installed as the
//! process `#[global_allocator]` only when the `global` feature is on.
//! `csaw-bench` forwards that feature from its own `perf-telemetry`
//! feature, so plain builds keep the stock allocator byte-for-byte.
//!
//! ## Why shards, not a single pair of atomics
//!
//! Ingest benchmarks allocate from 8+ threads at tens of millions of
//! allocations per run; a single contended cache line under the
//! allocator would *become* the bottleneck it is trying to measure.
//! Each thread hashes to one of [`SHARDS`] cache-padded slots, so
//! cross-thread interference is limited to hash collisions. Counters
//! are read with [`snapshot`], which sums the shards; deltas between
//! snapshots bracket a measured phase.
//!
//! This is the only crate in the workspace allowed `unsafe` (the
//! [`std::alloc::GlobalAlloc`] trait requires it); the implementation
//! delegates straight to `System` and touches nothing else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards; threads hash into them by thread id.
pub const SHARDS: usize = 64;

/// One cache-line-padded counter slot.
#[repr(align(128))]
#[derive(Debug)]
struct Slot {
    allocs: AtomicU64,
    bytes: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_SLOT: Slot = Slot {
    allocs: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
};

static SLOTS: [Slot; SHARDS] = [ZERO_SLOT; SHARDS];

/// Round-robin shard assignment for new threads.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index; `usize::MAX` = not yet assigned.
    /// `const`-initialized so the fast path is a plain TLS read with no
    /// lazy-init machinery and no allocation (critical: this runs
    /// *inside* the allocator).
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn slot() -> &'static Slot {
    // During thread teardown the TLS key may already be destroyed;
    // fall back to shard 0 rather than losing the sample (or aborting).
    let idx = SLOT
        .try_with(|c| {
            let v = c.get();
            if v != usize::MAX {
                v
            } else {
                let v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
                c.set(v);
                v
            }
        })
        .unwrap_or(0);
    &SLOTS[idx]
}

/// A [`GlobalAlloc`] wrapping [`System`] with sharded counting.
///
/// Install it (feature `global`) or embed it in a custom allocator
/// chain; either way [`snapshot`] reads the totals.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`, which upholds the GlobalAlloc
// contract; the counter updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let s = slot();
        s.allocs.fetch_add(1, Ordering::Relaxed);
        s.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let s = slot();
        s.allocs.fetch_add(1, Ordering::Relaxed);
        s.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink counts as one allocation event for the bytes
        // actually requested; the old block is not re-counted.
        let s = slot();
        s.allocs.fetch_add(1, Ordering::Relaxed);
        s.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(feature = "global")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether this build actually counts (the `global` feature installed
/// the allocator). Without it, [`snapshot`] legitimately reads zeros.
pub fn counting() -> bool {
    cfg!(feature = "global")
}

/// Totals since process start: `(allocations, bytes_requested)`.
///
/// Sums the shards; concurrent updates make this a point-in-time
/// estimate, exact once the threads being measured have joined.
pub fn snapshot() -> (u64, u64) {
    let mut allocs = 0u64;
    let mut bytes = 0u64;
    for s in SLOTS.iter() {
        allocs = allocs.wrapping_add(s.allocs.load(Ordering::Relaxed));
        bytes = bytes.wrapping_add(s.bytes.load(Ordering::Relaxed));
    }
    (allocs, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_monotone_nondecreasing() {
        let (a0, b0) = snapshot();
        let v: Vec<u64> = (0..1000).collect();
        std::hint::black_box(&v);
        let (a1, b1) = snapshot();
        assert!(a1 >= a0 && b1 >= b0);
        if counting() {
            assert!(a1 > a0, "a fresh Vec must be counted");
            assert!(b1 - b0 >= 8000, "the Vec's bytes must be counted");
        }
    }

    #[test]
    fn counting_matches_feature() {
        assert_eq!(counting(), cfg!(feature = "global"));
    }

    #[test]
    fn threads_land_in_bounds() {
        // Hammer from several threads; nothing panics and totals move
        // when the feature is on.
        let (a0, _) = snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        let v = vec![i as u8; 64];
                        std::hint::black_box(&v);
                    }
                });
            }
        });
        let (a1, _) = snapshot();
        if counting() {
            assert!(a1 - a0 >= 400);
        }
    }
}
