//! # csaw-faults — deterministic fault injection for the upload pipeline
//!
//! The paper ships measurements opportunistically over Tor and an
//! OONI-style collector tier (§4.5, §5) precisely because the upload
//! path is *expected* to fail, be blocked, or partially succeed. This
//! crate makes that reality testable: every fault is scheduled in
//! virtual time and decided by a seeded [`DetRng`](csaw_simnet::rng::DetRng)
//! stream — never wall clock — so a chaos run is as bit-reproducible as
//! a clean one, and a failure found at seed 1234 replays forever.
//!
//! Injection points:
//!
//! - [`FaultyBackend`] wraps any [`StorageBackend`](csaw_store::StorageBackend)
//!   and injects whole-batch write failures, torn writes (a prefix of
//!   the batch lands, the rest is deferred in the receipt), and
//!   blocked-list download failures — covering `ServerDb::ingest` and
//!   `blocked_for_as` unavailability when installed via the server
//!   builder.
//! - [`OutageSchedule`] turns a seed into alternating up/down windows
//!   (exponentially distributed holding times) for modelling collector
//!   blockage and store maintenance windows.
//! - `csaw_simnet::link::FlapProfile` (in the simnet crate) gives links
//!   periodic loss bursts for the same experiments.
//!
//! Every injected fault is counted ([`FaultyBackend::snapshot`]) and
//! emitted as a `fault.*` obs event, so a chaos experiment can assert
//! the exact accounting identity: nothing is lost silently.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod windows;

pub use backend::{FaultProfile, FaultSnapshot, FaultyBackend};
pub use windows::OutageSchedule;
