//! Seed-deterministic outage windows.
//!
//! An [`OutageSchedule`] is a precomputed, sorted list of `[start, end)`
//! downtime windows over a horizon. Holding times alternate between
//! "up" and "down" phases with exponentially distributed durations, all
//! drawn from a labelled [`DetRng`] fork — so two schedules generated
//! with the same seed and label are identical, and adding a schedule
//! for a new component never perturbs existing ones.

use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};

/// Alternating up/down windows over a horizon, queryable by instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutageSchedule {
    /// Sorted, non-overlapping `[start, end)` downtime windows.
    windows: Vec<(SimTime, SimTime)>,
}

/// Exponential holding time with the given mean (inverse-CDF sampling
/// from one uniform draw; mean 0 yields the zero span).
fn exp_duration(rng: &mut DetRng, mean: SimDuration) -> SimDuration {
    if mean.is_zero() {
        return SimDuration::ZERO;
    }
    // 1 - u is in (0, 1], so ln is finite and non-positive.
    let u = rng.f64();
    mean.mul_f64(-(1.0 - u).ln())
}

impl OutageSchedule {
    /// Generate alternating up/down phases until `horizon`. `label`
    /// names the faulted component (e.g. `"store-ingest"`,
    /// `"collector-b"`): schedules with different labels are
    /// independent streams of the same seed.
    pub fn generate(
        seed: u64,
        label: &str,
        horizon: SimDuration,
        mean_up: SimDuration,
        mean_down: SimDuration,
    ) -> OutageSchedule {
        let mut rng = DetRng::new(seed).fork(label);
        let mut windows = Vec::new();
        if mean_down.is_zero() {
            return OutageSchedule { windows };
        }
        let mut t = SimTime::ZERO + exp_duration(&mut rng, mean_up);
        while t < SimTime::ZERO + horizon {
            // Downtime of at least 1 µs so the window is observable.
            let down = exp_duration(&mut rng, mean_down).max(SimDuration::from_micros(1));
            let end = t.saturating_add(down);
            windows.push((t, end));
            t = end + exp_duration(&mut rng, mean_up).max(SimDuration::from_micros(1));
        }
        OutageSchedule { windows }
    }

    /// A schedule from explicit windows (sorted internally).
    pub fn from_windows(mut windows: Vec<(SimTime, SimTime)>) -> OutageSchedule {
        windows.sort();
        OutageSchedule { windows }
    }

    /// Is the component down at `now`?
    pub fn is_down(&self, now: SimTime) -> bool {
        // Binary search for the last window starting at or before `now`.
        let i = self.windows.partition_point(|(start, _)| *start <= now);
        i > 0 && now < self.windows[i - 1].1
    }

    /// The downtime windows, sorted.
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }

    /// Total scheduled downtime.
    pub fn downtime(&self) -> SimDuration {
        self.windows
            .iter()
            .fold(SimDuration::ZERO, |acc, (s, e)| acc + e.duration_since(*s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            OutageSchedule::generate(
                7,
                "store-ingest",
                SimDuration::from_secs(3_600),
                SimDuration::from_secs(300),
                SimDuration::from_secs(60),
            )
        };
        assert_eq!(mk(), mk());
        assert!(!mk().windows().is_empty());
    }

    #[test]
    fn labels_are_independent_streams() {
        let a = OutageSchedule::generate(
            7,
            "collector-a",
            SimDuration::from_secs(3_600),
            SimDuration::from_secs(300),
            SimDuration::from_secs(60),
        );
        let b = OutageSchedule::generate(
            7,
            "collector-b",
            SimDuration::from_secs(3_600),
            SimDuration::from_secs(300),
            SimDuration::from_secs(60),
        );
        assert_ne!(a, b);
    }

    #[test]
    fn is_down_matches_windows() {
        let s = OutageSchedule::from_windows(vec![
            (SimTime::from_secs(10), SimTime::from_secs(20)),
            (SimTime::from_secs(50), SimTime::from_secs(55)),
        ]);
        assert!(!s.is_down(SimTime::from_secs(5)));
        assert!(s.is_down(SimTime::from_secs(10)));
        assert!(s.is_down(SimTime::from_secs(19)));
        assert!(!s.is_down(SimTime::from_secs(20)));
        assert!(s.is_down(SimTime::from_secs(52)));
        assert!(!s.is_down(SimTime::from_secs(100)));
        assert_eq!(s.downtime(), SimDuration::from_secs(15));
    }

    #[test]
    fn zero_mean_down_is_always_up() {
        let s = OutageSchedule::generate(
            1,
            "x",
            SimDuration::from_secs(1_000),
            SimDuration::from_secs(10),
            SimDuration::ZERO,
        );
        assert!(s.windows().is_empty());
        assert!(!s.is_down(SimTime::from_secs(500)));
    }
}
