//! A fault-injecting [`StorageBackend`] decorator.
//!
//! [`FaultyBackend`] wraps any backend and, driven by a seeded
//! [`DetRng`] plus optional [`OutageSchedule`]s, injects the three
//! failure shapes the upload pipeline must survive:
//!
//! - **write failures** — the whole batch bounces with
//!   [`StoreError::Unavailable`]; nothing is stored;
//! - **torn writes** — only a prefix of the batch reaches the inner
//!   backend; the rest comes back in the receipt's `deferred_indices`
//!   (stored *nowhere*, so a client that does not resubmit them has
//!   lost data);
//! - **download failures** — `blocked_for_as` errors, modelling a
//!   blocked or overloaded snapshot endpoint.
//!
//! Ingest-side decisions use the batch's own `posted_at` as "now";
//! download-side decisions use the virtual clock advanced through
//! [`FaultyBackend::set_now`]. Both are pure functions of (seed,
//! virtual time, call order), so chaos runs are bit-reproducible.

use crate::windows::OutageSchedule;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimDuration;
use csaw_simnet::time::SimTime;
use csaw_simnet::topology::Asn;
use csaw_store::{
    Batch, ConfidenceFilter, GlobalRecord, IngestReceipt, StorageBackend, StoreError, Tally, Uuid,
    VoteLedger,
};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which faults to arm, and how hard.
#[derive(Debug, Clone, Default)]
pub struct FaultProfile {
    /// Per-batch probability of a whole-batch write failure.
    pub write_fail_p: f64,
    /// Per-batch probability (among surviving batches of ≥ 2 reports)
    /// of a torn write: a random proper prefix lands, the suffix is
    /// deferred.
    pub torn_write_p: f64,
    /// Per-call probability of a blocked-list download failure.
    pub download_fail_p: f64,
    /// Scheduled ingest unavailability windows (checked against the
    /// batch's `posted_at`).
    pub ingest_outages: Option<OutageSchedule>,
    /// Scheduled download unavailability windows (checked against the
    /// clock set via [`FaultyBackend::set_now`]).
    pub download_outages: Option<OutageSchedule>,
}

impl FaultProfile {
    /// A profile that injects nothing (the identity decorator).
    pub fn none() -> FaultProfile {
        FaultProfile::default()
    }

    /// Builder: whole-batch write-failure probability.
    pub fn with_write_fail_p(mut self, p: f64) -> FaultProfile {
        self.write_fail_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: torn-write probability.
    pub fn with_torn_write_p(mut self, p: f64) -> FaultProfile {
        self.torn_write_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: download-failure probability.
    pub fn with_download_fail_p(mut self, p: f64) -> FaultProfile {
        self.download_fail_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: scheduled ingest outage windows.
    pub fn with_ingest_outages(mut self, s: OutageSchedule) -> FaultProfile {
        self.ingest_outages = Some(s);
        self
    }

    /// Builder: scheduled download outage windows.
    pub fn with_download_outages(mut self, s: OutageSchedule) -> FaultProfile {
        self.download_outages = Some(s);
        self
    }
}

/// Injected-fault counters, read via [`FaultyBackend::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Whole-batch write failures injected.
    pub write_failures: u64,
    /// Batches torn (prefix stored, suffix deferred).
    pub torn_batches: u64,
    /// Reports deferred by torn writes.
    pub deferred_reports: u64,
    /// Download failures injected.
    pub download_failures: u64,
}

/// The fault-injecting decorator. Internally synchronized like every
/// backend: one `FaultyBackend` is shared across ingestion threads, and
/// its RNG draws are serialized so a given (seed, call order) always
/// produces the same fault sequence.
pub struct FaultyBackend {
    inner: Arc<dyn StorageBackend>,
    profile: FaultProfile,
    rng: Mutex<DetRng>,
    now_us: AtomicU64,
    write_failures: AtomicU64,
    torn_batches: AtomicU64,
    deferred_reports: AtomicU64,
    download_failures: AtomicU64,
}

impl fmt::Debug for FaultyBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyBackend")
            .field("profile", &self.profile)
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl FaultyBackend {
    /// Wrap `inner`, deciding faults with a generator forked from
    /// `seed` (label `"faulty-backend"`, so arming faults never
    /// perturbs any other consumer of the same seed).
    pub fn new(inner: Arc<dyn StorageBackend>, profile: FaultProfile, seed: u64) -> FaultyBackend {
        FaultyBackend {
            inner,
            profile,
            rng: Mutex::new(DetRng::new(seed).fork("faulty-backend")),
            now_us: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            torn_batches: AtomicU64::new(0),
            deferred_reports: AtomicU64::new(0),
            download_failures: AtomicU64::new(0),
        }
    }

    /// Advance the virtual clock used for download-outage decisions
    /// (monotone; earlier values are ignored).
    pub fn set_now(&self, now: SimTime) {
        self.now_us.fetch_max(now.as_micros(), Ordering::Relaxed);
    }

    /// Current injected-fault counts.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            write_failures: self.write_failures.load(Ordering::Relaxed),
            torn_batches: self.torn_batches.load(Ordering::Relaxed),
            deferred_reports: self.deferred_reports.load(Ordering::Relaxed),
            download_failures: self.download_failures.load(Ordering::Relaxed),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn StorageBackend {
        self.inner.as_ref()
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.now_us.load(Ordering::Relaxed))
    }
}

impl StorageBackend for FaultyBackend {
    fn ingest(&self, batch: &Batch) -> Result<IngestReceipt, StoreError> {
        self.set_now(batch.posted_at);
        let in_outage = self
            .profile
            .ingest_outages
            .as_ref()
            .is_some_and(|s| s.is_down(batch.posted_at));
        let (fail, tear_at) = {
            let mut rng = self.rng.lock().unwrap();
            let fail = in_outage || rng.chance(self.profile.write_fail_p);
            // Draw the tear decision even for failing batches so the
            // fault stream consumed per batch is constant-length: the
            // sequence of decisions depends only on how many batches
            // arrived, not on earlier outcomes.
            let torn = rng.chance(self.profile.torn_write_p);
            let cut = if batch.len() >= 2 {
                rng.range_u64(1, batch.len() as u64) as usize
            } else {
                batch.len()
            };
            (fail, (torn && batch.len() >= 2).then_some(cut))
        };
        if fail {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            csaw_obs::event!("fault.ingest.unavailable", batch = batch.len() as u64);
            return Err(StoreError::Unavailable("injected ingest fault"));
        }
        if let Some(cut) = tear_at {
            let prefix = Batch::new(
                batch.client,
                batch.reports()[..cut].to_vec(),
                batch.posted_at,
            );
            let mut receipt = self.inner.ingest(&prefix)?;
            receipt.deferred_indices.extend(cut..batch.len());
            self.torn_batches.fetch_add(1, Ordering::Relaxed);
            self.deferred_reports
                .fetch_add((batch.len() - cut) as u64, Ordering::Relaxed);
            csaw_obs::event!(
                "fault.ingest.torn",
                stored = cut as u64,
                deferred = (batch.len() - cut) as u64
            );
            return Ok(receipt);
        }
        self.inner.ingest(batch)
    }

    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        let in_outage = self
            .profile
            .download_outages
            .as_ref()
            .is_some_and(|s| s.is_down(self.now()));
        let fail = in_outage
            || self
                .rng
                .lock()
                .unwrap()
                .chance(self.profile.download_fail_p);
        if fail {
            self.download_failures.fetch_add(1, Ordering::Relaxed);
            csaw_obs::event!("fault.download.unavailable", asn = asn.0 as u64);
            return Err(StoreError::Unavailable("injected download fault"));
        }
        self.inner.blocked_for_as(asn, filter)
    }

    fn tally(&self, url: &str, asn: Asn) -> Tally {
        self.inner.tally(url, asn)
    }

    fn revoke(&self, client: Uuid) {
        self.inner.revoke(client)
    }

    fn remove_reporter_records(&self, client: Uuid) -> usize {
        self.inner.remove_reporter_records(client)
    }

    fn expire_records(&self, now: SimTime, max_age: SimDuration) -> usize {
        self.set_now(now);
        self.inner.expire_records(now, max_age)
    }

    fn record_count(&self) -> usize {
        self.inner.record_count()
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&GlobalRecord)) {
        self.inner.for_each_record(f)
    }

    fn ledger(&self) -> &VoteLedger {
        self.inner.ledger()
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::blocking::BlockingType;
    use csaw_store::{Report, ShardedStore};

    fn batch(client: u64, urls: &[&str], t: u64) -> Batch {
        Batch::new(
            Uuid::from_raw(client),
            urls.iter()
                .map(|u| Report {
                    url: (*u).into(),
                    asn: 1,
                    measured_at_us: t,
                    stages: vec![BlockingType::HttpDrop],
                })
                .collect(),
            SimTime::from_micros(t),
        )
    }

    fn faulty(profile: FaultProfile, seed: u64) -> FaultyBackend {
        FaultyBackend::new(Arc::new(ShardedStore::new(4).unwrap()), profile, seed)
    }

    #[test]
    fn no_faults_is_transparent() {
        let b = faulty(FaultProfile::none(), 1);
        let r = b
            .ingest(&batch(1, &["http://a.com/", "http://b.com/"], 5))
            .unwrap();
        assert_eq!(r.accepted, 2);
        assert!(r.is_complete());
        assert_eq!(b.snapshot(), FaultSnapshot::default());
        assert_eq!(
            b.blocked_for_as(Asn(1), &ConfidenceFilter::default())
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn write_failures_store_nothing_and_are_counted() {
        let b = faulty(FaultProfile::none().with_write_fail_p(1.0), 2);
        let err = b.ingest(&batch(1, &["http://a.com/"], 5)).unwrap_err();
        assert_eq!(err, StoreError::Unavailable("injected ingest fault"));
        assert_eq!(b.record_count(), 0);
        assert_eq!(b.snapshot().write_failures, 1);
    }

    #[test]
    fn torn_writes_defer_a_suffix_exactly() {
        let b = faulty(FaultProfile::none().with_torn_write_p(1.0), 3);
        let urls = ["http://a.com/", "http://b.com/", "http://c.com/"];
        let r = b.ingest(&batch(1, &urls, 5)).unwrap();
        let cut = r.accepted;
        assert!(cut >= 1 && cut < urls.len(), "proper prefix, got {cut}");
        assert_eq!(
            r.deferred_indices,
            (cut..urls.len()).collect::<Vec<_>>(),
            "deferred = the untouched suffix"
        );
        assert_eq!(b.record_count(), cut, "only the prefix landed");
        assert_eq!(b.snapshot().deferred_reports, (urls.len() - cut) as u64);
    }

    #[test]
    fn download_outage_window_fails_reads_then_recovers() {
        let sched =
            OutageSchedule::from_windows(vec![(SimTime::from_secs(10), SimTime::from_secs(20))]);
        let b = faulty(FaultProfile::none().with_download_outages(sched), 4);
        b.ingest(&batch(1, &["http://a.com/"], 1_000_000)).unwrap();
        b.set_now(SimTime::from_secs(15));
        assert_eq!(
            b.blocked_for_as(Asn(1), &ConfidenceFilter::default()),
            Err(StoreError::Unavailable("injected download fault"))
        );
        // Past the window the same call serves again.
        b.set_now(SimTime::from_secs(30));
        assert_eq!(
            b.blocked_for_as(Asn(1), &ConfidenceFilter::default())
                .unwrap()
                .len(),
            1
        );
        assert_eq!(b.snapshot().download_failures, 1);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = || {
            let b = faulty(
                FaultProfile::none()
                    .with_write_fail_p(0.3)
                    .with_torn_write_p(0.3),
                42,
            );
            let mut outcomes = Vec::new();
            for i in 0..50u64 {
                let r = b.ingest(&batch(i, &["http://a.com/", "http://b.com/"], i));
                outcomes.push(match r {
                    Ok(rec) => (rec.accepted, rec.deferred_indices.len()),
                    Err(_) => (usize::MAX, 0),
                });
            }
            (outcomes, b.snapshot())
        };
        assert_eq!(run(), run());
    }
}
