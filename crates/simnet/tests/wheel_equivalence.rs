//! Timing-wheel ↔ binary-heap equivalence.
//!
//! The scheduler's pending-event store changed from a `BinaryHeap`
//! ordered on `(at, seq)` to a hierarchical timing wheel. The dispatch
//! order is part of the determinism contract (same seed ⇒ byte-identical
//! traces), so this test replays large randomized schedules — dense with
//! exact-time ties and interleaved mid-run insertions — against a
//! straightforward heap model and requires the event streams to match
//! element for element.

use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::Scheduler;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The old implementation, kept as an executable specification: a
/// max-heap of `Reverse((at, seq))` with a clamp-to-now rule.
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    now: u64,
    seq: u64,
}

impl HeapModel {
    fn new() -> Self {
        HeapModel {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u64) {
        let at = at.as_micros().max(self.now);
        self.heap.push(Reverse((at, self.seq, payload)));
        self.seq += 1;
    }

    fn next(&mut self) -> Option<(u64, u64)> {
        let Reverse((at, _, payload)) = self.heap.pop()?;
        self.now = at;
        Some((at, payload))
    }
}

/// 10k events at randomized times drawn from a small range (so ties are
/// plentiful), fully drained: identical `(time, payload)` streams.
#[test]
fn drain_order_matches_heap_reference_with_ties() {
    for seed in [1u64, 7, 42] {
        let mut rng = DetRng::new(seed);
        let mut wheel: Scheduler<u64> = Scheduler::new();
        let mut heap = HeapModel::new();
        for i in 0..10_000u64 {
            // ~500 distinct instants for 10k events: heavy tie pressure,
            // with occasional far-future outliers to cross wheel levels.
            let at = if rng.range_u64(0, 100) == 0 {
                SimTime::from_micros(1_000_000_000 + rng.range_u64(0, 500))
            } else {
                SimTime::from_micros(rng.range_u64(0, 500) * 1_000)
            };
            wheel.schedule(at, i);
            heap.schedule(at, i);
        }
        let mut n = 0u64;
        loop {
            let got = wheel.next();
            let want = heap.next();
            assert_eq!(
                got.map(|(t, e)| (t.as_micros(), e)),
                want,
                "seed {seed}: stream diverged at element {n}"
            );
            if want.is_none() {
                break;
            }
            n += 1;
        }
        assert_eq!(n, 10_000, "seed {seed}: wrong number of events drained");
    }
}

/// Interleaved schedule/pop traffic, including past-time schedules that
/// clamp to `now` and same-instant follow-ups scheduled mid-drain — the
/// cascade-sensitive cases a pure pre-load-then-drain run never hits.
#[test]
fn interleaved_insert_pop_matches_heap_reference() {
    let mut rng = DetRng::new(99);
    let mut wheel: Scheduler<u64> = Scheduler::new();
    let mut heap = HeapModel::new();
    let mut payload = 0u64;
    for round in 0..2_000u64 {
        let burst = rng.range_u64(1, 4);
        for _ in 0..burst {
            // Mix: near-past (clamps), near-future, same-ms ties,
            // far-future (lives several wheel levels up until cascaded).
            let at = match rng.range_u64(0, 4) {
                0 => SimTime::from_micros(rng.range_u64(0, 1 + round)),
                1 => SimTime::from_micros(round * 1_000 + rng.range_u64(0, 2_000)),
                2 => SimTime::from_micros(round * 1_000),
                _ => SimTime::from_micros(10_000_000 + rng.range_u64(0, 1_000)),
            };
            wheel.schedule(at, payload);
            heap.schedule(at, payload);
            payload += 1;
        }
        for _ in 0..rng.range_u64(0, 3) {
            let got = wheel.next().map(|(t, e)| (t.as_micros(), e));
            assert_eq!(got, heap.next(), "round {round}: pop diverged");
        }
    }
    loop {
        let got = wheel.next().map(|(t, e)| (t.as_micros(), e));
        let want = heap.next();
        assert_eq!(got, want, "final drain diverged");
        if want.is_none() {
            break;
        }
    }
}

/// `run_until` must keep its horizon/tiling semantics on the wheel:
/// events at the horizon fire, later ones stay, handler re-scheduling
/// works, and repeated windows tile the clock.
#[test]
fn run_until_windows_replay_identically() {
    let mut rng = DetRng::new(1234);
    let schedule: Vec<(u64, u64)> = (0..5_000u64)
        .map(|i| (rng.range_u64(0, 2_000_000), i))
        .collect();
    let run = |windows_us: u64| -> Vec<(u64, u64)> {
        let mut s: Scheduler<u64> = Scheduler::new();
        for &(at, p) in &schedule {
            s.schedule(SimTime::from_micros(at), p);
        }
        let mut seen = Vec::new();
        let mut horizon = SimTime::ZERO;
        while s.pending() > 0 {
            horizon += SimDuration::from_micros(windows_us);
            s.run_until(horizon, |t, e, sched| {
                seen.push((t.as_micros(), e));
                if e < 200 {
                    // Same-time follow-up: fires in this window, after
                    // every earlier-scheduled event at this instant.
                    sched.schedule(t, e + 100_000);
                }
            });
        }
        seen
    };
    // One giant window vs many small windows: identical event streams.
    let coarse = run(10_000_000);
    let fine = run(1_000);
    assert_eq!(coarse.len(), 5_000 + 200);
    assert_eq!(coarse, fine, "window tiling changed the event stream");
}
