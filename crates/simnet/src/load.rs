//! Client-side load model.
//!
//! Section 4.3.1 of the paper observes that redundant requests "may degrade
//! performance at high loads" (citing the tail-at-scale literature), which
//! is why C-Saw staggers the redundant copy and caps redundancy at two.
//! Figures 5b, 5c and 6a all hinge on this effect, so the reproduction
//! models it explicitly: concurrent in-flight transfers at one client share
//! the access bottleneck and compete for CPU, inflating each other's
//! completion times.

use crate::rng::DetRng;
use crate::time::SimDuration;

/// How concurrent work at the client inflates an individual transfer.
#[derive(Debug, Clone, Copy)]
pub struct LoadModel {
    /// Fractional PLT inflation contributed by each additional concurrent
    /// copy (bandwidth sharing + parse/render CPU contention).
    pub per_copy_inflation: f64,
    /// Random extra inflation (uniform in `[0, tail_inflation]` per extra
    /// copy) modelling scheduling jitter — this is what fattens the tail
    /// when redundancy is too aggressive (Figure 6a's +17% p95 at three
    /// copies).
    pub tail_inflation: f64,
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel {
            per_copy_inflation: 0.18,
            tail_inflation: 0.35,
        }
    }
}

impl LoadModel {
    /// Inflate a base completion time given `concurrent` total in-flight
    /// transfers at the client (1 = just this one: no inflation).
    pub fn inflate(&self, base: SimDuration, concurrent: usize, rng: &mut DetRng) -> SimDuration {
        if concurrent <= 1 {
            return base;
        }
        self.inflate_weighted(base, (concurrent - 1) as f64, rng)
    }

    /// Inflate by a *fractional* amount of extra concurrent work.
    ///
    /// The load another transfer imposes is proportional to the data it
    /// moves relative to this one: a redundant direct copy that dies in a
    /// SYN black hole moves nothing and costs ~nothing; a tiny block page
    /// racing a 360 KB fetch costs a sliver; a full duplicate costs a
    /// whole unit. Callers express that as `extra_units` ∈ [0, n].
    pub fn inflate_weighted(
        &self,
        base: SimDuration,
        extra_units: f64,
        rng: &mut DetRng,
    ) -> SimDuration {
        if extra_units <= 0.0 {
            return base;
        }
        let deterministic = self.per_copy_inflation * extra_units;
        let jitter = rng.range_f64(0.0, self.tail_inflation) * extra_units;
        base.mul_f64(1.0 + deterministic + jitter)
    }
}

/// Tracks overlapping transfer intervals so open-loop workloads (e.g. the
/// paper's 100 requests with U(1 s, 5 s) inter-arrivals) can ask "how many
/// transfers were in flight when this one started?".
#[derive(Debug, Default, Clone)]
pub struct InFlightTracker {
    /// (start, end) of every admitted transfer, in virtual time µs.
    intervals: Vec<(u64, u64)>,
}

impl InFlightTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count transfers overlapping instant `t` (µs).
    pub fn in_flight_at(&self, t: u64) -> usize {
        self.intervals
            .iter()
            .filter(|(s, e)| *s <= t && t < *e)
            .count()
    }

    /// Record a transfer occupying `[start, end)`.
    pub fn record(&mut self, start: u64, end: u64) {
        debug_assert!(start <= end);
        self.intervals.push((start, end));
    }

    /// Number of recorded transfers.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_copy_not_inflated() {
        let mut rng = DetRng::new(1);
        let m = LoadModel::default();
        let base = SimDuration::from_millis(1000);
        assert_eq!(m.inflate(base, 1, &mut rng), base);
        assert_eq!(m.inflate(base, 0, &mut rng), base);
    }

    #[test]
    fn inflation_grows_with_concurrency() {
        let mut rng = DetRng::new(2);
        let m = LoadModel::default();
        let base = SimDuration::from_millis(1000);
        let n = 200;
        let avg = |copies: usize, rng: &mut DetRng| -> u64 {
            (0..n)
                .map(|_| m.inflate(base, copies, rng).as_micros())
                .sum::<u64>()
                / n
        };
        let one = avg(1, &mut rng);
        let two = avg(2, &mut rng);
        let three = avg(3, &mut rng);
        assert!(two > one, "{two} <= {one}");
        assert!(three > two, "{three} <= {two}");
    }

    #[test]
    fn inflation_bounded() {
        let mut rng = DetRng::new(3);
        let m = LoadModel {
            per_copy_inflation: 0.2,
            tail_inflation: 0.3,
        };
        let base = SimDuration::from_millis(1000);
        for _ in 0..100 {
            let t = m.inflate(base, 2, &mut rng);
            assert!(t >= base.mul_f64(1.2));
            assert!(t <= base.mul_f64(1.5));
        }
    }

    #[test]
    fn tracker_counts_overlaps() {
        let mut tr = InFlightTracker::new();
        assert!(tr.is_empty());
        tr.record(0, 100);
        tr.record(50, 150);
        tr.record(200, 300);
        assert_eq!(tr.in_flight_at(75), 2);
        assert_eq!(tr.in_flight_at(160), 0);
        assert_eq!(tr.in_flight_at(250), 1);
        // Boundary semantics: start inclusive, end exclusive.
        assert_eq!(tr.in_flight_at(100), 1);
        assert_eq!(tr.in_flight_at(0), 1);
        assert_eq!(tr.len(), 3);
    }
}
