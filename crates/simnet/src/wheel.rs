//! A hierarchical timing wheel: the scheduler's pending-event store.
//!
//! The discrete-event scheduler used to keep its pending events in a
//! `BinaryHeap`, paying `O(log n)` comparisons (on an `(at, seq)` pair)
//! for every push *and* pop. At simulation scale the event loop is the
//! hot path, so this module replaces the heap with a hierarchical
//! timing wheel tuned for the drain pattern the simulator actually has
//! (schedule a burst, then pop in time order):
//!
//! - **the run** — the earliest 1024-µs window, kept as one `Vec`
//!   sorted descending by firing time (popping the next event is a
//!   plain `Vec::pop` from the back); the run buffer is reused for the
//!   wheel's whole life, so the hottest structure never leaves cache;
//! - **level 1** — 1024 slots of one run-window each, covering time
//!   bits 10–19 (≈ a second of simulated time per rotation), stored as
//!   fixed segments of one shared slab allocation (with rare per-slot
//!   spill `Vec`s) so bucketing a burst costs no allocator traffic;
//! - **levels 2–9** — 64 slots each of 6 time bits, covering bits
//!   20–67 (≥ the full `u64` µs range).
//!
//! Push is `O(1)` (append to a slab segment); pop is `O(1)` amortized
//! — a typical event is touched three times in its whole life (push
//! into a level-1 segment, one move-and-sort when its window is
//! promoted to be the run, one pop), and bucket lookups are a couple
//! of `trailing_zeros` calls on occupancy bitmaps.
//!
//! ## Placement
//!
//! Times are absolute microseconds (`u64`). The wheel keeps a `cursor`
//! — its own clock, always ≤ every pending time — and an event at time
//! `at` lives at the level indexed by the *highest bit where `at`
//! differs from the cursor*: bits 0–9 → the run, bits 10–19 → level 1,
//! bits 20+ → the 6-bit level containing that bit.
//!
//! ## Cascading and ordering
//!
//! When the run empties, the lowest occupied level-1 bucket is
//! promoted: the cursor advances to that bucket's window start, the
//! bucket's slab segment (plus any spill) is moved into the run, and
//! one stable sort (see `sort_promoted_run`) puts it in pop order. When level 1 is also
//! empty, the lowest bucket of the lowest non-empty 6-bit level is
//! cascaded: its events are re-placed, each landing strictly lower. Two
//! invariants make the pop order exactly the heap's `(at, seq)` order:
//!
//! - the run always holds the globally earliest pending events, and
//!   the promotion sort orders by `(time, insertion index)` — so
//!   draining from the back is earliest-first with insertion-order
//!   tie-breaking;
//! - the cursor can only *enter* a bucket's time window by promoting or
//!   cascading that bucket first, so equal-time events always meet in
//!   the same bucket (or the run) with their original insertion order
//!   intact. A late push whose time falls inside the live run window is
//!   spliced into the run *after* every pending entry with an equal or
//!   earlier time, which is exactly where its (larger) sequence number
//!   would have sorted it.

/// Width of the run's window: `2^10` µs.
const RUN_BITS: u32 = 10;
/// Level 1: 1024 slots of one run-window each (time bits 10–19).
const L1_BITS: u32 = 10;
const L1_SLOTS: usize = 1 << L1_BITS;
/// Entries per level-1 slot held inline in the slab arena; a slot's
/// overflow beyond this spills to a heap-allocated `Vec`.
const L1_SEG: usize = 16;
/// First time bit covered by the 6-bit upper levels.
const HI_SHIFT: u32 = RUN_BITS + L1_BITS;
/// Bits per upper level.
const HI_BITS: u32 = 6;
const HI_SLOTS: usize = 1 << HI_BITS;
/// `8 × 6 = 48` bits above `HI_SHIFT` ≥ the full `u64` µs range.
const HI_LEVELS: usize = 8;

/// One pending event. Deliberately two words for a word-sized payload:
/// tie-breaking is positional (buckets and the run preserve insertion
/// order), so no sequence number is stored.
#[derive(Debug, Clone)]
pub(crate) struct Entry<E> {
    /// Absolute firing time, µs.
    pub at: u64,
    /// The scheduled payload.
    pub payload: E,
}

fn boxed_buckets<E, const N: usize>() -> Box<[Vec<Entry<E>>; N]> {
    let v: Vec<Vec<Entry<E>>> = (0..N).map(|_| Vec::new()).collect();
    match v.into_boxed_slice().try_into() {
        Ok(b) => b,
        Err(_) => unreachable!("built with exactly N buckets"),
    }
}

impl<E> std::fmt::Debug for TimingWheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl<E> Drop for TimingWheel<E> {
    fn drop(&mut self) {
        // The spill `Vec`s, the run, and the upper levels drop
        // themselves; only initialized slab segments need explicit
        // drops — and none at all for plain-data payloads.
        if std::mem::needs_drop::<E>() {
            for slot in 0..L1_SLOTS {
                let base = slot * L1_SEG;
                for m in &mut self.slab[base..base + self.seg_len[slot] as usize] {
                    // SAFETY: the segment prefix up to `seg_len[slot]`
                    // is initialized (field invariant) and is dropped
                    // exactly once here — promotions zero `seg_len`
                    // before this can run.
                    #[allow(unsafe_code)]
                    unsafe {
                        m.assume_init_drop()
                    };
                }
            }
        }
    }
}

/// The wheel itself. See the module docs for the layout.
pub(crate) struct TimingWheel<E> {
    /// The earliest window's events, sorted *descending* by `at` with
    /// equal times in reverse insertion order, so `Vec::pop` from the
    /// back yields `(at, insertion)` order with no per-pop memmove.
    /// The buffer is retained across promotions, so it stays warm for
    /// the wheel's whole life.
    run: Vec<Entry<E>>,
    /// Level-1 bucket storage: one slab allocation holding an
    /// `L1_SEG`-entry segment per slot, instead of one heap block per
    /// bucket — a fresh wheel that buckets a 10k-event burst would
    /// otherwise pay hundreds of allocator round-trips per rotation.
    ///
    /// Invariant (the whole `unsafe` story of this module): for every
    /// slot, `slab[slot * L1_SEG ..][.. seg_len[slot]]` is initialized,
    /// and nothing else in the slab is. `seg_len` is bumped after a
    /// write, zeroed when a promotion moves the segment out, and
    /// drained by `Drop` for payloads that need dropping.
    slab: Box<[std::mem::MaybeUninit<Entry<E>>]>,
    /// Initialized entries in each slot's slab segment (≤ `L1_SEG`).
    seg_len: [u8; L1_SLOTS],
    /// Bit per slot: the slot also has spilled entries in `l1`.
    /// Checked before touching the spill `Vec`s so the common
    /// no-spill promotion never loads their headers.
    l1_spill: [u64; L1_SLOTS / 64],
    /// Level-1 spill buckets, used only past `L1_SEG` entries. Empty
    /// `Vec`s don't allocate; a drained bucket keeps its buffer.
    l1: Box<[Vec<Entry<E>>; L1_SLOTS]>,
    /// Level-1 occupancy, `L1_SLOTS / 64` words, plus a summary word (bit `w` ⇔
    /// `l1_words[w] != 0`) so the lowest occupied slot is two
    /// `trailing_zeros` away.
    l1_words: [u64; L1_SLOTS / 64],
    l1_summary: u64,
    /// Upper-level buckets, flattened as `level * HI_SLOTS + slot`.
    hi: Box<[Vec<Entry<E>>; HI_LEVELS * HI_SLOTS]>,
    /// Per-upper-level occupancy bitmap, plus a summary word.
    hi_occ: [u64; HI_LEVELS],
    hi_summary: u64,
    /// Cascade staging area: buffers are swapped through here so a
    /// cascade never throws an allocation away.
    scratch: Vec<Entry<E>>,
    /// The wheel clock: never exceeds the earliest pending time.
    cursor: u64,
    len: usize,
}

impl<E> TimingWheel<E> {
    /// An empty wheel with its cursor at t = 0.
    pub fn new() -> Self {
        TimingWheel {
            run: Vec::new(),
            // Uninitialized on purpose: the slab is written before it
            // is ever read (see the invariant on the field), and not
            // zeroing ~L1_SLOTS × L1_SEG entries keeps wheel creation
            // cheap for short-lived schedulers.
            slab: Box::new_uninit_slice(L1_SLOTS * L1_SEG),
            seg_len: [0; L1_SLOTS],
            l1_spill: [0; L1_SLOTS / 64],
            l1: boxed_buckets(),
            l1_words: [0; L1_SLOTS / 64],
            l1_summary: 0,
            hi: boxed_buckets(),
            hi_occ: [0; HI_LEVELS],
            hi_summary: 0,
            scratch: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn insert(&mut self, e: Entry<E>) {
        debug_assert!(e.at >= self.cursor, "inserting behind the wheel cursor");
        let diff = self.cursor ^ e.at;
        if diff < (1 << RUN_BITS) {
            // Inside the live run window: splice *before* every pending
            // entry with at ≤ e.at (the run is descending, popped from
            // the back), which preserves insertion-order tie-breaking.
            let pos = self.run.partition_point(|p| p.at > e.at);
            self.run.insert(pos, e);
        } else if diff < (1 << HI_SHIFT) {
            let slot = ((e.at >> RUN_BITS) as usize) & (L1_SLOTS - 1);
            let n = self.seg_len[slot] as usize;
            if n < L1_SEG {
                self.slab[slot * L1_SEG + n].write(e);
                self.seg_len[slot] = (n + 1) as u8;
            } else {
                // Segment full: spill to the slot's heap bucket. The
                // segment holds the first L1_SEG arrivals and the
                // spill the rest, so concatenating segment-then-spill
                // at promotion preserves arrival order.
                self.l1[slot].push(e);
                self.l1_spill[slot >> 6] |= 1 << (slot & 63);
            }
            let w = slot >> 6;
            self.l1_words[w] |= 1 << (slot & 63);
            self.l1_summary |= 1 << w;
        } else {
            let hbit = 63 - diff.leading_zeros();
            let level = (((hbit - HI_SHIFT) / HI_BITS) as usize) & (HI_LEVELS - 1);
            let shift = HI_SHIFT + HI_BITS * level as u32;
            let slot = ((e.at >> shift) as usize) & (HI_SLOTS - 1);
            self.hi[level * HI_SLOTS + slot].push(e);
            self.hi_occ[level] |= 1 << slot;
            self.hi_summary |= 1 << level;
        }
    }

    /// Add an event. `at` must be ≥ every time already popped — the
    /// scheduler's clamp-to-now rule guarantees it.
    #[inline]
    pub fn push(&mut self, at: u64, payload: E) {
        self.insert(Entry { at, payload });
        self.len += 1;
    }

    /// The earliest pending firing time, without removing anything.
    pub fn peek(&self) -> Option<u64> {
        if let Some(e) = self.run.last() {
            return Some(e.at);
        }
        if self.l1_summary != 0 {
            let w = self.l1_summary.trailing_zeros() as usize;
            let slot = (w << 6) | self.l1_words[w].trailing_zeros() as usize;
            // Times within one bucket are not ordered, so scan the
            // slab segment and any spill.
            let base = slot * L1_SEG;
            let seg = &self.slab[base..base + self.seg_len[slot] as usize];
            // SAFETY: the segment prefix up to `seg_len[slot]` is
            // initialized (field invariant); shared borrow only.
            #[allow(unsafe_code)]
            let seg_min = seg.iter().map(|m| unsafe { m.assume_init_ref() }.at).min();
            let spill_min = self.l1[slot].iter().map(|e| e.at).min();
            return match (seg_min, spill_min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        }
        if self.hi_summary != 0 {
            let level = self.hi_summary.trailing_zeros() as usize;
            let slot = self.hi_occ[level].trailing_zeros() as usize;
            return self.hi[level * HI_SLOTS + slot].iter().map(|e| e.at).min();
        }
        None
    }

    /// Remove and return the earliest event; ties pop in push order.
    pub fn pop(&mut self) -> Option<Entry<E>> {
        self.pop_at_most(u64::MAX)
    }

    /// Put a just-promoted bucket (sitting in `run`, still in insertion
    /// order) into run order: descending by time, equal times in
    /// reverse insertion order — a stable ascending sort followed by a
    /// reverse, so `Vec::pop` from the back yields `(at, insertion)`.
    ///
    /// A packed-key unstable sort (sort `(low_bits << 16) | index` as
    /// `u32`, then permute) was tried here and *lost*: applying the
    /// permutation by cycle-following is a serial dependency chain, and
    /// at the ~10–20 entries a typical bucket holds, the std insertion
    /// sort on whole entries is already cheaper than building keys plus
    /// chasing cycles.
    fn sort_promoted_run(&mut self) {
        self.run.sort_by_key(|e| e.at);
        self.run.reverse();
    }

    /// [`TimingWheel::pop`], but only if the earliest event fires at or
    /// before `horizon` — the fused peek-then-pop the event loop runs
    /// on, so the bounded drain pays one scan per event instead of two.
    #[inline]
    pub fn pop_at_most(&mut self, horizon: u64) -> Option<Entry<E>> {
        loop {
            // Pop optimistically and push back in the rare over-horizon
            // case: one bounds check and one entry load per event
            // instead of a separate peek.
            if let Some(e) = self.run.pop() {
                if e.at > horizon {
                    self.run.push(e);
                    return None;
                }
                self.len -= 1;
                debug_assert!(e.at >= self.cursor, "popping behind the wheel cursor");
                self.cursor = e.at;
                return Some(e);
            }
            if self.len == 0 {
                return None;
            }
            // Refill is ~1/10th as frequent as the pop above; keeping
            // it out of line keeps the caller's drain loop small.
            if !self.refill(horizon) {
                return None;
            }
        }
    }

    /// Promote or cascade until the run is non-empty or nothing can
    /// fire within `horizon`. Returns whether the caller should retry.
    #[cold]
    #[inline(never)]
    fn refill(&mut self, horizon: u64) -> bool {
        if self.l1_summary != 0 {
            // Promote the lowest occupied level-1 bucket to be the
            // new run: advance the cursor to its window start, move
            // the slot's slab segment (plus any spill) into the run,
            // one stable sort.
            let w = self.l1_summary.trailing_zeros() as usize;
            let bit = self.l1_words[w].trailing_zeros();
            let slot = (w << 6) | bit as usize;
            let window_start =
                (self.cursor & !((1u64 << HI_SHIFT) - 1)) | ((slot as u64) << RUN_BITS);
            debug_assert!(
                window_start >= self.cursor,
                "promotion moved the cursor back"
            );
            if window_start > horizon {
                // Every pending event is at or after the window
                // start, so nothing can fire within the horizon.
                return false;
            }
            self.cursor = window_start;
            self.l1_words[w] &= !(1 << bit);
            if self.l1_words[w] == 0 {
                self.l1_summary &= !(1 << w);
            }
            debug_assert!(self.run.is_empty());
            let n = self.seg_len[slot] as usize;
            self.seg_len[slot] = 0;
            self.run.reserve(n);
            let base = slot * L1_SEG;
            for m in &self.slab[base..base + n] {
                // SAFETY: `slab[base..base + seg_len[slot]]` is
                // initialized (field invariant); `seg_len` was zeroed
                // above, so each entry is moved out exactly once and
                // never dropped in place.
                #[allow(unsafe_code)]
                self.run.push(unsafe { m.assume_init_read() });
            }
            if self.l1_spill[w] & (1 << bit) != 0 {
                self.l1_spill[w] &= !(1 << bit);
                self.run.append(&mut self.l1[slot]);
            }
            self.sort_promoted_run();
            return true;
        }
        // Cascade: advance the cursor to the start of the lowest
        // non-empty upper level's lowest bucket window and re-place
        // its events; each lands strictly lower, so repeated refills
        // terminate.
        let level = self.hi_summary.trailing_zeros() as usize;
        let slot = self.hi_occ[level].trailing_zeros() as usize;
        let shift = HI_SHIFT + HI_BITS * level as u32;
        let above = shift + HI_BITS;
        let high_mask = if above >= 64 { 0 } else { !0u64 << above };
        let window_start = (self.cursor & high_mask) | ((slot as u64) << shift);
        debug_assert!(window_start >= self.cursor, "cascade moved the cursor back");
        if window_start > horizon {
            return false;
        }
        self.cursor = window_start;
        self.hi_occ[level] &= !(1 << slot);
        if self.hi_occ[level] == 0 {
            self.hi_summary &= !(1 << level);
        }
        debug_assert!(self.scratch.is_empty());
        std::mem::swap(&mut self.hi[level * HI_SLOTS + slot], &mut self.scratch);
        let mut tmp = std::mem::take(&mut self.scratch);
        for e in tmp.drain(..) {
            self.insert(e);
        }
        self.scratch = tmp;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| w.pop().map(|e| (e.at, e.payload))).collect()
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut w = TimingWheel::new();
        let times = [5_000u64, 12, 5_000, 900_000, 0, 63, 64, 4096, 5_000];
        for (i, &at) in times.iter().enumerate() {
            w.push(at, i as u32);
        }
        // Stable sort by time == time order with insertion-order ties.
        let mut expect: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i as u32))
            .collect();
        expect.sort_by_key(|&(a, _)| a);
        assert_eq!(drain(&mut w), expect);
    }

    #[test]
    fn peek_matches_pop_across_cascades() {
        let mut w = TimingWheel::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..500u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            w.push(x % 10_000_000, i);
        }
        while w.len() > 0 {
            let p = w.peek().expect("len > 0");
            let e = w.pop().expect("len > 0");
            assert_eq!(p, e.at, "peek disagreed with pop");
        }
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn equal_times_inserted_across_cascades_keep_fifo_order() {
        let mut w = TimingWheel::new();
        // First event far in the future (high level), then advance the
        // cursor by popping a nearer event, then add an equal-time event
        // at the (now closer) future instant — FIFO must survive.
        w.push(1_000_000, 0);
        w.push(10, 1);
        assert_eq!(w.pop().map(|e| e.payload), Some(1));
        w.push(1_000_000, 2);
        assert_eq!(drain(&mut w), vec![(1_000_000, 0), (1_000_000, 2)]);
    }

    #[test]
    fn late_push_into_live_run_window_keeps_order() {
        let mut w = TimingWheel::new();
        for i in 0..4u32 {
            w.push(2_000 + u64::from(i % 2), i);
        }
        // Start draining the 2000-window, then splice in more events:
        // one tying the already-pending 2001s (pops after them), one
        // tying the 2000s (pops before the 2001s).
        assert_eq!(w.pop().map(|e| (e.at, e.payload)), Some((2_000, 0)));
        w.push(2_001, 4);
        w.push(2_000, 5);
        assert_eq!(
            drain(&mut w),
            vec![(2_000, 2), (2_000, 5), (2_001, 1), (2_001, 3), (2_001, 4)]
        );
    }

    #[test]
    fn pop_at_most_respects_horizon_without_losing_events() {
        let mut w = TimingWheel::new();
        w.push(100, 0);
        w.push(5_000, 1);
        w.push(3_000_000, 2);
        assert_eq!(w.pop_at_most(99).map(|e| e.payload), None);
        assert_eq!(w.pop_at_most(100).map(|e| e.payload), Some(0));
        assert_eq!(w.pop_at_most(4_999).map(|e| e.payload), None);
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop_at_most(u64::MAX).map(|e| e.payload), Some(1));
        assert_eq!(w.pop_at_most(u64::MAX).map(|e| e.payload), Some(2));
        assert_eq!(w.pop_at_most(u64::MAX).map(|e| e.payload), None);
    }

    #[test]
    fn spill_past_segment_capacity_keeps_fifo_order() {
        // More than L1_SEG equal-time events into one level-1 slot:
        // the first L1_SEG land in the slab segment, the rest in the
        // spill Vec, and promotion must stitch them back in arrival
        // order. Mix in a second, earlier time to check the promotion
        // sort across the segment/spill boundary too.
        let n = (L1_SEG as u32) * 3 + 7;
        let mut w = TimingWheel::new();
        for i in 0..n {
            let at = if i % 5 == 0 { 40_000 } else { 40_001 };
            w.push(at, i);
        }
        let got = drain(&mut w);
        let mut expect: Vec<(u64, u32)> = (0..n)
            .map(|i| (if i % 5 == 0 { 40_000 } else { 40_001 }, i))
            .collect();
        expect.sort_by_key(|&(a, _)| a);
        assert_eq!(got, expect);
    }

    #[test]
    fn drop_releases_pending_slab_entries_exactly_once() {
        use std::rc::Rc;
        // An Rc payload counts drops for us: after the wheel is
        // dropped with entries still pending in slab segments, spill
        // Vecs, the run, and upper levels, every clone must be gone —
        // no leak, and a double-drop would abort under the test
        // allocator / Miri-style debug assertions.
        let token = Rc::new(());
        let mut w: TimingWheel<Rc<()>> = TimingWheel::new();
        for i in 0..(L1_SEG as u64 + 9) {
            w.push(40_000 + (i % 2), Rc::clone(&token)); // segment + spill
        }
        w.push(5, Rc::clone(&token)); // run window
        w.push(9_000_000, Rc::clone(&token)); // upper level
        assert!(Rc::strong_count(&token) > 1);
        // Partially drain so a promoted run and a dirtied cursor are
        // also in play at drop time.
        let popped = w.pop().expect("has events");
        assert_eq!(popped.at, 5);
        drop(popped);
        drop(w);
        assert_eq!(
            Rc::strong_count(&token),
            1,
            "wheel drop must release every pending payload exactly once"
        );
    }

    #[test]
    fn handles_extreme_u64_times() {
        let mut w = TimingWheel::new();
        w.push(u64::MAX, 0);
        w.push(0, 1);
        w.push(u64::MAX - 1, 2);
        assert_eq!(
            drain(&mut w),
            vec![(0, 1), (u64::MAX - 1, 2), (u64::MAX, 0)]
        );
    }
}
