//! Links and end-to-end paths.
//!
//! A [`Link`] abstracts one segment of a network path: its one-way
//! propagation latency, latency jitter, independent packet-loss rate and
//! bottleneck bandwidth. A [`Path`] composes links end to end; round-trip
//! time, loss and bottleneck bandwidth are derived from the composition.
//!
//! Fault injection (extra loss, congestion-style delay spikes) follows the
//! smoltcp examples' philosophy: adverse conditions are first-class knobs on
//! the medium, not special cases in protocol code. The C-Saw measurement
//! module must distinguish censorship from exactly these conditions.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// One directed network segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Standard deviation of per-traversal latency jitter (log-normal-ish,
    /// applied symmetrically as a non-negative multiplier).
    pub jitter: SimDuration,
    /// Independent per-packet loss probability in `[0, 1)`.
    pub loss: f64,
    /// Bottleneck bandwidth in bits per second.
    pub bandwidth_bps: u64,
}

impl Link {
    /// A clean, fast LAN-ish link: 1 ms, no jitter, no loss, 1 Gbps.
    pub fn lan() -> Link {
        Link {
            latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 1_000_000_000,
        }
    }

    /// A typical consumer access link in the measurement region:
    /// 8 ms one-way, small jitter, light loss, 20 Mbps.
    pub fn access() -> Link {
        Link {
            latency: SimDuration::from_millis(8),
            jitter: SimDuration::from_millis(2),
            loss: 0.002,
            bandwidth_bps: 20_000_000,
        }
    }

    /// A wide-area transit segment with the given one-way latency.
    pub fn wan(one_way: SimDuration) -> Link {
        Link {
            latency: one_way,
            jitter: one_way.mul_f64(0.05),
            loss: 0.001,
            bandwidth_bps: 100_000_000,
        }
    }

    /// Builder: set loss rate.
    pub fn with_loss(mut self, loss: f64) -> Link {
        self.loss = loss.clamp(0.0, 0.999);
        self
    }

    /// Builder: set jitter.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Link {
        self.jitter = jitter;
        self
    }

    /// Builder: set bandwidth.
    pub fn with_bandwidth(mut self, bps: u64) -> Link {
        self.bandwidth_bps = bps.max(1);
        self
    }

    /// Sample the one-way delay for a single traversal.
    pub fn sample_delay(&self, rng: &mut DetRng) -> SimDuration {
        if self.jitter.is_zero() {
            return self.latency;
        }
        let j = rng
            .normal(0.0, self.jitter.as_micros() as f64)
            .abs()
            .round() as u64;
        self.latency + SimDuration::from_micros(j)
    }
}

/// A periodic link flap / loss-burst profile (fault-injection knob).
///
/// Every `period`, the link spends `down_for` in a degraded burst where
/// its loss rate jumps to `burst_loss` (1.0 models a hard flap — every
/// packet dies). The schedule is a pure function of virtual time, so a
/// chaos experiment replaying the same seed sees identical bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapProfile {
    /// Cycle length. A zero period disables the profile.
    pub period: SimDuration,
    /// Degraded span at the start of each cycle (clamped to `period`).
    pub down_for: SimDuration,
    /// Phase offset, so multiple links armed from the same profile do
    /// not flap in lockstep.
    pub phase: SimDuration,
    /// Loss rate during the burst.
    pub burst_loss: f64,
}

impl FlapProfile {
    /// A hard on/off flap: total loss during `down_for` of each cycle.
    pub fn hard(period: SimDuration, down_for: SimDuration, phase: SimDuration) -> FlapProfile {
        FlapProfile {
            period,
            down_for,
            phase,
            burst_loss: 1.0,
        }
    }

    /// Is the link inside a burst at `now`?
    pub fn is_down(&self, now: SimTime) -> bool {
        let p = self.period.as_micros();
        if p == 0 {
            return false;
        }
        (now.as_micros() + self.phase.as_micros()) % p < self.down_for.as_micros().min(p)
    }

    /// The link as seen at `now`: during a burst the loss rate is
    /// raised to `burst_loss` (never lowered), otherwise unchanged.
    pub fn apply(&self, link: Link, now: SimTime) -> Link {
        if self.is_down(now) {
            link.with_loss(self.burst_loss.max(link.loss))
        } else {
            link
        }
    }
}

/// An end-to-end path composed of directed links.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    links: Vec<Link>,
    /// Extra delay injected by on-path congestion (fault injection knob):
    /// with probability `congestion_p`, a traversal suffers an extra delay
    /// uniform in `[0, congestion_max]`.
    pub congestion_p: f64,
    /// See [`Path::congestion_p`].
    pub congestion_max: SimDuration,
}

impl Path {
    /// A path over the given links with no congestion injection.
    pub fn new(links: Vec<Link>) -> Path {
        assert!(!links.is_empty(), "a path needs at least one link");
        Path {
            links,
            congestion_p: 0.0,
            congestion_max: SimDuration::ZERO,
        }
    }

    /// Single-link convenience constructor.
    pub fn single(link: Link) -> Path {
        Path::new(vec![link])
    }

    /// Enable congestion-style delay spikes (used to model the flaky static
    /// proxies of Figure 1a and to stress censorship/fault disambiguation).
    pub fn with_congestion(mut self, p: f64, max: SimDuration) -> Path {
        self.congestion_p = p.clamp(0.0, 1.0);
        self.congestion_max = max;
        self
    }

    /// Concatenate two paths (e.g. client→proxy plus proxy→origin).
    pub fn join(&self, tail: &Path) -> Path {
        let mut links = self.links.clone();
        links.extend(tail.links.iter().cloned());
        Path {
            links,
            congestion_p: (self.congestion_p + tail.congestion_p).clamp(0.0, 1.0),
            congestion_max: self.congestion_max.max(tail.congestion_max),
        }
    }

    /// The links of this path.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Nominal (jitter-free) one-way latency: sum of link latencies.
    pub fn base_one_way(&self) -> SimDuration {
        self.links
            .iter()
            .fold(SimDuration::ZERO, |acc, l| acc + l.latency)
    }

    /// Nominal round-trip time.
    pub fn base_rtt(&self) -> SimDuration {
        self.base_one_way() * 2
    }

    /// Bottleneck bandwidth: the minimum across links.
    pub fn bottleneck_bps(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.bandwidth_bps)
            .min()
            .unwrap_or(1)
    }

    /// Combined per-packet survival-based loss rate:
    /// `1 - prod(1 - loss_i)`.
    pub fn loss(&self) -> f64 {
        1.0 - self
            .links
            .iter()
            .fold(1.0_f64, |acc, l| acc * (1.0 - l.loss))
    }

    /// Sample a one-way traversal delay including jitter and congestion.
    pub fn sample_one_way(&self, rng: &mut DetRng) -> SimDuration {
        let mut d = SimDuration::ZERO;
        for l in &self.links {
            d += l.sample_delay(rng);
        }
        if self.congestion_p > 0.0 && rng.chance(self.congestion_p) {
            d += SimDuration::from_micros(
                rng.range_u64(0, self.congestion_max.as_micros().max(1) + 1),
            );
        }
        d
    }

    /// Sample a round-trip delay (two independent one-way samples).
    pub fn sample_rtt(&self, rng: &mut DetRng) -> SimDuration {
        self.sample_one_way(rng) + self.sample_one_way(rng)
    }

    /// Bernoulli trial: was a single packet traversal lost?
    pub fn packet_lost(&self, rng: &mut DetRng) -> bool {
        rng.chance(self.loss())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_composition_adds_latency_and_mins_bandwidth() {
        let p = Path::new(vec![
            Link::wan(SimDuration::from_millis(40)).with_bandwidth(50_000_000),
            Link::wan(SimDuration::from_millis(60)).with_bandwidth(10_000_000),
        ]);
        assert_eq!(p.base_one_way(), SimDuration::from_millis(100));
        assert_eq!(p.base_rtt(), SimDuration::from_millis(200));
        assert_eq!(p.bottleneck_bps(), 10_000_000);
    }

    #[test]
    fn loss_composes_multiplicatively() {
        let p = Path::new(vec![Link::lan().with_loss(0.1), Link::lan().with_loss(0.1)]);
        assert!((p.loss() - 0.19).abs() < 1e-9);
    }

    #[test]
    fn flap_profile_windows_and_phase() {
        let f = FlapProfile::hard(
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            SimDuration::ZERO,
        );
        assert!(f.is_down(SimTime::ZERO));
        assert!(f.is_down(SimTime::from_secs(9)));
        assert!(!f.is_down(SimTime::from_secs(10)));
        assert!(f.is_down(SimTime::from_secs(105)));
        // A phase offset shifts the burst.
        let g = FlapProfile::hard(
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            SimDuration::from_secs(50),
        );
        assert!(!g.is_down(SimTime::ZERO));
        assert!(g.is_down(SimTime::from_secs(55)));
        // Applying during a burst drives loss to 1.0, and never lowers it.
        let l = Link::access().with_loss(0.5);
        assert_eq!(f.apply(l, SimTime::from_secs(5)).loss, 0.999, "clamped");
        assert_eq!(f.apply(l, SimTime::from_secs(50)).loss, 0.5);
        // A zero period never fires.
        let z = FlapProfile::hard(
            SimDuration::ZERO,
            SimDuration::from_secs(1),
            SimDuration::ZERO,
        );
        assert!(!z.is_down(SimTime::from_secs(3)));
    }

    #[test]
    fn join_concatenates() {
        let a = Path::single(Link::wan(SimDuration::from_millis(10)));
        let b = Path::single(Link::wan(SimDuration::from_millis(20)));
        let j = a.join(&b);
        assert_eq!(j.links().len(), 2);
        assert_eq!(j.base_one_way(), SimDuration::from_millis(30));
    }

    #[test]
    fn jitter_free_sampling_is_exact() {
        let mut rng = DetRng::new(1);
        let p = Path::single(Link {
            latency: SimDuration::from_millis(25),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 1_000_000,
        });
        for _ in 0..10 {
            assert_eq!(p.sample_one_way(&mut rng), SimDuration::from_millis(25));
        }
    }

    #[test]
    fn congestion_spikes_only_increase_delay() {
        let mut rng = DetRng::new(2);
        let base = Path::single(Link::wan(SimDuration::from_millis(50)));
        let congested = base
            .clone()
            .with_congestion(1.0, SimDuration::from_millis(500));
        for _ in 0..50 {
            let c = congested.sample_one_way(&mut rng);
            assert!(c >= SimDuration::from_millis(50));
            assert!(c <= SimDuration::from_millis(50 + 500) + congested.base_one_way());
        }
    }

    #[test]
    fn sampled_rtt_tracks_base_under_small_jitter() {
        let mut rng = DetRng::new(3);
        let p = Path::single(Link::wan(SimDuration::from_millis(100)));
        let n = 500;
        let avg_us: u64 = (0..n)
            .map(|_| p.sample_rtt(&mut rng).as_micros())
            .sum::<u64>()
            / n;
        let base = p.base_rtt().as_micros();
        let tol = base / 5;
        assert!(
            avg_us >= base && avg_us <= base + tol,
            "avg {avg_us} vs base {base}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_rejected() {
        Path::new(vec![]);
    }
}
