//! A small discrete-event scheduler.
//!
//! The simulator mostly computes network operations *analytically* (see
//! [`crate::tcp`]), but several parts of the reproduction are genuinely
//! event-driven: user browse sessions in the pilot study, periodic
//! global-DB synchronization, local-DB record expiry, Tor circuit rotation,
//! and mid-experiment censorship policy changes (§7.5 "C-Saw in the wild").
//! Those are driven by this queue.
//!
//! Events are an application-defined payload type `E`; ties in firing time
//! break on insertion order, which keeps runs deterministic. Pending events
//! live in a hierarchical timing wheel (see the private `wheel` module's
//! docs): `O(1)` push, `O(1)` amortized pop, identical `(time, insertion)`
//! dispatch order to the binary heap it replaced.

use crate::time::SimTime;
use crate::wheel::TimingWheel;

/// Deterministic earliest-first event queue with a virtual clock.
#[derive(Debug)]
pub struct Scheduler<E> {
    wheel: TimingWheel<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at t = 0.
    pub fn new() -> Self {
        Scheduler {
            wheel: TimingWheel::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current virtual time (the firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the event fires next.
    /// This matches how a real runtime treats an already-expired timer and
    /// keeps the clock monotone.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        self.wheel.push(at.as_micros(), payload);
    }

    /// Pop the next event, advancing the clock to its firing time.
    ///
    /// Deliberately named like `Iterator::next` — a scheduler *is* a
    /// stream of timed events — but not implemented as the trait because
    /// advancing the clock is a semantic side effect callers must opt
    /// into explicitly.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let ev = self.wheel.pop()?;
        let at = SimTime::from_micros(ev.at);
        self.now = at;
        self.processed += 1;
        Some((at, ev.payload))
    }

    /// Peek at the firing time of the next event without dispatching it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek().map(SimTime::from_micros)
    }

    /// Run events until the queue is empty or the horizon passes, calling
    /// `f(now, event, scheduler)` for each. `f` may schedule further events.
    ///
    /// Returns the number of events dispatched. Events scheduled at exactly
    /// the horizon still fire; later ones remain queued.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut f: F) -> u64
    where
        F: FnMut(SimTime, E, &mut Scheduler<E>),
    {
        let start_us = self.now.as_micros();
        let mut dispatched = 0;
        // Peak pending depth this window — a pure function of the event
        // sequence, so recording it is deterministic.
        let mut peak_pending = self.wheel.len();
        let horizon_us = horizon.as_micros();
        // Fused peek-then-pop: one wheel scan per event instead of two.
        // `now` and `processed` must be updated per event because
        // handlers observe both through `&mut self`.
        while let Some(ev) = self.wheel.pop_at_most(horizon_us) {
            let t = SimTime::from_micros(ev.at);
            self.now = t;
            self.processed += 1;
            f(t, ev.payload, self);
            dispatched += 1;
            peak_pending = peak_pending.max(self.wheel.len());
        }
        // Clock lands on the horizon even if no event fired exactly there,
        // so repeated run_until calls tile time correctly.
        if self.now < horizon {
            self.now = horizon;
        }
        // Observability at the run boundary only — never per event, so the
        // event loop's hot path stays within its overhead budget.
        let ctx = csaw_obs::scope::current();
        if let Some(clock) = ctx.manual_clock() {
            clock.set_us(self.now.as_micros());
        }
        ctx.registry
            .counter("simnet.events_processed")
            .add(dispatched);
        ctx.registry
            .gauge("simnet.queue_depth")
            .set(self.wheel.len() as i64);
        ctx.registry
            .gauge("simnet.sched.peak_pending")
            .set(peak_pending as i64);
        // Windowed health series + window-boundary crossing, when the
        // context collects timelines (disabled timelines skip all of it).
        if ctx.timeline.enabled() {
            ctx.timeline
                .counter("simnet.sched.dispatched", &[])
                .add(dispatched);
            ctx.timeline
                .gauge("simnet.sched.depth", &[])
                .set(self.wheel.len() as i64);
            // Peak in-flight depth this run: how backed up the loop got
            // between boundaries (the event-loop lag signal).
            ctx.timeline
                .gauge("simnet.sched.peak_pending", &[])
                .set(peak_pending as i64);
            ctx.advance_timeline(self.now.as_micros());
        }
        if ctx.sink.enabled() {
            csaw_obs::event::span_completed(
                "simnet.run_until",
                horizon.as_micros().saturating_sub(start_us),
                &[
                    ("dispatched", csaw_obs::json::JsonValue::from(dispatched)),
                    ("pending", csaw_obs::json::JsonValue::from(self.wheel.len())),
                ],
            );
        }
        dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn fires_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule(SimTime::from_millis(30), "c");
        s.schedule(SimTime::from_millis(10), "a");
        s.schedule(SimTime::from_millis(20), "b");
        let mut order = Vec::new();
        while let Some((_, e)) = s.next() {
            order.push(e);
        }
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..10 {
            s.schedule(SimTime::from_millis(5), i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| s.next().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule(SimTime::from_millis(100), "late");
        s.next();
        assert_eq!(s.now(), SimTime::from_millis(100));
        s.schedule(SimTime::from_millis(1), "past");
        let (t, e) = s.next().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_millis(100), "clamped to now");
    }

    #[test]
    fn run_until_respects_horizon_and_reentry() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_millis(10), 1);
        s.schedule(SimTime::from_millis(50), 2);
        let mut seen = Vec::new();
        let n = s.run_until(SimTime::from_millis(20), |t, e, sched| {
            seen.push((t.as_millis(), e));
            if e == 1 {
                // Handlers can schedule follow-ups.
                sched.schedule(t + SimDuration::from_millis(5), 3);
            }
        });
        assert_eq!(n, 2);
        assert_eq!(seen, vec![(10, 1), (15, 3)]);
        assert_eq!(s.now(), SimTime::from_millis(20), "clock tiles to horizon");
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn horizon_inclusive() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule(SimTime::from_millis(10), "on-horizon");
        let n = s.run_until(SimTime::from_millis(10), |_, _, _| {});
        assert_eq!(n, 1);
    }

    #[test]
    fn run_until_records_peak_pending() {
        let ctx = std::sync::Arc::new(csaw_obs::ObsCtx::new());
        let _g = csaw_obs::install(ctx.clone());
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..4 {
            s.schedule(SimTime::from_millis(i), i as u32);
        }
        // Each handler schedules two follow-ups, so the queue briefly
        // grows past its starting depth before draining.
        s.run_until(SimTime::from_millis(2), |t, e, sched| {
            if e < 4 {
                sched.schedule(t + SimDuration::from_millis(10), e + 100);
                sched.schedule(t + SimDuration::from_millis(11), e + 200);
            }
        });
        let peak = ctx.registry.gauge("simnet.sched.peak_pending").get();
        assert!(
            peak > 4,
            "follow-up scheduling must raise peak pending above the initial depth, got {peak}"
        );
    }

    #[test]
    fn run_until_drives_windowed_series_and_closes_windows() {
        use csaw_obs::{SloSet, WindowCfg};
        use std::sync::Arc;
        let ctx = Arc::new(csaw_obs::ObsCtx::new());
        ctx.timeline.configure(WindowCfg {
            window_us: 5_000, // 5 ms windows
            retain: 8,
            slos: Arc::new(SloSet::empty()),
        });
        let _g = csaw_obs::install(ctx.clone());
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..4 {
            s.schedule(SimTime::from_millis(i * 4), i as u32);
        }
        s.run_until(SimTime::from_millis(7), |_, _, _| {});
        s.run_until(SimTime::from_millis(14), |_, _, _| {});
        let frames = ctx.timeline.recent_frames();
        assert_eq!(frames.len(), 2, "boundaries at 5 ms and 10 ms crossed");
        // Dispatch counts land at the run boundary that recorded them:
        // 2 at the 7 ms boundary (window 0), 2 at 14 ms (window 1).
        let dispatched: u64 = frames
            .iter()
            .map(|f| f.family_count("simnet.sched.dispatched"))
            .sum();
        assert_eq!(dispatched, 4);
        assert!(frames[0].series.contains_key("simnet.sched.depth"));
    }

    #[test]
    fn counters() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::from_millis(1), 0);
        s.schedule(SimTime::from_millis(2), 1);
        assert_eq!(s.pending(), 2);
        s.next();
        assert_eq!(s.processed(), 1);
        assert_eq!(s.pending(), 1);
    }
}
