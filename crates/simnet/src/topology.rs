//! AS-level topology: regions, access networks, multihoming.
//!
//! The reproduction anchors its latency geography on the paper's own
//! numbers (Table 2: measured ping RTTs from the authors' vantage point in
//! Pakistan to static proxies around the world, and 186 ms to YouTube).
//! Regions are coarse — what matters to every experiment is the *relative*
//! path lengths: local-fix paths are short, static proxies and Tor exits
//! are far, and relay-based routes concatenate long segments.

use crate::link::{Link, Path};
use crate::rng::DetRng;
use crate::time::SimDuration;
use std::fmt;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse geographic regions used to derive wide-area latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // country/region variants are self-documenting
pub enum Region {
    /// The censored measurement region (the paper's vantage point).
    Pakistan,
    UnitedKingdom,
    Netherlands,
    Germany,
    France,
    Switzerland,
    CzechRepublic,
    UsEast,
    UsCentral,
    UsWest,
    Canada,
    Japan,
    Singapore,
}

impl Region {
    /// All regions (useful for building relay directories).
    pub const ALL: [Region; 13] = [
        Region::Pakistan,
        Region::UnitedKingdom,
        Region::Netherlands,
        Region::Germany,
        Region::France,
        Region::Switzerland,
        Region::CzechRepublic,
        Region::UsEast,
        Region::UsCentral,
        Region::UsWest,
        Region::Canada,
        Region::Japan,
        Region::Singapore,
    ];

    /// Nominal one-way latency in milliseconds from the censored vantage
    /// point to this region. Derived from Table 2 of the paper (ping RTTs,
    /// halved): UK 228, NL 172, JP 387, US {329, 429, 160}, DE {309, 174}.
    /// Where Table 2 lists several proxies per country the base value here
    /// is the *better* one; per-proxy overrides recreate the worse ones.
    pub fn one_way_ms_from_vantage(self) -> u64 {
        match self {
            Region::Pakistan => 10,
            Region::UnitedKingdom => 114, // 228 / 2
            Region::Netherlands => 86,    // 172 / 2
            Region::Germany => 87,        // 174 / 2 (Germany-2)
            Region::France => 95,
            Region::Switzerland => 90,
            Region::CzechRepublic => 92,
            Region::UsEast => 80,     // 160 / 2 (US-3)
            Region::UsCentral => 165, // 329 / 2 (US-1, rounded)
            Region::UsWest => 215,    // 429 / 2 (US-2, rounded)
            Region::Canada => 150,
            Region::Japan => 194, // 387 / 2 (rounded)
            Region::Singapore => 45,
        }
    }

    /// Nominal one-way latency in milliseconds between two regions.
    /// Symmetric; intra-region is short.
    pub fn one_way_ms_to(self, other: Region) -> u64 {
        if self == other {
            return 5;
        }
        if self == Region::Pakistan {
            return other.one_way_ms_from_vantage();
        }
        if other == Region::Pakistan {
            return self.one_way_ms_from_vantage();
        }
        // Between two non-vantage regions: approximate via coarse
        // continental groups.
        let g = |r: Region| match r {
            Region::Pakistan => 0u8,
            Region::UnitedKingdom
            | Region::Netherlands
            | Region::Germany
            | Region::France
            | Region::Switzerland
            | Region::CzechRepublic => 1,
            Region::UsEast | Region::UsCentral | Region::UsWest | Region::Canada => 2,
            Region::Japan | Region::Singapore => 3,
        };
        match (g(self), g(other)) {
            (a, b) if a == b => 15,
            (1, 2) | (2, 1) => 45,
            (1, 3) | (3, 1) => 120,
            (2, 3) | (3, 2) => 75,
            _ => 90,
        }
    }
}

/// Where a server/endpoint lives, and any extra latency specific to it
/// (e.g. an overloaded static proxy adds queueing delay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Site {
    /// Region the endpoint lives in.
    pub region: Region,
    /// Extra one-way latency beyond the regional nominal (congestion,
    /// last-mile quality, host load).
    pub extra_one_way: SimDuration,
}

impl Site {
    /// A site at the regional nominal latency.
    pub fn in_region(region: Region) -> Site {
        Site {
            region,
            extra_one_way: SimDuration::ZERO,
        }
    }

    /// Add site-specific extra one-way latency.
    pub fn with_extra(mut self, extra: SimDuration) -> Site {
        self.extra_one_way = extra;
        self
    }

    /// A site pinned so that the *round-trip* from the vantage point is
    /// `rtt_ms` (used to reproduce Table 2 exactly).
    pub fn at_vantage_rtt(region: Region, rtt_ms: u64) -> Site {
        let nominal = region.one_way_ms_from_vantage();
        let want_one_way = rtt_ms / 2;
        let extra = want_one_way.saturating_sub(nominal);
        Site {
            region,
            extra_one_way: SimDuration::from_millis(extra),
        }
    }
}

/// Per-ISP access-network character; two ISPs covering the same city can
/// have noticeably different loss/latency profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// One-way latency from the client to the ISP edge.
    pub last_mile: SimDuration,
    /// Latency jitter standard deviation.
    pub jitter: SimDuration,
    /// Per-packet loss probability.
    pub loss: f64,
    /// Access bandwidth in bits per second.
    pub bandwidth_bps: u64,
}

impl Default for AccessProfile {
    fn default() -> Self {
        AccessProfile {
            last_mile: SimDuration::from_millis(8),
            jitter: SimDuration::from_millis(2),
            loss: 0.002,
            bandwidth_bps: 20_000_000,
        }
    }
}

impl AccessProfile {
    fn as_link(&self) -> Link {
        Link {
            latency: self.last_mile,
            jitter: self.jitter,
            loss: self.loss,
            bandwidth_bps: self.bandwidth_bps,
        }
    }
}

/// An upstream provider (ISP) of the client's network.
#[derive(Debug, Clone, PartialEq)]
pub struct Provider {
    /// The provider's autonomous system number.
    pub asn: Asn,
    /// Human-readable name (e.g. "ISP-A").
    pub name: String,
    /// Last-mile character of this provider.
    pub access: AccessProfile,
}

impl Provider {
    /// A provider with the default access profile.
    pub fn new(asn: Asn, name: impl Into<String>) -> Provider {
        Provider {
            asn,
            name: name.into(),
            access: AccessProfile::default(),
        }
    }

    /// Builder: override the access profile.
    pub fn with_access(mut self, access: AccessProfile) -> Provider {
        self.access = access;
        self
    }
}

/// The client's attachment to the Internet: one or more providers.
/// Multihomed networks map each new flow to one provider at random
/// (per the paper's §4.4 challenge scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct AccessNetwork {
    providers: Vec<Provider>,
    /// Relative share of flows mapped to each provider.
    weights: Vec<f64>,
}

impl AccessNetwork {
    /// Single-homed network.
    pub fn single(provider: Provider) -> AccessNetwork {
        AccessNetwork {
            providers: vec![provider],
            weights: vec![1.0],
        }
    }

    /// Multihomed network; flows split across providers by weight.
    pub fn multihomed(providers: Vec<(Provider, f64)>) -> AccessNetwork {
        assert!(!providers.is_empty());
        let (providers, weights): (Vec<_>, Vec<_>) = providers.into_iter().unzip();
        assert!(weights.iter().all(|w| *w > 0.0));
        AccessNetwork { providers, weights }
    }

    /// Is this network multihomed?
    pub fn is_multihomed(&self) -> bool {
        self.providers.len() > 1
    }

    /// The providers in this network.
    pub fn providers(&self) -> &[Provider] {
        &self.providers
    }

    /// Pick the provider carrying a new flow.
    pub fn pick_provider(&self, rng: &mut DetRng) -> &Provider {
        if self.providers.len() == 1 {
            return &self.providers[0];
        }
        let idx = rng.weighted_index(&self.weights);
        &self.providers[idx]
    }

    /// Build the end-to-end path from the client, through `via`, to a site.
    ///
    /// The path has two segments: the provider's access link and a WAN
    /// segment whose one-way latency comes from the region matrix plus the
    /// site's extra latency.
    pub fn path_to(&self, via: &Provider, from: Region, site: Site) -> Path {
        let wan_ms = from.one_way_ms_to(site.region);
        let wan = Link::wan(SimDuration::from_millis(wan_ms) + site.extra_one_way);
        Path::new(vec![via.access.as_link(), wan])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rtts_reproduced() {
        // Site::at_vantage_rtt pins the round trip (access link excluded;
        // the WAN component carries the full regional latency).
        let cases = [
            (Region::UnitedKingdom, 228u64),
            (Region::Netherlands, 172),
            (Region::Japan, 387),
            (Region::UsCentral, 329),
            (Region::UsWest, 429),
            (Region::UsEast, 160),
            (Region::Germany, 309),
            (Region::Germany, 174),
        ];
        for (region, rtt) in cases {
            let site = Site::at_vantage_rtt(region, rtt);
            let one_way = region.one_way_ms_from_vantage() + site.extra_one_way.as_millis();
            let got = one_way * 2;
            // Rounding in the halved table entries costs at most 2 ms.
            assert!(
                (got as i64 - rtt as i64).abs() <= 2,
                "{region:?}: got {got}, want {rtt}"
            );
        }
    }

    #[test]
    fn region_matrix_symmetric() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(a.one_way_ms_to(b), b.one_way_ms_to(a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn intra_region_is_short() {
        for r in Region::ALL {
            assert!(r.one_way_ms_to(r) <= 10);
        }
    }

    #[test]
    fn single_homed_always_same_provider() {
        let mut rng = DetRng::new(1);
        let net = AccessNetwork::single(Provider::new(Asn(100), "ISP-A"));
        assert!(!net.is_multihomed());
        for _ in 0..10 {
            assert_eq!(net.pick_provider(&mut rng).asn, Asn(100));
        }
    }

    #[test]
    fn multihomed_splits_flows() {
        let mut rng = DetRng::new(2);
        let net = AccessNetwork::multihomed(vec![
            (Provider::new(Asn(1), "A"), 1.0),
            (Provider::new(Asn(2), "B"), 1.0),
        ]);
        assert!(net.is_multihomed());
        let mut counts = [0usize; 2];
        for _ in 0..2_000 {
            match net.pick_provider(&mut rng).asn {
                Asn(1) => counts[0] += 1,
                Asn(2) => counts[1] += 1,
                _ => unreachable!(),
            }
        }
        let frac = counts[0] as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn path_to_composes_access_and_wan() {
        let net = AccessNetwork::single(Provider::new(Asn(7), "ISP"));
        let p = net.providers()[0].clone();
        let path = net.path_to(&p, Region::Pakistan, Site::in_region(Region::Netherlands));
        assert_eq!(path.links().len(), 2);
        // 8 ms access + 86 ms WAN one-way
        assert_eq!(path.base_one_way(), SimDuration::from_millis(8 + 86));
    }

    #[test]
    fn vantage_pinning_never_undershoots_nominal() {
        // Asking for an RTT below the regional nominal saturates to zero
        // extra latency rather than going negative.
        let site = Site::at_vantage_rtt(Region::Japan, 100);
        assert_eq!(site.extra_one_way, SimDuration::ZERO);
    }
}
