//! Deterministic, forkable randomness.
//!
//! Every stochastic component of the simulation draws from a [`DetRng`]
//! seeded from a single experiment seed. Components fork *labelled* child
//! generators so that adding a new consumer of randomness never perturbs
//! the draws seen by existing ones — a property the experiment harness
//! relies on for stable baselines.
//!
//! The generator is a from-scratch xoshiro256++ (Blackman & Vigna), with
//! SplitMix64 state expansion from the 64-bit seed. It is implemented
//! in-tree so the workspace stays hermetic, and its output is part of
//! the bit-reproducibility contract: the stream for a given seed never
//! changes without a deliberate recalibration of the experiment
//! baselines.

/// A deterministic random number generator with labelled forking.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
    /// Memo for [`DetRng::range_u64`]: the last non-power-of-two span,
    /// its rejection threshold, and the magic/shift pair for reducing
    /// draws modulo the span by multiply-shift instead of hardware
    /// division (Granlund–Montgomery invariant division — see
    /// [`mod_magic`] for the exactness argument). Bounded draws loop
    /// over the same span in hot paths, and both the threshold and the
    /// magic cost a division to recompute. Pure cache — output is
    /// identical with or without it.
    zone_span: u64,
    zone: u64,
    mod_magic: u64,
    mod_shift: u32,
}

/// Magic/shift pair such that [`mod_by_magic`] computes exactly
/// `v % d` for every `v`, for a fixed non-power-of-two `d` with
/// `3 <= d <= 2^63`.
///
/// Let `l = ceil(log2 d)` (so `2 <= l <= 63`) and `m = ceil(2^(64+l) / d)`.
/// Then `m·d - 2^(64+l) < d <= 2^l`, which is the Granlund–Montgomery
/// round-up condition, so `floor(m·v / 2^(64+l)) = floor(v / d)` for all
/// `v < 2^64`. `m` is a 65-bit value `2^64 + m'`; only `m'` is stored,
/// and the quotient is reassembled 65-bit-safely in [`mod_by_magic`].
fn mod_magic(d: u64) -> (u64, u32) {
    debug_assert!(d >= 3 && !d.is_power_of_two() && d <= (1 << 63));
    let l = 64 - (d - 1).leading_zeros();
    let num = 1u128 << (64 + l);
    let m = num.div_ceil(u128::from(d));
    ((m - (1u128 << 64)) as u64, l)
}

/// Exact `v % d` via the pair from [`mod_magic`].
///
/// With `hi = mulhi(m', v)`, the quotient is
/// `floor((v + hi) / 2^l)` — the fractional contribution of the low
/// product half cannot carry across a multiple of `2^l`. The 65-bit sum
/// `v + hi` is halved first (`hi <= v`, so `hi + (v-hi)/2` is exact and
/// fits), then shifted by the remaining `l - 1`.
#[inline]
fn mod_by_magic(v: u64, d: u64, magic: u64, shift: u32) -> u64 {
    let hi = ((u128::from(v) * u128::from(magic)) >> 64) as u64;
    let q = (hi + ((v - hi) >> 1)) >> (shift - 1);
    v - q * d
}

/// SplitMix64 step: the standard seed expander for xoshiro-family
/// generators (also used here to derive fork seeds).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let state = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        DetRng {
            state,
            zone_span: 0,
            zone: 0,
            mod_magic: 0,
            mod_shift: 0,
        }
    }

    /// One xoshiro256++ step.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Fork a child generator whose stream depends only on the parent seed
    /// and the label — not on how many draws the parent has made.
    ///
    /// Forking hashes the label into the parent's *seed lineage* rather than
    /// drawing from the parent stream, so `fork("a")` and `fork("b")` are
    /// independent and insertion-order-insensitive.
    pub fn fork(&self, label: &str) -> DetRng {
        // FNV-1a over the label, mixed with a fixed salt. We deliberately
        // avoid `RandomState`/`DefaultHasher`, which are randomly keyed per
        // process and would break determinism.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Derive the child from a clone of the parent's current state XORed
        // with the label hash: children of the same parent with different
        // labels diverge, same labels coincide.
        let mut base = self.clone();
        let s = base.next_u64() ^ h;
        DetRng::new(s)
    }

    /// Uniform draw in `[0, 1)`: the top 53 bits scaled by 2⁻⁵³.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    /// Debiased via rejection sampling (Lemire-style threshold).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        if span.is_power_of_two() {
            return lo + (self.next_u64() & (span - 1));
        }
        // Rejection zone: discard draws that would bias the modulus.
        if span != self.zone_span {
            self.zone_span = span;
            self.zone = u64::MAX - (u64::MAX - span + 1) % span;
            // Spans above 2^63 reduce by compare-subtract instead
            // (the quotient is 0 or 1); magic 0 marks that path.
            if span <= (1 << 63) {
                let (magic, shift) = mod_magic(span);
                self.mod_magic = magic;
                self.mod_shift = shift;
            } else {
                self.mod_magic = 0;
                self.mod_shift = 0;
            }
        }
        let (zone, magic, shift) = (self.zone, self.mod_magic, self.mod_shift);
        loop {
            let v = self.next_u64();
            if v <= zone {
                let r = if magic != 0 {
                    mod_by_magic(v, span, magic, shift)
                } else if v >= span {
                    v - span
                } else {
                    v
                };
                debug_assert_eq!(r, v % span);
                return lo + r;
            }
        }
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform float in `[EPSILON, 1)` — a log-safe draw.
    fn f64_nonzero(&mut self) -> f64 {
        f64::EPSILON + (1.0 - f64::EPSILON) * self.f64()
    }

    /// Sample an exponential with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = self.f64_nonzero();
        -mean * u.ln()
    }

    /// Sample a standard normal via Box–Muller (single draw, second value
    /// discarded — simple and adequate for jitter modelling).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.f64_nonzero();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Sample a log-normal: exp(N(mu, sigma)).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pick an index according to (unnormalized, non-negative) weights.
    /// Panics if weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn forks_are_label_dependent() {
        let root = DetRng::new(7);
        let mut a1 = root.fork("alpha");
        let mut a2 = root.fork("alpha");
        let mut b = root.fork("beta");
        let xs: Vec<u64> = (0..10).map(|_| a1.range_u64(0, 1 << 40)).collect();
        let ys: Vec<u64> = (0..10).map(|_| a2.range_u64(0, 1 << 40)).collect();
        let zs: Vec<u64> = (0..10).map(|_| b.range_u64(0, 1 << 40)).collect();
        assert_eq!(xs, ys, "same label => same stream");
        assert_ne!(xs, zs, "different label => different stream");
    }

    #[test]
    fn magic_modulus_is_exact() {
        // Adversarial spans: tiny, near powers of two on both sides,
        // wide, and near the 2^63 magic-path boundary.
        let spans = [
            3u64,
            5,
            6,
            7,
            1_000_000,
            (1 << 20) - 1,
            (1 << 20) + 1,
            (1 << 32) - 1,
            (1 << 32) + 1,
            (1 << 62) + 12345,
            (1 << 63) - 1,
        ];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for &d in &spans {
            let (magic, shift) = mod_magic(d);
            // Boundary values where an off-by-one quotient would show.
            for k in [0u64, 1, 2, 3, u64::MAX / d, u64::MAX / d - 1] {
                for off in [0u64, 1, d - 1] {
                    let v = match k.checked_mul(d).and_then(|p| p.checked_add(off)) {
                        Some(v) => v,
                        None => continue,
                    };
                    assert_eq!(mod_by_magic(v, d, magic, shift), v % d, "v={v} d={d}");
                }
            }
            for v in [0u64, 1, d - 1, d, d + 1, u64::MAX, u64::MAX - 1] {
                assert_eq!(mod_by_magic(v, d, magic, shift), v % d, "v={v} d={d}");
            }
            // And a randomized sweep.
            for _ in 0..20_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                assert_eq!(mod_by_magic(x, d, magic, shift), x % d, "v={x} d={d}");
            }
        }
    }

    #[test]
    fn range_u64_matches_plain_modulus_reduction() {
        // The fast reduction must not perturb the output stream: replay
        // the same xoshiro stream and reduce with plain `%`.
        let mut fast = DetRng::new(99);
        let mut plain = DetRng::new(99);
        for &(lo, hi) in &[
            (0u64, 3u64),
            (10, 1_000_010),
            (0, u64::MAX),
            (5, (1 << 63) + 17),
            (0, 1 << 40),
        ] {
            for _ in 0..200 {
                let span = hi - lo;
                let want = loop {
                    let v = plain.next_u64();
                    if span.is_power_of_two() {
                        break lo + (v & (span - 1));
                    }
                    let zone = u64::MAX - (u64::MAX - span + 1) % span;
                    if v <= zone {
                        break lo + v % span;
                    }
                };
                assert_eq!(fast.range_u64(lo, hi), want, "range [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = DetRng::new(17);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_u64_is_unbiased_over_small_modulus() {
        let mut r = DetRng::new(23);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.range_u64(0, 3) as usize] += 1;
        }
        for c in counts {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = DetRng::new(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.25, "estimated mean {est}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = DetRng::new(9);
        let w = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.weighted_index(&w), 1);
        }
        // Roughly proportional for mixed weights.
        let w = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
    }
}
