//! Deterministic, forkable randomness.
//!
//! Every stochastic component of the simulation draws from a [`DetRng`]
//! seeded from a single experiment seed. Components fork *labelled* child
//! generators so that adding a new consumer of randomness never perturbs
//! the draws seen by existing ones — a property the experiment harness
//! relies on for stable baselines.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator with labelled forking.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Create a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Fork a child generator whose stream depends only on the parent seed
    /// and the label — not on how many draws the parent has made.
    ///
    /// Forking hashes the label into the parent's *seed lineage* rather than
    /// drawing from the parent stream, so `fork("a")` and `fork("b")` are
    /// independent and insertion-order-insensitive.
    pub fn fork(&self, label: &str) -> DetRng {
        // FNV-1a over the label, mixed with a fixed salt. We deliberately
        // avoid `RandomState`/`DefaultHasher`, which are randomly keyed per
        // process and would break determinism.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Derive the child from a clone of the parent's current state XORed
        // with the label hash: children of the same parent with different
        // labels diverge, same labels coincide.
        let mut base = self.inner.clone();
        let s = base.next_u64() ^ h;
        DetRng {
            inner: StdRng::seed_from_u64(s),
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Sample an exponential with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Sample a standard normal via Box–Muller (single draw, second value
    /// discarded — simple and adequate for jitter modelling).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Sample a log-normal: exp(N(mu, sigma)).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pick an index according to (unnormalized, non-negative) weights.
    /// Panics if weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Direct access to the underlying `rand::Rng` for call sites that need
    /// the full trait surface.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn forks_are_label_dependent() {
        let root = DetRng::new(7);
        let mut a1 = root.fork("alpha");
        let mut a2 = root.fork("alpha");
        let mut b = root.fork("beta");
        let xs: Vec<u64> = (0..10).map(|_| a1.range_u64(0, 1 << 40)).collect();
        let ys: Vec<u64> = (0..10).map(|_| a2.range_u64(0, 1 << 40)).collect();
        let zs: Vec<u64> = (0..10).map(|_| b.range_u64(0, 1 << 40)).collect();
        assert_eq!(xs, ys, "same label => same stream");
        assert_ne!(xs, zs, "different label => different stream");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = DetRng::new(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.25, "estimated mean {est}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = DetRng::new(9);
        let w = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.weighted_index(&w), 1);
        }
        // Roughly proportional for mixed weights.
        let w = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
    }
}
