//! # csaw-simnet — deterministic virtual-time network substrate
//!
//! This crate is the bottom layer of the C-Saw reproduction. It provides:
//!
//! - [`time`]: integer-microsecond virtual time ([`SimTime`], [`SimDuration`]);
//! - [`rng`]: seeded, labelled-forkable randomness ([`DetRng`]);
//! - [`event`]: a deterministic discrete-event [`Scheduler`];
//! - [`link`]: links and composed paths with latency/jitter/loss/bandwidth
//!   and smoltcp-style fault injection;
//! - [`tcp`]: the flow-level TCP timing model (connects, RTO ladders
//!   calibrated to the paper's Table 5, slow-start transfers, HTTP
//!   timeouts);
//! - [`topology`]: AS-level geography anchored on the paper's Table 2
//!   latency measurements, providers, and multihomed access networks;
//! - [`load`]: the client-side load model behind the paper's redundancy
//!   trade-offs (Figures 5 and 6a).
//!
//! Everything here is synchronous-in-virtual-time and bit-reproducible for
//! a given seed: no wall-clock reads, no ambient randomness, no threads.
//!
//! ## Example
//!
//! ```
//! use csaw_simnet::prelude::*;
//!
//! let mut rng = DetRng::new(42);
//! let path = Path::single(Link::wan(SimDuration::from_millis(93))); // ~YouTube
//! let cfg = TcpConfig::default();
//! match connect(&path, &cfg, &mut rng) {
//!     ConnectOutcome::Established { elapsed } => {
//!         let rtt = path.base_rtt();
//!         let dl = transfer_time(360_000, rtt, path.bottleneck_bps(), &cfg);
//!         println!("connected in {elapsed}, page in {dl}");
//!     }
//!     other => println!("blocked? {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
// `unsafe` is denied crate-wide; the one exception is the reviewed
// slab arena inside the timing wheel (`wheel.rs`), which keeps the
// event queue's bucket storage in a single allocation instead of one
// heap block per bucket.
#![deny(unsafe_code)]

pub mod event;
pub mod link;
pub mod load;
pub mod rng;
pub mod tcp;
pub mod time;
pub mod topology;
mod wheel;

pub use event::Scheduler;
pub use link::{FlapProfile, Link, Path};
pub use load::{InFlightTracker, LoadModel};
pub use rng::DetRng;
pub use tcp::{
    connect, connect_blackholed, connect_reset, exchange, exchange_dropped, exchange_reset,
    transfer_time, ConnectOutcome, ExchangeOutcome, TcpConfig,
};
pub use time::{SimDuration, SimTime};
pub use topology::{AccessNetwork, AccessProfile, Asn, Provider, Region, Site};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::event::Scheduler;
    pub use crate::link::{FlapProfile, Link, Path};
    pub use crate::load::{InFlightTracker, LoadModel};
    pub use crate::rng::DetRng;
    pub use crate::tcp::{
        connect, connect_blackholed, connect_reset, exchange, exchange_dropped, exchange_reset,
        transfer_time, ConnectOutcome, ExchangeOutcome, TcpConfig,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{AccessNetwork, AccessProfile, Asn, Provider, Region, Site};
}
