//! Flow-level TCP timing model.
//!
//! The reproduction does not simulate individual segments; instead it
//! computes, analytically but stochastically, how long TCP operations take
//! on a given [`Path`]. Three behaviours matter for C-Saw:
//!
//! 1. **Connection establishment** — one RTT when the path is clean, and a
//!    classic BSD-style retransmission ladder when SYNs are black-holed
//!    (initial RTO 3 s, doubling, 2 retries: 3 + 6 + 12 = **21 s**, which is
//!    exactly the paper's Table 5 average detection time for TCP/IP
//!    blocking).
//! 2. **Data transfer** — slow-start rounds followed by serialization at
//!    the bottleneck bandwidth. The model is exactly monotone in size,
//!    and monotone in RTT up to one round of discretization (a larger
//!    RTT also enlarges the BDP window cap, which can save a round) —
//!    the properties PLT comparisons depend on.
//! 3. **Resets** — an injected RST surfaces after roughly one RTT.
//!
//! Loss on the path turns into extra RTO-scale delays with the appropriate
//! probability, so lossy-but-uncensored paths produce the long-tail PLTs
//! that C-Saw's detector must not mistake for censorship.

use crate::link::Path;
use crate::rng::DetRng;
use crate::time::SimDuration;

/// Tunables for the TCP model. Defaults are calibrated against Table 5 of
/// the paper and ordinary web-transfer behaviour.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Initial retransmission timeout for SYNs (classic 3 s).
    pub initial_rto: SimDuration,
    /// Number of SYN retransmissions before giving up.
    /// With `initial_rto` = 3 s and 2 retries: 3 + 6 + 12 = 21 s total.
    pub syn_retries: u32,
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window, in segments (RFC 6928's IW10).
    pub init_cwnd_segments: u32,
    /// Server think time before the first response byte, beyond the RTT.
    pub server_think: SimDuration,
    /// How long a client waits for an HTTP response before declaring a
    /// GET timeout (the paper's `HTTP_GET_TIMEOUT` observations).
    pub http_timeout: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            initial_rto: SimDuration::from_secs(3),
            syn_retries: 2,
            mss: 1460,
            init_cwnd_segments: 10,
            server_think: SimDuration::from_millis(30),
            http_timeout: SimDuration::from_secs(30),
        }
    }
}

impl TcpConfig {
    /// Total time spent before a black-holed connect attempt is abandoned:
    /// the sum of the full RTO ladder.
    pub fn connect_timeout_total(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut rto = self.initial_rto;
        for _ in 0..=self.syn_retries {
            total += rto;
            rto = rto * 2;
        }
        total
    }
}

/// Outcome of a connection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectOutcome {
    /// Handshake completed after `elapsed`.
    Established {
        /// Time from first SYN to handshake completion.
        elapsed: SimDuration,
    },
    /// Every SYN (or SYN-ACK) vanished; gave up after `elapsed`.
    Timeout {
        /// Time burned on the full RTO ladder.
        elapsed: SimDuration,
    },
    /// A RST arrived after `elapsed` (censor or server refusal).
    Reset {
        /// Time until the RST surfaced.
        elapsed: SimDuration,
    },
}

impl ConnectOutcome {
    /// Time consumed by the attempt regardless of how it ended.
    pub fn elapsed(&self) -> SimDuration {
        match *self {
            ConnectOutcome::Established { elapsed }
            | ConnectOutcome::Timeout { elapsed }
            | ConnectOutcome::Reset { elapsed } => elapsed,
        }
    }

    /// True if the connection was established.
    pub fn is_established(&self) -> bool {
        matches!(self, ConnectOutcome::Established { .. })
    }
}

/// Attempt a TCP handshake over a clean (non-black-holed) path.
///
/// Each attempt needs the SYN and the SYN-ACK to survive; per-packet loss
/// comes from the path. A lost round costs the current RTO, which then
/// doubles. If every attempt in the ladder is unlucky the connect times
/// out even without a censor — rare on sane paths, but exactly the
/// ambiguity C-Saw's redundant requests are designed to resolve.
pub fn connect(path: &Path, cfg: &TcpConfig, rng: &mut DetRng) -> ConnectOutcome {
    let mut elapsed = SimDuration::ZERO;
    let mut rto = cfg.initial_rto;
    for attempt in 0..=cfg.syn_retries {
        let syn_lost = path.packet_lost(rng);
        let synack_lost = path.packet_lost(rng);
        if !syn_lost && !synack_lost {
            return ConnectOutcome::Established {
                elapsed: elapsed + path.sample_rtt(rng),
            };
        }
        elapsed += rto;
        rto = rto * 2;
        let _ = attempt;
    }
    ConnectOutcome::Timeout { elapsed }
}

/// A connect attempt against a SYN black hole: always consumes the full
/// RTO ladder.
pub fn connect_blackholed(cfg: &TcpConfig) -> ConnectOutcome {
    ConnectOutcome::Timeout {
        elapsed: cfg.connect_timeout_total(),
    }
}

/// A connect attempt answered by an injected RST: fails after ~1 RTT.
pub fn connect_reset(path: &Path, rng: &mut DetRng) -> ConnectOutcome {
    ConnectOutcome::Reset {
        elapsed: path.sample_rtt(rng),
    }
}

/// Time to move `size_bytes` from server to client over an established
/// connection: slow-start RTT rounds plus serialization at the bottleneck.
pub fn transfer_time(
    size_bytes: u64,
    rtt: SimDuration,
    bottleneck_bps: u64,
    cfg: &TcpConfig,
) -> SimDuration {
    if size_bytes == 0 {
        return SimDuration::ZERO;
    }
    let mss = cfg.mss as u64;
    // Congestion window is capped by the bandwidth-delay product: once the
    // pipe is full, extra window buys nothing.
    let bdp_bytes = ((bottleneck_bps as u128 * rtt.as_micros() as u128) / 8_000_000) as u64;
    let init = cfg.init_cwnd_segments as u64 * mss;
    let cap = bdp_bytes.max(init);

    let mut cwnd = init;
    let mut delivered = 0u64;
    let mut rounds = 0u64;
    while delivered < size_bytes {
        delivered += cwnd;
        cwnd = (cwnd * 2).min(cap);
        rounds += 1;
        // Safety valve: a pathological (cap = tiny) configuration should
        // not loop forever; serialization term below dominates anyway.
        if rounds > 10_000 {
            break;
        }
    }
    let rtt_component = SimDuration::from_micros(rtt.as_micros() * rounds);
    let serialization =
        SimDuration::from_micros((size_bytes as u128 * 8_000_000 / bottleneck_bps as u128) as u64);
    rtt_component + serialization
}

/// Outcome of a full request/response exchange on an established
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeOutcome {
    /// Response fully received after `elapsed` (measured from request send).
    Done {
        /// Time from request send to last response byte.
        elapsed: SimDuration,
    },
    /// No response within the HTTP timeout (request or response dropped
    /// mid-flight — the paper's `HTTP_GET_TIMEOUT`).
    GetTimeout {
        /// Time burned waiting (the configured HTTP timeout).
        elapsed: SimDuration,
    },
    /// Connection reset while waiting for the response.
    ResetMidFlight {
        /// Time until the RST surfaced.
        elapsed: SimDuration,
    },
}

impl ExchangeOutcome {
    /// Time consumed regardless of how the exchange ended.
    pub fn elapsed(&self) -> SimDuration {
        match *self {
            ExchangeOutcome::Done { elapsed }
            | ExchangeOutcome::GetTimeout { elapsed }
            | ExchangeOutcome::ResetMidFlight { elapsed } => elapsed,
        }
    }

    /// True if a complete response was received.
    pub fn is_done(&self) -> bool {
        matches!(self, ExchangeOutcome::Done { .. })
    }
}

/// Perform a request/response exchange: one-way request, server think time,
/// then the response transfer. Loss manifests as RTO-scale stalls.
pub fn exchange(
    path: &Path,
    response_bytes: u64,
    cfg: &TcpConfig,
    rng: &mut DetRng,
) -> ExchangeOutcome {
    let rtt = path.sample_rtt(rng);
    let mut elapsed = rtt / 2; // request flies one way
    elapsed += cfg.server_think;
    elapsed += transfer_time(response_bytes, rtt, path.bottleneck_bps(), cfg);
    // Each loss event stalls the flow roughly one RTO; approximate the
    // number of loss events binomially over the segment count.
    let segs = (response_bytes / cfg.mss as u64).max(1);
    let loss = path.loss();
    if loss > 0.0 {
        let mut stalls = 0u64;
        // For small segment counts sample exactly; for large, use the mean.
        if segs <= 64 {
            for _ in 0..segs {
                if rng.chance(loss) {
                    stalls += 1;
                }
            }
        } else {
            stalls = ((segs as f64 * loss).round()) as u64;
        }
        elapsed += SimDuration::from_micros(cfg.initial_rto.as_micros() / 3 * stalls);
    }
    let out = if elapsed > cfg.http_timeout {
        ExchangeOutcome::GetTimeout {
            elapsed: cfg.http_timeout,
        }
    } else {
        ExchangeOutcome::Done { elapsed }
    };
    trace_flow(&out, response_bytes);
    out
}

/// Emit a flow-completion span into the active fetch trace, placed at
/// the trace cursor (where the enclosing stage currently sits on the
/// fetch's waterfall). Inert outside a trace or with a disabled sink,
/// and never draws from any RNG — instrumentation cannot perturb the
/// simulation.
fn trace_flow(out: &ExchangeOutcome, response_bytes: u64) {
    if !csaw_obs::trace::in_trace() || !csaw_obs::scope::current().sink.enabled() {
        return;
    }
    csaw_obs::event::span_completed_at(
        "simnet.flow",
        csaw_obs::trace::cursor_us().unwrap_or(0),
        out.elapsed().as_micros(),
        &[
            ("bytes", csaw_obs::json::JsonValue::from(response_bytes)),
            ("done", csaw_obs::json::JsonValue::from(out.is_done())),
        ],
    );
}

/// An exchange whose request (or response) is silently dropped by a censor:
/// the client burns the full HTTP timeout.
pub fn exchange_dropped(cfg: &TcpConfig) -> ExchangeOutcome {
    let out = ExchangeOutcome::GetTimeout {
        elapsed: cfg.http_timeout,
    };
    trace_flow(&out, 0);
    out
}

/// An exchange killed by an injected RST shortly after the request.
pub fn exchange_reset(path: &Path, rng: &mut DetRng) -> ExchangeOutcome {
    let out = ExchangeOutcome::ResetMidFlight {
        elapsed: path.sample_rtt(rng),
    };
    trace_flow(&out, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    fn clean_path(rtt_ms: u64) -> Path {
        Path::single(Link {
            latency: SimDuration::from_millis(rtt_ms / 2),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 50_000_000,
        })
    }

    #[test]
    fn default_ladder_is_21s() {
        let cfg = TcpConfig::default();
        assert_eq!(cfg.connect_timeout_total(), SimDuration::from_secs(21));
        assert_eq!(
            connect_blackholed(&cfg).elapsed(),
            SimDuration::from_secs(21)
        );
    }

    #[test]
    fn clean_connect_is_one_rtt() {
        let mut rng = DetRng::new(1);
        let p = clean_path(100);
        let cfg = TcpConfig::default();
        match connect(&p, &cfg, &mut rng) {
            ConnectOutcome::Established { elapsed } => {
                assert_eq!(elapsed, SimDuration::from_millis(100));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reset_surfaces_after_rtt() {
        let mut rng = DetRng::new(2);
        let p = clean_path(80);
        let out = connect_reset(&p, &mut rng);
        assert_eq!(out.elapsed(), SimDuration::from_millis(80));
        assert!(!out.is_established());
    }

    #[test]
    fn lossy_connect_sometimes_stalls_but_usually_succeeds() {
        let mut rng = DetRng::new(3);
        let p = Path::single(Link::lan().with_loss(0.05));
        let cfg = TcpConfig::default();
        let mut established = 0;
        let mut stalled = 0;
        for _ in 0..500 {
            match connect(&p, &cfg, &mut rng) {
                ConnectOutcome::Established { elapsed } => {
                    established += 1;
                    if elapsed >= cfg.initial_rto {
                        stalled += 1;
                    }
                }
                ConnectOutcome::Timeout { .. } => {}
                ConnectOutcome::Reset { .. } => unreachable!(),
            }
        }
        assert!(established > 480, "established {established}");
        assert!(stalled > 10, "stalled {stalled}");
    }

    #[test]
    fn transfer_monotone_in_size() {
        let cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(100);
        let mut prev = SimDuration::ZERO;
        for size in [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            let t = transfer_time(size, rtt, 20_000_000, &cfg);
            assert!(t >= prev, "size {size}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn transfer_monotone_in_rtt() {
        let cfg = TcpConfig::default();
        let mut prev = SimDuration::ZERO;
        for rtt_ms in [10u64, 50, 100, 200, 400] {
            let t = transfer_time(360_000, SimDuration::from_millis(rtt_ms), 20_000_000, &cfg);
            assert!(t >= prev, "rtt {rtt_ms}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn zero_bytes_is_free() {
        let cfg = TcpConfig::default();
        assert_eq!(
            transfer_time(0, SimDuration::from_millis(50), 1_000_000, &cfg),
            SimDuration::ZERO
        );
    }

    #[test]
    fn small_page_fits_one_window() {
        // 10 KB fits inside IW10 (10 * 1460 = 14600 B): one round.
        let cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(100);
        let t = transfer_time(10_000, rtt, 100_000_000, &cfg);
        // one RTT round plus sub-ms serialization
        assert!(t >= rtt && t < rtt + SimDuration::from_millis(5), "{t}");
    }

    #[test]
    fn exchange_done_and_dropped() {
        let mut rng = DetRng::new(5);
        let p = clean_path(60);
        let cfg = TcpConfig::default();
        let ok = exchange(&p, 50_000, &cfg, &mut rng);
        assert!(ok.is_done());
        assert!(ok.elapsed() > SimDuration::from_millis(60));
        let dropped = exchange_dropped(&cfg);
        assert_eq!(dropped.elapsed(), cfg.http_timeout);
        assert!(!dropped.is_done());
    }

    #[test]
    fn huge_transfer_hits_http_timeout() {
        let mut rng = DetRng::new(6);
        // 1 Mbps bottleneck, 100 MB response: serialization alone is 800 s.
        let p = Path::single(Link::lan().with_bandwidth(1_000_000));
        let cfg = TcpConfig::default();
        let out = exchange(&p, 100_000_000, &cfg, &mut rng);
        assert!(matches!(out, ExchangeOutcome::GetTimeout { .. }));
        assert_eq!(out.elapsed(), cfg.http_timeout);
    }
}
