//! Virtual time for the deterministic simulator.
//!
//! All simulation-side crates express time as [`SimTime`] (an absolute
//! instant, microseconds since the simulation epoch) and [`SimDuration`]
//! (a span, also in microseconds). Using integer microseconds keeps every
//! experiment bit-reproducible across platforms — no floating-point clock
//! drift, no wall-clock reads.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in microseconds since epoch 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds since epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds since epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds since epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since epoch as a float (for reporting only; never feed back
    /// into simulation logic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`. Saturates at zero if `earlier`
    /// is actually later (callers comparing racing events may legitimately
    /// hit this).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1_000_000.0).round() as u64)
        }
    }

    /// Microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// True if this is the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_millis(100);
        let d = SimDuration::from_millis(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.duration_since(t0), d);
        // Reversed subtraction saturates, never panics.
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn fractional_seconds() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(1.5).as_micros(), 150);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_millis(5);
        let y = SimDuration::from_millis(7);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7)), "7.000s");
    }
}
