//! Telemetry determinism: the metrics snapshot is a pure function of
//! the experiment seed. Two same-seed runs — each under its own fresh
//! observability scope — must serialize to byte-identical JSON.

use csaw_obs::clock::ManualClock;
use csaw_obs::scope::{self, ObsCtx};
use std::sync::Arc;

/// Run Table 5 under a fresh registry and return the snapshot JSON.
fn run_table5_snapshot(seed: u64) -> String {
    let ctx = Arc::new(ObsCtx::new().with_clock(Arc::new(ManualClock::new())));
    let _guard = scope::install(ctx.clone());
    let _ = csaw_bench::experiments::table5::run(seed);
    ctx.registry.snapshot().to_string_pretty()
}

#[test]
fn same_seed_runs_emit_byte_identical_metrics() {
    let a = run_table5_snapshot(1);
    let b = run_table5_snapshot(1);
    assert_eq!(a, b, "same-seed snapshots must be byte-identical");
    // Sanity: the snapshot actually contains the detection histograms.
    assert!(a.contains("detect.time_s"), "{a}");
}

#[test]
fn different_seeds_differ() {
    let a = run_table5_snapshot(1);
    let b = run_table5_snapshot(2);
    assert_ne!(a, b, "different seeds should perturb detection times");
}

#[test]
fn snapshot_medians_match_table5() {
    let ctx = Arc::new(ObsCtx::new().with_clock(Arc::new(ManualClock::new())));
    let _guard = scope::install(ctx.clone());
    let _ = csaw_bench::experiments::table5::run(1);
    let med = |name: &str| {
        ctx.registry
            .histogram(name)
            .median_secs()
            .unwrap_or_else(|| panic!("no samples in {name}"))
    };
    // Paper's Table 5 values, with the tolerance EXPERIMENTS.md allows
    // (histogram buckets quantize to ~0.4% on top of the simulation).
    assert!((med("detect.time_s.IpDrop") - 21.0).abs() < 1.0);
    assert!((med("detect.time_s.DnsServfail") - 10.6).abs() < 1.0);
    assert!(med("detect.time_s.DnsRefused") < 0.1);
    assert!((med("detect.time_s.HttpBlockPageRedirect") - 1.8).abs() < 1.0);
    assert!((med("detect.time_s.DnsServfail+IpDrop") - 32.7).abs() < 2.0);
}
