//! Every `exp_*` binary must answer `--help` with the shared flag docs
//! and exit 0 — the gate that keeps help text from drifting per binary.

use std::process::Command;

/// Every experiment binary in the crate. Compile-time resolved via
/// `CARGO_BIN_EXE_*`, so adding a binary without listing it here is
/// caught the moment someone greps for this list — and removing one
/// breaks the build.
const BINARIES: &[(&str, &str)] = &[
    ("exp_all", env!("CARGO_BIN_EXE_exp_all")),
    ("exp_chaos", env!("CARGO_BIN_EXE_exp_chaos")),
    ("exp_extensions", env!("CARGO_BIN_EXE_exp_extensions")),
    ("exp_fig1a", env!("CARGO_BIN_EXE_exp_fig1a")),
    ("exp_fig1b", env!("CARGO_BIN_EXE_exp_fig1b")),
    ("exp_fig1c", env!("CARGO_BIN_EXE_exp_fig1c")),
    ("exp_fig2", env!("CARGO_BIN_EXE_exp_fig2")),
    ("exp_fig5a", env!("CARGO_BIN_EXE_exp_fig5a")),
    ("exp_fig5b", env!("CARGO_BIN_EXE_exp_fig5b")),
    ("exp_fig5c", env!("CARGO_BIN_EXE_exp_fig5c")),
    ("exp_fig6a", env!("CARGO_BIN_EXE_exp_fig6a")),
    ("exp_fig6b", env!("CARGO_BIN_EXE_exp_fig6b")),
    ("exp_fig7a", env!("CARGO_BIN_EXE_exp_fig7a")),
    ("exp_fig7b", env!("CARGO_BIN_EXE_exp_fig7b")),
    ("exp_fig7c", env!("CARGO_BIN_EXE_exp_fig7c")),
    ("exp_scale", env!("CARGO_BIN_EXE_exp_scale")),
    ("exp_table1", env!("CARGO_BIN_EXE_exp_table1")),
    ("exp_table2", env!("CARGO_BIN_EXE_exp_table2")),
    ("exp_table5", env!("CARGO_BIN_EXE_exp_table5")),
    ("exp_table6", env!("CARGO_BIN_EXE_exp_table6")),
    ("exp_table7", env!("CARGO_BIN_EXE_exp_table7")),
    ("exp_wild", env!("CARGO_BIN_EXE_exp_wild")),
    ("trace-report", env!("CARGO_BIN_EXE_trace-report")),
];

#[test]
fn every_binary_answers_help_with_the_shared_flag_docs() {
    for (name, path) in BINARIES {
        let out = Command::new(path)
            .arg("--help")
            .output()
            .unwrap_or_else(|e| panic!("{name}: failed to spawn: {e}"));
        assert!(
            out.status.success(),
            "{name} --help exited {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        // trace_report has its own CLI surface; every exp_* binary must
        // print the shared help verbatim (the anti-drift gate).
        if name.starts_with("exp_") {
            assert!(
                text.contains(csaw_bench::cli::COMMON_HELP),
                "{name} --help does not embed cli::COMMON_HELP verbatim:\n{text}"
            );
        }
        assert!(!text.trim().is_empty(), "{name} --help printed nothing");
    }
}

#[test]
fn unknown_flag_is_rejected_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_exp_fig5a"))
        .arg("--no-such-flag")
        .output()
        .expect("spawn exp_fig5a");
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr lacks usage: {err}");
}
