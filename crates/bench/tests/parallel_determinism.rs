//! The acceptance gate for the parallel runner: a binary's stdout and
//! metrics snapshot are byte-identical regardless of `--jobs`.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (Vec<u8>, String) {
    let metrics = std::env::temp_dir().join(format!(
        "csaw_pdet_{}_{}.json",
        std::process::id(),
        args.join("_").replace(['-', '/'], "")
    ));
    let out = Command::new(bin)
        .args(args)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("spawn experiment binary");
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snap = std::fs::read_to_string(&metrics).expect("metrics snapshot written");
    let _ = std::fs::remove_file(&metrics);
    (out.stdout, snap)
}

#[test]
fn fig5a_output_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_exp_fig5a");
    let (serial_out, serial_snap) = run(bin, &["--seed", "1", "--jobs", "1"]);
    for jobs in ["4", "8"] {
        let (par_out, par_snap) = run(bin, &["--seed", "1", "--jobs", jobs]);
        assert_eq!(
            serial_out, par_out,
            "stdout differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial_snap, par_snap,
            "metrics snapshot differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn table5_output_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_exp_table5");
    let (serial_out, serial_snap) = run(bin, &["--seed", "1", "--jobs", "1"]);
    let (par_out, par_snap) = run(bin, &["--seed", "1", "--jobs", "16"]);
    assert_eq!(serial_out, par_out, "stdout differs at --jobs 16");
    assert_eq!(serial_snap, par_snap, "snapshot differs at --jobs 16");
}
