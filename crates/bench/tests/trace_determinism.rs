//! End-to-end causal tracing: a traced client run emits one well-formed
//! span tree per fetch (detect/circum/transfer children summing exactly
//! to the root PLT), and the rendered Chrome trace is a pure function of
//! the seed — two same-seed runs are byte-identical.

use csaw::client::CsawClient;
use csaw::config::CsawConfig;
use csaw_bench::tracereport::{fetch_records, parse_events, sum_violations, FetchRecord};
use csaw_bench::worlds::{single_isp_world, SMALL_PAGE, YOUTUBE};
use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
use csaw_obs::chrome::ChromeTraceSink;
use csaw_obs::clock::ManualClock;
use csaw_obs::scope::{self, ObsCtx};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;
use std::sync::Arc;

/// Drive a client through blocked and unblocked fetches under a fresh
/// Chrome-trace scope; return the rendered trace document.
fn run_traced_client(seed: u64) -> String {
    let sink = Arc::new(ChromeTraceSink::in_memory(1 << 16));
    let ctx = Arc::new(
        ObsCtx::new()
            .with_clock(Arc::new(ManualClock::new()))
            .with_sink(sink.clone()),
    );
    let _guard = scope::install(ctx);
    let policy = csaw_censor::single_mechanism(
        "trace-test",
        YOUTUBE,
        DnsTamper::None,
        IpAction::Drop,
        HttpAction::None,
        TlsAction::None,
    );
    let world = single_isp_world(Asn(9100), "TRACE-ISP", policy);
    let mut client = CsawClient::new(CsawConfig::default(), None, seed);
    let blocked = Url::parse(&format!("http://{YOUTUBE}/")).expect("static URL");
    let open = Url::parse(&format!("http://{SMALL_PAGE}/")).expect("static URL");
    let mut now = SimTime::from_secs(10);
    for _ in 0..6 {
        client.request(&world, &blocked, now);
        now += SimDuration::from_secs(180);
        client.request(&world, &open, now);
        now += SimDuration::from_secs(180);
    }
    sink.render()
}

fn records(trace: &str) -> Vec<FetchRecord> {
    fetch_records(&parse_events(trace).expect("rendered trace parses back"))
}

#[test]
fn client_fetches_emit_well_formed_span_trees() {
    let recs = records(&run_traced_client(11));
    assert!(!recs.is_empty(), "traced run produced no fetch trees");
    let violations = sum_violations(&recs);
    assert!(
        violations.is_empty(),
        "children must sum to the root PLT within 1us: {violations:?}"
    );
    // The blocked site forces circumvention (non-direct transport, and
    // somewhere a non-zero circumvention-setup leg); the unblocked site
    // keeps pure-transfer direct trees around.
    assert!(
        recs.iter()
            .any(|r| r.transport != "direct" && r.url.contains(YOUTUBE)),
        "no circumvented fetch in {recs:?}"
    );
    assert!(
        recs.iter().any(|r| r.circum_us > 0),
        "no circumvention-setup time recorded in {recs:?}"
    );
    assert!(
        recs.iter()
            .any(|r| r.transport == "direct" && r.detect_us == 0 && r.circum_us == 0 && r.ok),
        "no direct served fetch in {recs:?}"
    );
}

#[test]
fn same_seed_chrome_traces_are_byte_identical() {
    let a = run_traced_client(7);
    let b = run_traced_client(7);
    assert_eq!(a, b, "same-seed traces must be byte-identical");
    let c = run_traced_client(8);
    assert_ne!(a, c, "different seeds should perturb the trace");
}

#[test]
fn fig5a_traced_run_yields_one_tree_per_fetch() {
    let sink = Arc::new(ChromeTraceSink::in_memory(1 << 16));
    let ctx = Arc::new(
        ObsCtx::new()
            .with_clock(Arc::new(ManualClock::new()))
            .with_sink(sink.clone()),
    );
    let _guard = scope::install(ctx);
    let _ = csaw_bench::experiments::fig5::run_5a(1);
    let recs = records(&sink.render());
    // 4 blocking types x {serial, parallel} x 30 iterations.
    assert_eq!(recs.len(), 240, "one root span tree per fetch");
    assert!(sum_violations(&recs).is_empty());
    // Serial-mode fetches pay detection up front; the decomposition
    // must surface it on a healthy share of the trees.
    let with_detect = recs.iter().filter(|r| r.detect_us > 0).count();
    assert!(
        with_detect >= 60,
        "only {with_detect}/240 trees show detection time"
    );
}
