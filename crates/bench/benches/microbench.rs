//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! URL parsing, local-DB longest-prefix matching, the phase-1 block-page
//! classifier, vote tallying, the Fig. 4 detector, and the TCP transfer
//! model. These are the operations a deployed C-Saw proxy runs on every
//! request.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use csaw::global::{Uuid, VoteLedger};
use csaw::local::{LocalDb, Status};
use csaw::measure::{measure_direct, DetectConfig};
use csaw_blockpage::{phase1_html, Phase1Config};
use csaw_censor::blocking::BlockingType;
use csaw_simnet::rng::DetRng;
use csaw_simnet::tcp::{transfer_time, TcpConfig};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;

fn bench_url_parse(c: &mut Criterion) {
    c.bench_function("url_parse", |b| {
        b.iter(|| {
            Url::parse(black_box(
                "https://video.cdn.example.com:8443/watch/v/abc123?t=42&list=x",
            ))
            .unwrap()
        })
    });
}

fn bench_local_db_lpm(c: &mut Criterion) {
    let mut db = LocalDb::new(SimDuration::from_secs(3600));
    for i in 0..500 {
        let url = Url::parse(&format!("http://site{}.example/sec{}/page{}", i % 50, i % 7, i))
            .unwrap();
        let status = if i % 3 == 0 {
            Status::Blocked
        } else {
            Status::NotBlocked
        };
        let stages = if status == Status::Blocked {
            vec![BlockingType::HttpDrop]
        } else {
            vec![]
        };
        db.record_measurement(&url, Asn(1), SimTime::ZERO, status, stages);
    }
    let probe = Url::parse("http://site7.example/sec3/page17/deeper/path").unwrap();
    c.bench_function("local_db_lookup_lpm", |b| {
        b.iter(|| db.lookup(black_box(&probe), SimTime::ZERO))
    });
}

fn bench_phase1(c: &mut Criterion) {
    let cfg = Phase1Config::default();
    let block_page = &csaw_blockpage::corpus_47()[0].html;
    let real_page = csaw_webproto::synth_html("News", 95_000);
    c.bench_function("phase1_block_page", |b| {
        b.iter(|| phase1_html(black_box(block_page), &cfg))
    });
    c.bench_function("phase1_real_95kb", |b| {
        b.iter(|| phase1_html(black_box(&real_page), &cfg))
    });
}

fn bench_vote_tally(c: &mut Criterion) {
    let mut ledger = VoteLedger::new();
    for client in 0..200u64 {
        let urls: Vec<(String, Asn)> = (0..20)
            .map(|i| (format!("http://blocked{}.example/", (client + i) % 300), Asn(1)))
            .collect();
        ledger.set_client_report(Uuid::from_raw(client), urls);
    }
    c.bench_function("vote_tally", |b| {
        b.iter(|| ledger.tally(black_box("http://blocked42.example/"), Asn(1)))
    });
}

fn bench_detector(c: &mut Criterion) {
    let world = csaw_bench::worlds::single_isp_world(
        csaw_censor::ISP_A_ASN,
        "ISP-A",
        csaw_censor::isp_a(),
    );
    let provider = world.access.providers()[0].clone();
    let url = Url::parse("http://www.youtube.com/").unwrap();
    c.bench_function("detector_blocked_page", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            measure_direct(
                black_box(&world),
                &provider,
                &url,
                Some(360_000),
                &DetectConfig::default(),
                &mut rng,
            )
        })
    });
}

fn bench_transfer_model(c: &mut Criterion) {
    let cfg = TcpConfig::default();
    c.bench_function("transfer_time_360kb", |b| {
        b.iter(|| {
            transfer_time(
                black_box(360_000),
                SimDuration::from_millis(186),
                20_000_000,
                &cfg,
            )
        })
    });
}

fn bench_local_db_insert(c: &mut Criterion) {
    c.bench_function("local_db_record_aggregated", |b| {
        let mut db = LocalDb::new(SimDuration::from_secs(3600));
        let urls: Vec<Url> = (0..64)
            .map(|i| Url::parse(&format!("http://s{}.example/p/{i}", i % 8)).unwrap())
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let u = &urls[i % urls.len()];
            i += 1;
            let blocked = i % 3 == 0;
            let (status, stages) = if blocked {
                (Status::Blocked, vec![BlockingType::HttpDrop])
            } else {
                (Status::NotBlocked, vec![])
            };
            db.record_measurement(black_box(u), Asn(1), SimTime::ZERO, status, stages);
        })
    });
}

fn bench_redundancy_parallel(c: &mut Criterion) {
    use csaw::config::RedundancyMode;
    use csaw::measure::fetch_with_redundancy;
    use csaw_circumvent::transports::FetchCtx;
    let world = csaw_bench::worlds::single_isp_world(
        csaw_censor::ISP_A_ASN,
        "ISP-A",
        csaw_censor::isp_a(),
    );
    let provider = world.access.providers()[0].clone();
    let url = Url::parse("http://www.youtube.com/").unwrap();
    c.bench_function("redundant_fetch_parallel", |b| {
        let mut rng = DetRng::new(2);
        let mut tor = csaw_circumvent::tor::TorClient::new();
        let ctx = FetchCtx {
            now: SimTime::ZERO,
            provider: provider.clone(),
        };
        b.iter(|| {
            fetch_with_redundancy(
                black_box(&world),
                &ctx,
                &url,
                RedundancyMode::Parallel,
                &mut tor,
                &DetectConfig::default(),
                &csaw_simnet::load::LoadModel::default(),
                &mut rng,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_url_parse,
    bench_local_db_lpm,
    bench_phase1,
    bench_vote_tally,
    bench_detector,
    bench_transfer_model,
    bench_local_db_insert,
    bench_redundancy_parallel
);
criterion_main!(benches);
