//! Micro-benchmarks for the hot paths of the reproduction: URL parsing,
//! local-DB longest-prefix matching, the phase-1 block-page classifier,
//! vote tallying, the Fig. 4 detector, the TCP transfer model, and the
//! simnet event loop. These are the operations a deployed C-Saw proxy
//! runs on every request.
//!
//! Hand-rolled harness (`harness = false`): each benchmark is calibrated
//! to a target wall time, then timed over a fixed iteration count and
//! reported as ns/iter with a best-of-runs summary.
//!
//! ```sh
//! cargo bench -p csaw-bench
//! # filter: cargo bench -p csaw-bench -- event_loop
//! ```

use csaw::global::{Uuid, VoteLedger};
use csaw::local::{LocalDb, Status};
use csaw::measure::{measure_direct, DetectConfig};
use csaw_blockpage::{phase1_html, Phase1Config};
use csaw_censor::blocking::BlockingType;
use csaw_simnet::event::Scheduler;
use csaw_simnet::rng::DetRng;
use csaw_simnet::tcp::{transfer_time, TcpConfig};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time `f` adaptively: calibrate the iteration count to ~10ms batches,
/// then report the fastest batch (ns per iteration) over ~300ms of
/// timed batches.
///
/// Minimum-of-many-small-batches instead of an average over a few long
/// runs: the CI hosts are shared VMs whose throughput drifts by tens of
/// percent over hundreds of milliseconds (hypervisor steal), and an
/// average folds that interference into the result. The fastest batch
/// is still a full-batch average — never a single-iteration time — so
/// it estimates steady-state cost, not a lucky cache hit.
fn bench<R>(
    name: &str,
    filter: Option<&str>,
    out: &mut Vec<(String, u64)>,
    mut f: impl FnMut() -> R,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    // Calibrate: start at 1 iter, double until the batch takes ≥ 10ms.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt >= Duration::from_millis(10) || iters >= 1 << 30 {
            // Scale to ~10ms per timed batch.
            let per_iter = dt.as_nanos().max(1) / iters as u128;
            iters = (10_000_000 / per_iter).max(1) as u64;
            break;
        }
        iters *= 2;
    }
    let mut best = u128::MAX;
    for _ in 0..30 {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() / iters as u128);
    }
    println!("{name:<32} {best:>12} ns/iter  ({iters} iters/batch)");
    out.push((name.to_string(), best as u64));
}

fn bench_url_parse(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    bench("url_parse", filter, out, || {
        Url::parse(black_box(
            "https://video.cdn.example.com:8443/watch/v/abc123?t=42&list=x",
        ))
        .unwrap()
    });
}

fn bench_local_db_lpm(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    let mut db = LocalDb::new(SimDuration::from_secs(3600));
    for i in 0..500 {
        let url = Url::parse(&format!(
            "http://site{}.example/sec{}/page{}",
            i % 50,
            i % 7,
            i
        ))
        .unwrap();
        let status = if i % 3 == 0 {
            Status::Blocked
        } else {
            Status::NotBlocked
        };
        let stages = if status == Status::Blocked {
            vec![BlockingType::HttpDrop]
        } else {
            vec![]
        };
        db.record_measurement(&url, Asn(1), SimTime::ZERO, status, stages);
    }
    let probe = Url::parse("http://site7.example/sec3/page17/deeper/path").unwrap();
    bench("local_db_lookup_lpm", filter, out, || {
        db.lookup(black_box(&probe), SimTime::ZERO)
    });
}

fn bench_phase1(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    let cfg = Phase1Config::default();
    let block_page = &csaw_blockpage::corpus_47()[0].html;
    let real_page = csaw_webproto::synth_html("News", 95_000);
    bench("phase1_block_page", filter, out, || {
        phase1_html(black_box(block_page), &cfg)
    });
    bench("phase1_real_95kb", filter, out, || {
        phase1_html(black_box(&real_page), &cfg)
    });
}

fn bench_vote_tally(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    let ledger = VoteLedger::new();
    for client in 0..200u64 {
        let urls: Vec<(String, Asn)> = (0..20)
            .map(|i| {
                (
                    format!("http://blocked{}.example/", (client + i) % 300),
                    Asn(1),
                )
            })
            .collect();
        ledger.set_client_report(Uuid::from_raw(client), urls);
    }
    bench("vote_tally", filter, out, || {
        ledger.tally(black_box("http://blocked42.example/"), Asn(1))
    });
}

fn bench_detector(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    let world =
        csaw_bench::worlds::single_isp_world(csaw_censor::ISP_A_ASN, "ISP-A", csaw_censor::isp_a());
    let provider = world.access.providers()[0].clone();
    let url = Url::parse("http://www.youtube.com/").unwrap();
    let mut rng = DetRng::new(1);
    bench("detector_blocked_page", filter, out, || {
        measure_direct(
            black_box(&world),
            &provider,
            &url,
            Some(360_000),
            &DetectConfig::default(),
            &mut rng,
        )
    });
}

fn bench_transfer_model(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    let cfg = TcpConfig::default();
    bench("transfer_time_360kb", filter, out, || {
        transfer_time(
            black_box(360_000),
            SimDuration::from_millis(186),
            20_000_000,
            &cfg,
        )
    });
}

fn bench_local_db_insert(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    let mut db = LocalDb::new(SimDuration::from_secs(3600));
    let urls: Vec<Url> = (0..64)
        .map(|i| Url::parse(&format!("http://s{}.example/p/{i}", i % 8)).unwrap())
        .collect();
    let mut i = 0usize;
    bench("local_db_record_aggregated", filter, out, || {
        let u = &urls[i % urls.len()];
        i += 1;
        let blocked = i.is_multiple_of(3);
        let (status, stages) = if blocked {
            (Status::Blocked, vec![BlockingType::HttpDrop])
        } else {
            (Status::NotBlocked, vec![])
        };
        db.record_measurement(black_box(u), Asn(1), SimTime::ZERO, status, stages);
    });
}

fn bench_redundancy_parallel(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    use csaw::config::RedundancyMode;
    use csaw::measure::fetch_with_redundancy;
    use csaw_circumvent::transports::FetchCtx;
    let world =
        csaw_bench::worlds::single_isp_world(csaw_censor::ISP_A_ASN, "ISP-A", csaw_censor::isp_a());
    let provider = world.access.providers()[0].clone();
    let url = Url::parse("http://www.youtube.com/").unwrap();
    let mut rng = DetRng::new(2);
    let mut tor = csaw_circumvent::tor::TorClient::new();
    let ctx = FetchCtx {
        now: SimTime::ZERO,
        provider: provider.clone(),
    };
    bench("redundant_fetch_parallel", filter, out, || {
        fetch_with_redundancy(
            black_box(&world),
            &ctx,
            &url,
            RedundancyMode::Parallel,
            &mut tor,
            &DetectConfig::default(),
            &csaw_simnet::load::LoadModel::default(),
            &mut rng,
        )
    });
}

/// The simnet event loop with the default (null-sink) observability
/// context: 10k events dispatched through `run_until`, including a
/// re-schedule per event. This is the workload behind the csaw-obs
/// "≤ 5% overhead with the null sink" acceptance criterion.
fn bench_event_loop(filter: Option<&str>, out: &mut Vec<(String, u64)>) {
    bench("simnet_event_loop_10k", filter, out, || {
        let mut s: Scheduler<u64> = Scheduler::new();
        let mut rng = DetRng::new(42);
        for i in 0..10_000u64 {
            s.schedule(SimTime::from_micros(rng.range_u64(0, 1_000_000)), i);
        }
        let mut acc = 0u64;
        s.run_until(SimTime::from_secs(2), |_, e, sched| {
            acc = acc.wrapping_add(e);
            if e % 64 == 0 {
                sched.schedule(SimTime::from_secs(3), e); // past horizon: stays queued
            }
        });
        acc
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // cargo bench passes --bench; any bare argument is a name filter;
    // `--json PATH` merges the results into a scorecard's timing.micro
    // section (creating the file if needed) for the CI perf gate.
    let mut json_out: Option<std::path::PathBuf> = None;
    let mut filter: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(path) => json_out = Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("microbench: --json needs a path");
                    std::process::exit(2);
                }
            },
            a if a.starts_with('-') => {} // cargo's own bench plumbing
            a => filter = Some(a.to_string()),
        }
    }
    let filter = filter.as_deref();
    let mut results: Vec<(String, u64)> = Vec::new();
    let out = &mut results;
    println!("{:<32} {:>12}", "benchmark", "time");
    bench_url_parse(filter, out);
    bench_local_db_lpm(filter, out);
    bench_phase1(filter, out);
    bench_vote_tally(filter, out);
    bench_detector(filter, out);
    bench_transfer_model(filter, out);
    bench_local_db_insert(filter, out);
    bench_redundancy_parallel(filter, out);
    bench_event_loop(filter, out);
    if let Some(path) = json_out {
        if let Err(e) =
            csaw_bench::scorecard::Scorecard::merge_micro_file(&path, "microbench", 1, &results)
        {
            eprintln!("microbench: {e}");
            std::process::exit(1);
        }
        eprintln!("microbench: micro results merged -> {}", path.display());
    }
}
