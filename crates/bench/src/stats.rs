//! Distribution summaries and CDFs for experiment reporting.
//!
//! Percentiles here are **exact** (sort + linear interpolation over the
//! raw sample) because the figure/table renderers reproduce the paper's
//! numbers and must not carry sketch error. Telemetry paths that can
//! tolerate bucket resolution — trace-leg stats, scale-lookup rows, and
//! every windowed timeline digest — use the log-bucketed
//! `csaw_obs::metrics::Histogram` quantiles instead (exact below 64 µs,
//! ≤ ~1.6 % above); that split is deliberate, so don't fold one into
//! the other.

use csaw_simnet::time::SimDuration;

/// Summary statistics over a sample of durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean, seconds.
    pub mean_s: f64,
    /// Median, seconds.
    pub median_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// Minimum, seconds.
    pub min_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

impl Summary {
    /// Summarize a sample (empty samples produce all-zero summaries).
    pub fn of(samples: &[SimDuration]) -> Summary {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean_s: 0.0,
                median_s: 0.0,
                p95_s: 0.0,
                min_s: 0.0,
                max_s: 0.0,
            };
        }
        let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let n = secs.len();
        Summary {
            n,
            mean_s: secs.iter().sum::<f64>() / n as f64,
            median_s: percentile_sorted(&secs, 50.0),
            p95_s: percentile_sorted(&secs, 95.0),
            min_s: secs[0],
            max_s: secs[n - 1],
        }
    }
}

/// Percentile over a sorted sample, nearest-rank with linear
/// interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile of a duration sample.
pub fn percentile(samples: &[SimDuration], p: f64) -> SimDuration {
    if samples.is_empty() {
        return SimDuration::ZERO;
    }
    let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    SimDuration::from_secs_f64(percentile_sorted(&secs, p))
}

/// An empirical CDF: sorted values with cumulative probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    /// Series label (legend entry).
    pub label: String,
    /// Sorted sample, seconds.
    pub values_s: Vec<f64>,
}

impl Cdf {
    /// Build from a duration sample.
    pub fn of(label: &str, samples: &[SimDuration]) -> Cdf {
        let mut values_s: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
        values_s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf {
            label: label.to_string(),
            values_s,
        }
    }

    /// `(value, F(value))` points.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.values_s.len();
        self.values_s
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Median of the series.
    pub fn median(&self) -> f64 {
        if self.values_s.is_empty() {
            0.0
        } else {
            percentile_sorted(&self.values_s, 50.0)
        }
    }

    /// p-th percentile of the series.
    pub fn pct(&self, p: f64) -> f64 {
        if self.values_s.is_empty() {
            0.0
        } else {
            percentile_sorted(&self.values_s, p)
        }
    }

    /// Render several CDFs as a text table sampled at fixed quantiles —
    /// the textual analogue of the paper's CDF figures.
    pub fn render_table(cdfs: &[Cdf]) -> String {
        let quantiles = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0];
        let mut out = String::new();
        out.push_str(&format!("{:<28}", "series \\ PLT(s) at CDF="));
        for q in quantiles {
            out.push_str(&format!("{:>8}", format!("p{q:.0}")));
        }
        out.push('\n');
        for cdf in cdfs {
            out.push_str(&format!("{:<28}", cdf.label));
            for q in quantiles {
                out.push_str(&format!("{:>8.2}", cdf.pct(q)));
            }
            out.push('\n');
        }
        out
    }
}

/// Relative reduction `(a - b) / a`, in percent (how much better `b` is).
pub fn reduction_pct(a: f64, b: f64) -> f64 {
    if a <= 0.0 {
        0.0
    } else {
        (a - b) / a * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(xs: &[u64]) -> Vec<SimDuration> {
        xs.iter().map(|x| SimDuration::from_millis(*x)).collect()
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&ms(&[100, 200, 300, 400, 500]));
        assert_eq!(s.n, 5);
        assert!((s.mean_s - 0.3).abs() < 1e-9);
        assert!((s.median_s - 0.3).abs() < 1e-9);
        assert!((s.min_s - 0.1).abs() < 1e-9);
        assert!((s.max_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_s, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile_sorted(&sorted, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile_sorted(&sorted, 100.0) - 4.0).abs() < 1e-9);
        assert!((percentile_sorted(&sorted, 50.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_points_monotone() {
        let c = Cdf::of("x", &ms(&[300, 100, 200]));
        let pts = c.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert!((c.median() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn reduction() {
        assert!((reduction_pct(10.0, 5.0) - 50.0).abs() < 1e-9);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn render_has_all_series() {
        let a = Cdf::of("alpha", &ms(&[100, 200]));
        let b = Cdf::of("beta", &ms(&[300, 400]));
        let t = Cdf::render_table(&[a, b]);
        assert!(t.contains("alpha"));
        assert!(t.contains("beta"));
        assert!(t.lines().count() >= 3);
    }
}
