//! Trace analysis behind the `trace-report` binary.
//!
//! Consumes the files `--trace-out` writes — either a Chrome trace
//! (`.json`) or raw JSONL events — and reconstructs the per-fetch span
//! trees the client emits (`fetch` roots with `fetch.detect`,
//! `fetch.circum`, `fetch.transfer` children; see
//! `csaw::tracing`). From those it renders:
//!
//! - per-fetch **waterfalls** (detect/circum/transfer segments on a
//!   shared scale);
//! - a **PLT-decomposition table** (mean/p50/p99 per leg, plus each
//!   leg's share of total PLT);
//! - a **regression verdict** against a baseline trace: p50/p99 of
//!   total PLT compared leg-for-leg, with a configurable threshold.
//!
//! The invariant checked throughout: a fetch's children sum to its
//! root duration within [`SUM_TOLERANCE_US`]. A trace violating that is
//! malformed — the emitter constructs `transfer` as the exact
//! remainder, so any drift means the tree was truncated or corrupted.

use csaw_obs::json::JsonValue;
use csaw_obs::metrics::Histogram;
use std::collections::BTreeMap;

/// Children must sum to the root PLT within this many microseconds.
pub const SUM_TOLERANCE_US: u64 = 1;

/// One event parsed back out of a trace file, format-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct RawEvent {
    /// Event name (`fetch`, `fetch.detect`, `simnet.flow`, ...).
    pub name: String,
    /// Start timestamp (µs, virtual time).
    pub ts_us: u64,
    /// Duration for span events; `None` for instants.
    pub dur_us: Option<u64>,
    /// Trace id (16-char hex) when the event was inside a trace.
    pub trace: Option<String>,
    /// Span id (16-char hex).
    pub span: Option<String>,
    /// Parent span id, absent on roots.
    pub parent: Option<String>,
    /// Remaining structured fields (`url`, `transport`, `ok`, ...).
    pub fields: BTreeMap<String, JsonValue>,
}

/// Parse a trace file body, auto-detecting the format: a Chrome trace
/// document (one JSON object with a `traceEvents` array) or JSONL (one
/// event object per line). Metadata records (`ph: "M"`) are skipped.
pub fn parse_events(text: &str) -> Result<Vec<RawEvent>, String> {
    let trimmed = text.trim_start();
    if trimmed.starts_with('{') && !trimmed.contains('\n')
        || trimmed.starts_with("{\"displayTimeUnit\"")
    {
        parse_chrome(text)
    } else {
        parse_jsonl(text)
    }
}

fn str_field(v: &JsonValue, key: &str) -> Option<String> {
    v.get(key).and_then(|s| s.as_str()).map(str::to_string)
}

/// Parse the JSONL stream `JsonlSink` writes (`Event::to_json`, one
/// compact object per line).
pub fn parse_jsonl(text: &str) -> Result<Vec<RawEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e:?}", lineno + 1))?;
        let name =
            str_field(&v, "event").ok_or_else(|| format!("line {}: no event", lineno + 1))?;
        let ts_us = v
            .get("ts_us")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| format!("line {}: no ts_us", lineno + 1))?;
        let mut fields = BTreeMap::new();
        if let Some(f) = v.get("fields").and_then(|f| f.as_obj()) {
            for (k, val) in f {
                fields.insert(k.clone(), val.clone());
            }
        }
        out.push(RawEvent {
            name,
            ts_us,
            dur_us: v.get("dur_us").and_then(|d| d.as_u64()),
            trace: str_field(&v, "trace"),
            span: str_field(&v, "span"),
            parent: str_field(&v, "parent"),
            fields,
        });
    }
    Ok(out)
}

/// Parse a Chrome trace document (`ChromeTraceSink` output): `ph: "X"`
/// slices become span events, `ph: "i"` instants become point events,
/// and the causal ids come back out of `args`.
pub fn parse_chrome(text: &str) -> Result<Vec<RawEvent>, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("chrome trace: {e:?}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|t| t.as_arr())
        .ok_or("chrome trace: no traceEvents array")?;
    let mut out = Vec::new();
    for v in events {
        let ph = v.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        if ph != "X" && ph != "i" {
            continue; // metadata and other phases carry no trace data
        }
        let name = str_field(v, "name").ok_or("chrome trace: event without name")?;
        let ts_us = v
            .get("ts")
            .and_then(|t| t.as_u64())
            .ok_or("chrome trace: event without ts")?;
        let dur_us = (ph == "X").then(|| v.get("dur").and_then(|d| d.as_u64()).unwrap_or(0));
        let (mut trace, mut span, mut parent) = (None, None, None);
        let mut fields = BTreeMap::new();
        if let Some(args) = v.get("args").and_then(|a| a.as_obj()) {
            for (k, val) in args {
                match k.as_str() {
                    "trace" => trace = val.as_str().map(str::to_string),
                    "span" => span = val.as_str().map(str::to_string),
                    "parent" => parent = val.as_str().map(str::to_string),
                    _ => {
                        fields.insert(k.clone(), val.clone());
                    }
                }
            }
        }
        out.push(RawEvent {
            name,
            ts_us,
            dur_us,
            trace,
            span,
            parent,
            fields,
        });
    }
    Ok(out)
}

/// One reconstructed fetch tree: the root `fetch` span and its three
/// decomposition children.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchRecord {
    /// Trace id (hex).
    pub trace: String,
    /// Root start (µs, virtual time).
    pub start_us: u64,
    /// Root duration: the user-visible PLT (µs).
    pub total_us: u64,
    /// `fetch.detect` duration (µs).
    pub detect_us: u64,
    /// `fetch.circum` duration (µs).
    pub circum_us: u64,
    /// `fetch.transfer` duration (µs).
    pub transfer_us: u64,
    /// Whether the page was ultimately served (`ok` field on the root).
    pub ok: bool,
    /// Fetched URL (root `url` field).
    pub url: String,
    /// Serving transport (root `transport` field).
    pub transport: String,
}

impl FetchRecord {
    /// Sum of the three decomposition legs.
    pub fn children_sum_us(&self) -> u64 {
        self.detect_us + self.circum_us + self.transfer_us
    }

    /// Absolute difference between the children sum and the root PLT.
    pub fn sum_error_us(&self) -> u64 {
        self.children_sum_us().abs_diff(self.total_us)
    }
}

/// Group events by trace id and reconstruct one [`FetchRecord`] per
/// `fetch` root, in deterministic `(start_us, trace)` order.
pub fn fetch_records(events: &[RawEvent]) -> Vec<FetchRecord> {
    let mut by_trace: BTreeMap<&str, FetchRecord> = BTreeMap::new();
    // Roots first, so children always find their record.
    for e in events {
        if e.name != "fetch" || e.dur_us.is_none() {
            continue;
        }
        let Some(trace) = e.trace.as_deref() else {
            continue;
        };
        by_trace.insert(
            trace,
            FetchRecord {
                trace: trace.to_string(),
                start_us: e.ts_us,
                total_us: e.dur_us.unwrap_or(0),
                detect_us: 0,
                circum_us: 0,
                transfer_us: 0,
                ok: e
                    .fields
                    .get("ok")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false),
                url: e
                    .fields
                    .get("url")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string(),
                transport: e
                    .fields
                    .get("transport")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string(),
            },
        );
    }
    for e in events {
        let (Some(trace), Some(dur)) = (e.trace.as_deref(), e.dur_us) else {
            continue;
        };
        let Some(rec) = by_trace.get_mut(trace) else {
            continue;
        };
        match e.name.as_str() {
            "fetch.detect" => rec.detect_us += dur,
            "fetch.circum" => rec.circum_us += dur,
            "fetch.transfer" => rec.transfer_us += dur,
            _ => {}
        }
    }
    let mut recs: Vec<FetchRecord> = by_trace.into_values().collect();
    recs.sort_by(|a, b| (a.start_us, &a.trace).cmp(&(b.start_us, &b.trace)));
    recs
}

/// Fetches whose children do not sum to the root within
/// [`SUM_TOLERANCE_US`] — one description per violation.
pub fn sum_violations(recs: &[FetchRecord]) -> Vec<String> {
    recs.iter()
        .filter(|r| r.sum_error_us() > SUM_TOLERANCE_US)
        .map(|r| {
            format!(
                "trace {}: children sum {}us != root {}us (error {}us)",
                r.trace,
                r.children_sum_us(),
                r.total_us,
                r.sum_error_us()
            )
        })
        .collect()
}

/// Percentile summary over one decomposition leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegStats {
    /// Sample count.
    pub n: usize,
    /// Mean (µs).
    pub mean_us: f64,
    /// Median (µs).
    pub p50_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
}

/// Summarise raw µs samples via the shared [`Histogram`] quantile
/// sketch (log-bucketed: exact below 64 µs, ≤ ~1.6 % above — plenty
/// inside the decomposition table's ms-level resolution).
pub fn leg_stats(samples: &[u64]) -> LegStats {
    if samples.is_empty() {
        return LegStats {
            n: 0,
            mean_us: 0.0,
            p50_us: 0.0,
            p99_us: 0.0,
        };
    }
    let h = Histogram::default();
    for &s in samples {
        h.observe_us(s);
    }
    LegStats {
        n: samples.len(),
        mean_us: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
        p50_us: h.p50_us().unwrap_or(0) as f64,
        p99_us: h.p99_us().unwrap_or(0) as f64,
    }
}

fn ms(us: f64) -> f64 {
    us / 1_000.0
}

/// The PLT-decomposition table: one row per leg (detection,
/// circumvention setup, transfer) plus the total, each with
/// mean/p50/p99 in ms and the leg's share of mean total PLT.
pub fn decomposition_table(recs: &[FetchRecord]) -> String {
    let leg = |f: fn(&FetchRecord) -> u64| -> LegStats {
        leg_stats(&recs.iter().map(f).collect::<Vec<u64>>())
    };
    let detect = leg(|r| r.detect_us);
    let circum = leg(|r| r.circum_us);
    let transfer = leg(|r| r.transfer_us);
    let total = leg(|r| r.total_us);
    let served = recs.iter().filter(|r| r.ok).count();
    let mut out = format!(
        "PLT decomposition ({} fetches, {} served, {} failed)\n",
        recs.len(),
        served,
        recs.len() - served
    );
    out.push_str(&format!(
        "  {:<14}{:>12}{:>12}{:>12}{:>9}\n",
        "leg", "mean(ms)", "p50(ms)", "p99(ms)", "share"
    ));
    for (label, s) in [
        ("detection", detect),
        ("circum setup", circum),
        ("transfer", transfer),
        ("total PLT", total),
    ] {
        let share = if total.mean_us > 0.0 {
            100.0 * s.mean_us / total.mean_us
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<14}{:>12.3}{:>12.3}{:>12.3}{:>8.1}%\n",
            label,
            ms(s.mean_us),
            ms(s.p50_us),
            ms(s.p99_us),
            share
        ));
    }
    out
}

/// Per-fetch waterfalls for the first `limit` fetches: a fixed-width
/// bar per fetch split into `d`/`c`/`t` segments (detection,
/// circumvention setup, transfer) on the fetch's own scale.
pub fn waterfall(recs: &[FetchRecord], limit: usize) -> String {
    const WIDTH: usize = 48;
    let mut out = String::from("Waterfalls (d=detect c=circum-setup t=transfer)\n");
    for r in recs.iter().take(limit) {
        let total = r.total_us.max(1);
        let seg = |us: u64| (us as f64 / total as f64 * WIDTH as f64).round() as usize;
        let (d, c) = (seg(r.detect_us), seg(r.circum_us));
        let t = WIDTH.saturating_sub(d + c);
        let bar: String = "d".repeat(d) + &"c".repeat(c) + &"t".repeat(t);
        out.push_str(&format!(
            "  {} {:<10} {:>10.3}ms [{bar}] {}\n",
            &r.trace,
            r.transport,
            ms(r.total_us as f64),
            if r.ok { "ok" } else { "FAILED" },
        ));
    }
    if recs.len() > limit {
        out.push_str(&format!("  ... {} more fetches\n", recs.len() - limit));
    }
    out
}

/// Baseline-vs-current comparison of one leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegDelta {
    /// Baseline stats.
    pub base: LegStats,
    /// Current stats.
    pub cur: LegStats,
    /// p50 change, percent of baseline (positive = slower).
    pub p50_delta_pct: f64,
    /// p99 change, percent of baseline.
    pub p99_delta_pct: f64,
}

fn delta_pct(base: f64, cur: f64) -> f64 {
    if base > 0.0 {
        (cur - base) / base * 100.0
    } else {
        0.0
    }
}

impl LegDelta {
    fn of(base: LegStats, cur: LegStats) -> LegDelta {
        LegDelta {
            base,
            cur,
            p50_delta_pct: delta_pct(base.p50_us, cur.p50_us),
            p99_delta_pct: delta_pct(base.p99_us, cur.p99_us),
        }
    }
}

/// The regression verdict over total PLT, with per-leg deltas for
/// attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Total-PLT delta — the gating leg.
    pub total: LegDelta,
    /// Per-leg deltas: (label, delta), for the report body.
    pub legs: Vec<(String, LegDelta)>,
    /// Allowed worsening (%) before the gate fails.
    pub threshold_pct: f64,
    /// True when total p50 or p99 worsened beyond the threshold.
    pub regressed: bool,
}

/// Compare current fetches against a baseline. The gate fails when
/// total-PLT p50 *or* p99 is more than `threshold_pct` percent slower
/// than the baseline; per-leg deltas attribute the change.
pub fn compare(base: &[FetchRecord], cur: &[FetchRecord], threshold_pct: f64) -> Verdict {
    let stats = |recs: &[FetchRecord], f: fn(&FetchRecord) -> u64| -> LegStats {
        leg_stats(&recs.iter().map(f).collect::<Vec<u64>>())
    };
    let total = LegDelta::of(stats(base, |r| r.total_us), stats(cur, |r| r.total_us));
    let legs = vec![
        (
            "detection".to_string(),
            LegDelta::of(stats(base, |r| r.detect_us), stats(cur, |r| r.detect_us)),
        ),
        (
            "circum setup".to_string(),
            LegDelta::of(stats(base, |r| r.circum_us), stats(cur, |r| r.circum_us)),
        ),
        (
            "transfer".to_string(),
            LegDelta::of(
                stats(base, |r| r.transfer_us),
                stats(cur, |r| r.transfer_us),
            ),
        ),
    ];
    let regressed = total.p50_delta_pct > threshold_pct || total.p99_delta_pct > threshold_pct;
    Verdict {
        total,
        legs,
        threshold_pct,
        regressed,
    }
}

impl Verdict {
    /// Text rendering of the verdict and per-leg attribution.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Regression gate (threshold {:.1}%): {}\n",
            self.threshold_pct,
            if self.regressed { "FAIL" } else { "PASS" }
        );
        out.push_str(&format!(
            "  {:<14}{:>12}{:>12}{:>9}{:>12}{:>12}{:>9}\n",
            "leg", "base p50", "cur p50", "Δp50", "base p99", "cur p99", "Δp99"
        ));
        let mut rows: Vec<(&str, &LegDelta)> = vec![("total PLT", &self.total)];
        for (label, d) in &self.legs {
            rows.push((label, d));
        }
        for (label, d) in rows {
            out.push_str(&format!(
                "  {:<14}{:>10.3}ms{:>10.3}ms{:>8.1}%{:>10.3}ms{:>10.3}ms{:>8.1}%\n",
                label,
                ms(d.base.p50_us),
                ms(d.cur.p50_us),
                d.p50_delta_pct,
                ms(d.base.p99_us),
                ms(d.cur.p99_us),
                d.p99_delta_pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jsonl_fetch(trace: &str, ts: u64, detect: u64, circum: u64, transfer: u64) -> String {
        let total = detect + circum + transfer;
        let mut lines = Vec::new();
        for (name, off, dur) in [
            ("fetch.detect", 0, detect),
            ("fetch.circum", detect, circum),
            ("fetch.transfer", detect + circum, transfer),
        ] {
            lines.push(format!(
                r#"{{"dur_us":{dur},"event":"{name}","parent":"{trace}","span":"00000000000000aa","trace":"{trace}","ts_us":{}}}"#,
                ts + off
            ));
        }
        lines.push(format!(
            r#"{{"dur_us":{total},"event":"fetch","fields":{{"ok":true,"transport":"tor","url":"http://x/"}},"span":"{trace}","trace":"{trace}","ts_us":{ts}}}"#
        ));
        lines.join("\n") + "\n"
    }

    #[test]
    fn jsonl_roundtrip_reconstructs_fetches() {
        let text = jsonl_fetch("0000000000000001", 100, 10, 20, 30)
            + &jsonl_fetch("0000000000000002", 500, 5, 0, 45);
        let events = parse_jsonl(&text).unwrap();
        let recs = fetch_records(&events);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].detect_us, 10);
        assert_eq!(recs[0].circum_us, 20);
        assert_eq!(recs[0].transfer_us, 30);
        assert_eq!(recs[0].total_us, 60);
        assert_eq!(recs[0].sum_error_us(), 0);
        assert!(recs[0].ok);
        assert_eq!(recs[0].transport, "tor");
        assert!(sum_violations(&recs).is_empty());
    }

    #[test]
    fn chrome_roundtrip_matches_jsonl() {
        // Render the same logical events through the Chrome exporter and
        // check both formats reconstruct identical records.
        use csaw_obs::event::Event;
        use csaw_obs::trace::{SpanId, TraceCtx, TraceId};
        let t = TraceId(0x1234_5678_9abc_def0);
        let ev = |name: &str, ts: u64, dur: u64, parent: Option<u64>| Event {
            ts_us: ts,
            name: name.to_string(),
            dur_us: Some(dur),
            fields: if name == "fetch" {
                vec![
                    ("ok", JsonValue::Bool(true)),
                    ("transport", JsonValue::from("direct")),
                    ("url", JsonValue::from("http://x/")),
                ]
            } else {
                vec![]
            },
            trace: Some(TraceCtx {
                trace: t,
                span: SpanId(0xaa),
                parent: parent.map(SpanId),
            }),
        };
        let events = vec![
            ev("fetch.detect", 0, 7, Some(1)),
            ev("fetch.circum", 7, 0, Some(1)),
            ev("fetch.transfer", 7, 13, Some(1)),
            ev("fetch", 0, 20, None),
        ];
        let chrome = csaw_obs::chrome::render_chrome_trace(&events);
        let parsed = parse_events(&chrome).unwrap();
        let recs = fetch_records(&parsed);
        assert_eq!(recs.len(), 1);
        assert_eq!(
            (recs[0].detect_us, recs[0].circum_us, recs[0].transfer_us),
            (7, 0, 13)
        );
        assert_eq!(recs[0].total_us, 20);
        assert_eq!(recs[0].transport, "direct");
    }

    #[test]
    fn sum_violation_detected_beyond_tolerance() {
        let mut text = jsonl_fetch("0000000000000003", 0, 10, 0, 10);
        // Corrupt the root: claim 25us total against 20us of children.
        text = text.replace(
            r#""dur_us":20,"event":"fetch""#,
            r#""dur_us":25,"event":"fetch""#,
        );
        let recs = fetch_records(&parse_jsonl(&text).unwrap());
        assert_eq!(recs[0].sum_error_us(), 5);
        assert_eq!(sum_violations(&recs).len(), 1);
    }

    #[test]
    fn self_comparison_passes_and_slowdown_fails() {
        let text: String = (0..20u64)
            .map(|i| jsonl_fetch(&format!("{:016x}", i + 1), i * 100, 10, 5, 100 + i))
            .collect();
        let recs = fetch_records(&parse_jsonl(&text).unwrap());
        let same = compare(&recs, &recs, 10.0);
        assert!(!same.regressed, "{}", same.render());

        // Inject a 50% slowdown on every total.
        let slow: Vec<FetchRecord> = recs
            .iter()
            .map(|r| FetchRecord {
                total_us: r.total_us * 3 / 2,
                transfer_us: r.transfer_us + r.total_us / 2,
                ..r.clone()
            })
            .collect();
        let v = compare(&recs, &slow, 10.0);
        assert!(v.regressed, "{}", v.render());
        assert!(v.total.p50_delta_pct > 40.0);
        // Attribution: the transfer leg carries the regression.
        let transfer = &v.legs.iter().find(|(l, _)| l == "transfer").unwrap().1;
        assert!(transfer.p50_delta_pct > 40.0);
    }

    #[test]
    fn tables_render_without_panicking_on_empty_input() {
        let recs: Vec<FetchRecord> = Vec::new();
        assert!(decomposition_table(&recs).contains("0 fetches"));
        assert!(waterfall(&recs, 5).contains("Waterfalls"));
        let v = compare(&recs, &recs, 10.0);
        assert!(!v.regressed);
    }
}
