//! The machine-readable benchmark scorecard (`BENCH_<seed>.json`).
//!
//! One JSON document per benchmarked run, replacing the free-text
//! `bench_output.txt` as the repo's perf source of truth. The schema is
//! split on the axis that matters for gating:
//!
//! - `"deterministic"` — counts that are a pure function of the seed
//!   and config (accepted/rejected/record totals, per-family lock
//!   acquisition counts, allocs per report). Two same-seed runs of the
//!   same build must produce **byte-identical** bytes here; `perf-report
//!   --fingerprint` prints exactly this section for the CI determinism
//!   check.
//! - `"timing"` — wall-clock measurements (throughput, p50/p99,
//!   wait/hold sums, micro-bench ns/iter). Run-to-run variance is
//!   expected; `perf-report --baseline` compares these within tolerance
//!   bands instead of byte-for-byte.
//!
//! [`LockProbe`] is the bridge from the contention layer: it resolves
//! one `lock.<family>.*` set of handles from a registry and reads
//! totals, so an experiment can bracket a phase with two reads and
//! attribute the delta to that phase.

use csaw_obs::json::JsonValue;
use csaw_obs::metrics::{Counter, Histogram, Registry};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Schema version stamped into every scorecard.
pub const SCHEMA: u64 = 1;

/// The conventional scorecard filename for a seed (`BENCH_seed1.json`
/// for seed 1 — the checked-in CI baseline uses exactly this name).
pub fn default_path(seed: u64) -> PathBuf {
    PathBuf::from(format!("BENCH_seed{seed}.json"))
}

/// One benchmark scorecard: identity plus the two sections.
#[derive(Debug, Clone)]
pub struct Scorecard {
    /// Which harness produced it (`"exp_scale"`, `"exp_all"`).
    pub experiment: String,
    /// The run seed.
    pub seed: u64,
    /// Seed-determined counts; byte-identical across same-seed runs.
    pub deterministic: JsonValue,
    /// Wall-clock measurements; compared with tolerance bands.
    pub timing: JsonValue,
    /// Windowed-health summary (window count, SLO rules violated) from
    /// the run's telemetry timeline. Advisory context for humans and
    /// dashboards — deliberately excluded from
    /// [`Scorecard::fingerprint`], and omitted from the document when
    /// empty, so pre-existing cards and health-less runs are unchanged.
    pub health: JsonValue,
}

impl Scorecard {
    /// An empty scorecard for `experiment` at `seed`.
    pub fn new(experiment: impl Into<String>, seed: u64) -> Scorecard {
        Scorecard {
            experiment: experiment.into(),
            seed,
            deterministic: JsonValue::obj(),
            timing: JsonValue::obj(),
            health: JsonValue::obj(),
        }
    }

    /// The full document.
    pub fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::obj();
        v.set("schema", SCHEMA);
        v.set("experiment", self.experiment.as_str());
        v.set("seed", self.seed);
        v.set("deterministic", self.deterministic.clone());
        v.set("timing", self.timing.clone());
        if matches!(&self.health, JsonValue::Obj(m) if !m.is_empty()) {
            v.set("health", self.health.clone());
        }
        v
    }

    /// The canonical determinism fingerprint: identity + the
    /// deterministic section, pretty-printed (keys are BTreeMap-sorted,
    /// so equal content means equal bytes).
    pub fn fingerprint(&self) -> String {
        let mut v = JsonValue::obj();
        v.set("schema", SCHEMA);
        v.set("experiment", self.experiment.as_str());
        v.set("seed", self.seed);
        v.set("deterministic", self.deterministic.clone());
        v.to_string_pretty()
    }

    /// Parse a scorecard document.
    pub fn parse(text: &str) -> Result<Scorecard, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("not JSON: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema} (expected {SCHEMA})"));
        }
        Ok(Scorecard {
            experiment: v
                .get("experiment")
                .and_then(JsonValue::as_str)
                .ok_or("missing experiment")?
                .to_string(),
            seed: v
                .get("seed")
                .and_then(JsonValue::as_u64)
                .ok_or("missing seed")?,
            deterministic: v
                .get("deterministic")
                .cloned()
                .unwrap_or_else(JsonValue::obj),
            timing: v.get("timing").cloned().unwrap_or_else(JsonValue::obj),
            health: v.get("health").cloned().unwrap_or_else(JsonValue::obj),
        })
    }

    /// Load from a file.
    pub fn load(path: &Path) -> Result<Scorecard, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Scorecard::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write (pretty, trailing newline) to a file.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty() + "\n")
    }

    /// Merge micro-bench results (`name → ns/iter`) into
    /// `timing.micro`, preserving entries for benches not in `results`
    /// (so a filtered `--bench` run updates only what it measured).
    pub fn set_micro(&mut self, results: &[(String, u64)]) {
        let mut micro = self
            .timing
            .get("micro")
            .cloned()
            .unwrap_or_else(JsonValue::obj);
        for (name, ns) in results {
            micro.set(name, *ns);
        }
        self.timing.set("micro", micro);
    }

    /// Load `path` if it exists (any experiment), else start a fresh
    /// `experiment` card, merge `results` into `timing.micro`, write
    /// back. This is how the microbench harness contributes to the same
    /// `BENCH_<seed>.json` the scale run writes.
    pub fn merge_micro_file(
        path: &Path,
        experiment: &str,
        seed: u64,
        results: &[(String, u64)],
    ) -> Result<(), String> {
        let mut card = if path.exists() {
            Scorecard::load(path)?
        } else {
            Scorecard::new(experiment, seed)
        };
        card.set_micro(results);
        card.write(path)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// 64-bit FNV-1a digest of `text`, hex-encoded — a compact,
/// deterministic identity for a rendered experiment block. `exp_all`
/// stamps one per experiment into its scorecard's deterministic
/// section, so any nondeterminism in any experiment's stdout shows up
/// as a fingerprint mismatch in CI.
pub fn digest64(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Totals for one lock family at a point in time (or a delta between
/// two points).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LockTotals {
    /// Acquisitions.
    pub acquires: u64,
    /// Acquisitions that found the lock held.
    pub contended: u64,
    /// Summed wait microseconds.
    pub wait_us: u64,
    /// Summed hold microseconds.
    pub hold_us: u64,
}

impl LockTotals {
    /// The growth from `earlier` to `self`.
    pub fn delta_since(&self, earlier: &LockTotals) -> LockTotals {
        LockTotals {
            acquires: self.acquires.saturating_sub(earlier.acquires),
            contended: self.contended.saturating_sub(earlier.contended),
            wait_us: self.wait_us.saturating_sub(earlier.wait_us),
            hold_us: self.hold_us.saturating_sub(earlier.hold_us),
        }
    }

    /// True when the family was never touched.
    pub fn is_zero(&self) -> bool {
        *self == LockTotals::default()
    }
}

/// Pre-resolved read handles on one `lock.<family>.*` metric set.
#[derive(Debug)]
pub struct LockProbe {
    /// The family name (without the `lock.` prefix).
    pub name: String,
    acquires: Arc<Counter>,
    contended: Arc<Counter>,
    wait_us: Arc<Histogram>,
    hold_us: Arc<Histogram>,
}

impl LockProbe {
    /// Resolve the probe against `reg` (registers zeroed metrics if the
    /// family does not exist yet — harmless for perf-enabled runs,
    /// which is the only time probes are constructed).
    pub fn new(reg: &Registry, name: &str) -> LockProbe {
        LockProbe {
            name: name.to_string(),
            acquires: reg.counter(&format!("lock.{name}.acquires")),
            contended: reg.counter(&format!("lock.{name}.contended")),
            wait_us: reg.histogram(&format!("lock.{name}.wait_us")),
            hold_us: reg.histogram(&format!("lock.{name}.hold_us")),
        }
    }

    /// Current totals.
    pub fn totals(&self) -> LockTotals {
        LockTotals {
            acquires: self.acquires.get(),
            contended: self.contended.get(),
            wait_us: self.wait_us.sum_us(),
            hold_us: self.hold_us.sum_us(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_fingerprint_stability() {
        let mut card = Scorecard::new("exp_scale", 1);
        card.deterministic.set("accepted", 100u64);
        card.timing.set("reports_per_sec", 123.5);
        let text = card.to_json().to_string_pretty();
        let back = Scorecard::parse(&text).expect("roundtrip");
        assert_eq!(back.experiment, "exp_scale");
        assert_eq!(back.seed, 1);
        assert_eq!(back.fingerprint(), card.fingerprint());
        assert!(
            !card.fingerprint().contains("reports_per_sec"),
            "timing must stay out of the fingerprint"
        );
    }

    #[test]
    fn health_roundtrips_but_stays_out_of_fingerprint() {
        let mut card = Scorecard::new("exp_scale", 1);
        card.deterministic.set("accepted", 100u64);
        assert!(
            !card.to_json().to_string_pretty().contains("health"),
            "empty health must be omitted from the document"
        );
        let clean_fp = card.fingerprint();
        card.health.set("violations", 2u64);
        assert_eq!(
            card.fingerprint(),
            clean_fp,
            "health must stay out of the fingerprint"
        );
        let back = Scorecard::parse(&card.to_json().to_string_pretty()).expect("roundtrip");
        assert_eq!(
            back.health.get("violations").and_then(JsonValue::as_u64),
            Some(2)
        );
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_schema() {
        assert!(Scorecard::parse("not json").is_err());
        assert!(Scorecard::parse("{\"schema\":99}").is_err());
        assert!(
            Scorecard::parse("{\"schema\":1}").is_err(),
            "missing identity"
        );
    }

    #[test]
    fn micro_merge_preserves_unmeasured_entries() {
        let mut card = Scorecard::new("exp_scale", 1);
        card.set_micro(&[("url_parse".into(), 200), ("vote_tally".into(), 900)]);
        card.set_micro(&[("url_parse".into(), 210)]);
        let micro = card.timing.get("micro").expect("micro section");
        assert_eq!(
            micro.get("url_parse").and_then(JsonValue::as_u64),
            Some(210)
        );
        assert_eq!(
            micro.get("vote_tally").and_then(JsonValue::as_u64),
            Some(900)
        );
    }

    #[test]
    fn digest64_is_stable_and_content_sensitive() {
        assert_eq!(digest64(""), "cbf29ce484222325");
        assert_eq!(digest64("a"), digest64("a"));
        assert_ne!(digest64("a"), digest64("b"));
    }

    #[test]
    fn lock_probe_reads_contention_families() {
        let reg = Registry::new();
        reg.counter("lock.x.acquires").add(5);
        reg.histogram("lock.x.wait_us").observe_us(40);
        let p = LockProbe::new(&reg, "x");
        let t0 = LockTotals::default();
        let t = p.totals().delta_since(&t0);
        assert_eq!(t.acquires, 5);
        assert_eq!(t.wait_us, 40);
        assert!(!t.is_zero());
    }
}
