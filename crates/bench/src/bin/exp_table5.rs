//! Regenerate Table 5 (blocking detection times).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::table5::run(cli.seed).render()
    );
    cli.finish();
}
