//! Regenerate Table 5 (blocking detection times).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::table5::run_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
