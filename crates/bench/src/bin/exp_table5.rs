//! Regenerate Table 5 (blocking detection times).
fn main() {
    println!("{}", csaw_bench::experiments::table5::run(1).render());
}
