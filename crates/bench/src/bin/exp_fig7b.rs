//! Regenerate Figure 7b (C-Saw vs Lantern vs Tor, unblocked page).
fn main() {
    println!("{}", csaw_bench::experiments::fig7::run_7b(1).render());
}
