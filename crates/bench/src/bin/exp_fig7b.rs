//! Regenerate Figure 7b (C-Saw vs Lantern vs Tor, unblocked page).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig7::run_7b_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
