//! Regenerate Figure 1a (HTTPS/DF vs static proxies).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig1::run_1a_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
