//! Regenerate Figure 1a (HTTPS/DF vs static proxies).
fn main() {
    println!("{}", csaw_bench::experiments::fig1::run_1a(1).render());
}
