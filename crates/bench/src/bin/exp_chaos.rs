//! Fault-injection sweep over the report upload pipeline.
//!
//! ```text
//! exp_chaos [--clients N] [--urls N] [--rounds N] [--fault-rates 0.0,0.3]
//!           [--min-delivery F]
//! exp_chaos --split-brain REGIONS [--clients N] [--urls N] [--bench-out PATH]
//! ```
//!
//! Without `--split-brain`, sweeps injected store/wire fault rates and
//! checks delivery. With `--split-brain REGIONS`, runs the replicated
//! global DB instead: a leader ships its WAL to `REGIONS` per-region
//! dbserver replicas, a partition cuts region r0 mid-ingest, and after
//! heal every replica must converge to the leader's exact state
//! fingerprint (see `csaw_bench::experiments::splitbrain`).
//!
//! Exit status:
//!
//! - `0` — all rows accounted, delivery ratio at or above the bound
//!   (and, under `--split-brain`, every replica converged);
//! - `4` — silent loss (a client's accounting identity broke, a
//!   receipt failed to reconcile, or the store's record count
//!   disagrees with the posted counters);
//! - `5` — delivery ratio fell below `--min-delivery` (default 1.0:
//!   with the default drain horizon every report must land);
//! - `6` — a replica failed to reach the leader's fingerprint after
//!   the partition healed.
//!
//! The CI chaos jobs run both modes twice and diff the stdout: same
//! seed ⇒ byte-identical output.

use csaw_bench::experiments::chaos::{self, ChaosConfig};
use csaw_bench::experiments::splitbrain::{self, SplitBrainConfig};
use csaw_bench::healthreport::{self, HealthInput};
use csaw_obs::slo::SloSet;
use std::sync::Arc;

fn numeric<T: std::str::FromStr>(
    extras: &std::collections::HashMap<String, String>,
    flag: &str,
    default: T,
) -> T {
    match extras.get(flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("exp_chaos: bad value for {flag}: {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let (cli, extras) = csaw_bench::cli::ExpCli::parse_with_extras(&[
        ("--clients", "clients per fault rate (default 6)"),
        ("--urls", "unique blocked URLs per client (default 8)"),
        ("--rounds", "post opportunities per client (default 24)"),
        (
            "--fault-rates",
            "comma list of rates (default 0.0,0.1,0.3,0.5)",
        ),
        (
            "--min-delivery",
            "fail below this delivery ratio (default 1.0)",
        ),
        (
            "--split-brain",
            "run the replica convergence experiment over N regions",
        ),
        (
            "--bench-out",
            "split-brain scorecard path ('none' disables; default none)",
        ),
    ]);

    if extras.contains_key("--split-brain") {
        run_split_brain(cli, &extras);
        return;
    }

    let mut cfg = ChaosConfig {
        clients: numeric(&extras, "--clients", ChaosConfig::default().clients),
        urls_per_client: numeric(&extras, "--urls", ChaosConfig::default().urls_per_client),
        drain_rounds: numeric(&extras, "--rounds", ChaosConfig::default().drain_rounds),
        ..ChaosConfig::default()
    };
    if let Some(list) = extras.get("--fault-rates") {
        cfg.fault_rates = list
            .split(',')
            .map(|r| {
                r.trim().parse().unwrap_or_else(|_| {
                    eprintln!("exp_chaos: bad --fault-rates entry {r:?}");
                    std::process::exit(2);
                })
            })
            .collect();
        if cfg.fault_rates.is_empty() {
            eprintln!("exp_chaos: --fault-rates needs at least one rate");
            std::process::exit(2);
        }
    }
    let min_delivery: f64 = numeric(&extras, "--min-delivery", 1.0);

    // Virtual-hour health windows with the full C-Saw SLO set: the
    // chaos sweep advances the shared clock, so delivery-ratio and
    // staleness timelines come out per virtual hour of the run.
    cli.default_window(3_600.0, Arc::new(SloSet::csaw_default()));

    let result = chaos::run_jobs(cli.seed, &cfg, cli.jobs);
    println!("{}", result.render());
    cli.finish();

    if result.silent_loss() {
        eprintln!("exp_chaos: SILENT LOSS detected — accounting identity broken");
        std::process::exit(4);
    }
    if let Some(row) = result
        .rows
        .iter()
        .find(|r| r.delivery_ratio < min_delivery - 1e-9)
    {
        eprintln!(
            "exp_chaos: delivery ratio {:.3} at fault rate {:.2} below bound {:.3}",
            row.delivery_ratio, row.fault_rate, min_delivery
        );
        std::process::exit(5);
    }
}

fn run_split_brain(
    cli: csaw_bench::cli::ExpCli,
    extras: &std::collections::HashMap<String, String>,
) {
    let regions: usize = numeric(extras, "--split-brain", SplitBrainConfig::default().regions);
    if regions == 0 {
        eprintln!("exp_chaos: --split-brain needs at least one region");
        std::process::exit(2);
    }
    let cfg = SplitBrainConfig {
        clients: numeric(extras, "--clients", SplitBrainConfig::default().clients),
        urls_per_client: numeric(extras, "--urls", SplitBrainConfig::default().urls_per_client),
        regions,
        ..SplitBrainConfig::default()
    };

    // Same virtual-hour windows, but with the replica-staleness rule
    // on top: the partitioned scenario must trip it.
    cli.default_window(3_600.0, Arc::new(splitbrain::slo_set()));

    let result = splitbrain::run_jobs(cli.seed, &cfg, cli.jobs);
    println!("{}", result.render());

    match extras.get("--bench-out").map(String::as_str) {
        None | Some("none") => {}
        Some(path) => {
            let mut card = result.scorecard(&cfg, cli.seed);
            // Close the open telemetry window so the scorecard's health
            // section sees the run's series (finish() flushes again).
            cli.ctx().flush_timeline();
            let timeline = &cli.ctx().timeline;
            if timeline.enabled() {
                card.health = healthreport::health_json(&HealthInput {
                    frames: timeline.recent_frames(),
                    violations: timeline.violations(),
                });
            }
            let path = std::path::PathBuf::from(path);
            if let Err(e) = card.write(&path) {
                eprintln!("exp_chaos: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("exp_chaos: scorecard -> {}", path.display());
        }
    }
    cli.finish();

    if result.silent_loss() {
        eprintln!("exp_chaos: SILENT LOSS detected — a report vanished en route");
        std::process::exit(4);
    }
    if result.not_converged() {
        eprintln!("exp_chaos: replicas did NOT converge after the partition healed");
        std::process::exit(6);
    }
}
