//! Fault-injection sweep over the report upload pipeline.
//!
//! ```text
//! exp_chaos [--clients N] [--urls N] [--rounds N] [--fault-rates 0.0,0.3]
//!           [--min-delivery F]
//! ```
//!
//! Exit status:
//!
//! - `0` — all rows accounted, delivery ratio at or above the bound;
//! - `4` — silent loss (a client's accounting identity broke, or the
//!   store's record count disagrees with the posted counters);
//! - `5` — delivery ratio fell below `--min-delivery` (default 1.0:
//!   with the default drain horizon every report must land).
//!
//! The CI chaos job runs this twice per fault rate and diffs the
//! stdout: same seed ⇒ byte-identical output.

use csaw_bench::experiments::chaos::{self, ChaosConfig};
use csaw_obs::slo::SloSet;
use std::sync::Arc;

fn numeric<T: std::str::FromStr>(
    extras: &std::collections::HashMap<String, String>,
    flag: &str,
    default: T,
) -> T {
    match extras.get(flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("exp_chaos: bad value for {flag}: {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let (cli, extras) = csaw_bench::cli::ExpCli::parse_with_extras(&[
        ("--clients", "clients per fault rate (default 6)"),
        ("--urls", "unique blocked URLs per client (default 8)"),
        ("--rounds", "post opportunities per client (default 24)"),
        (
            "--fault-rates",
            "comma list of rates (default 0.0,0.1,0.3,0.5)",
        ),
        (
            "--min-delivery",
            "fail below this delivery ratio (default 1.0)",
        ),
    ]);
    let mut cfg = ChaosConfig {
        clients: numeric(&extras, "--clients", ChaosConfig::default().clients),
        urls_per_client: numeric(&extras, "--urls", ChaosConfig::default().urls_per_client),
        drain_rounds: numeric(&extras, "--rounds", ChaosConfig::default().drain_rounds),
        ..ChaosConfig::default()
    };
    if let Some(list) = extras.get("--fault-rates") {
        cfg.fault_rates = list
            .split(',')
            .map(|r| {
                r.trim().parse().unwrap_or_else(|_| {
                    eprintln!("exp_chaos: bad --fault-rates entry {r:?}");
                    std::process::exit(2);
                })
            })
            .collect();
        if cfg.fault_rates.is_empty() {
            eprintln!("exp_chaos: --fault-rates needs at least one rate");
            std::process::exit(2);
        }
    }
    let min_delivery: f64 = numeric(&extras, "--min-delivery", 1.0);

    // Virtual-hour health windows with the full C-Saw SLO set: the
    // chaos sweep advances the shared clock, so delivery-ratio and
    // staleness timelines come out per virtual hour of the run.
    cli.default_window(3_600.0, Arc::new(SloSet::csaw_default()));

    let result = chaos::run_jobs(cli.seed, &cfg, cli.jobs);
    println!("{}", result.render());
    cli.finish();

    if result.silent_loss() {
        eprintln!("exp_chaos: SILENT LOSS detected — accounting identity broken");
        std::process::exit(4);
    }
    if let Some(row) = result
        .rows
        .iter()
        .find(|r| r.delivery_ratio < min_delivery - 1e-9)
    {
        eprintln!(
            "exp_chaos: delivery ratio {:.3} at fault rate {:.2} below bound {:.3}",
            row.delivery_ratio, row.fault_rate, min_delivery
        );
        std::process::exit(5);
    }
}
