//! Regenerate Table 6 (revalidation probability p vs median PLT).
fn main() {
    println!("{}", csaw_bench::experiments::table6::run(1).render());
}
