//! Regenerate Table 6 (revalidation probability p vs median PLT).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::table6::run_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
