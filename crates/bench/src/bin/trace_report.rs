//! `trace-report`: analyse `--trace-out` files and gate on regressions.
//!
//! ```text
//! usage: trace-report TRACE [--baseline TRACE] [--max-regress-pct PCT]
//!                     [--waterfall N]
//!
//!   TRACE                a --trace-out file (.json Chrome trace or JSONL)
//!   --baseline TRACE     compare against this trace; exit 3 when total-PLT
//!                        p50 or p99 regresses past the threshold
//!   --max-regress-pct P  allowed worsening before the gate fails (default 10)
//!   --waterfall N        per-fetch waterfalls to print (default 8)
//! ```
//!
//! Exit codes: 0 healthy, 1 malformed trace (a fetch's children do not
//! sum to its root PLT within 1 µs, or no fetch trees at all),
//! 2 usage/IO error, 3 regression past the threshold.

use csaw_bench::tracereport::{
    compare, decomposition_table, fetch_records, parse_events, sum_violations, waterfall,
    FetchRecord,
};
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: trace-report TRACE [--baseline TRACE] \
                     [--max-regress-pct PCT] [--waterfall N]";

fn die(msg: &str) -> ! {
    eprintln!("trace-report: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn load(path: &Path) -> Vec<FetchRecord> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
    let events = parse_events(&text)
        .unwrap_or_else(|e| die(&format!("cannot parse {}: {e}", path.display())));
    fetch_records(&events)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut trace: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut max_regress_pct = 10.0f64;
    let mut waterfalls = 8usize;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::to_string)
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--max-regress-pct" => {
                let v = value("--max-regress-pct");
                max_regress_pct = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad --max-regress-pct {v:?}")));
            }
            "--waterfall" => {
                let v = value("--waterfall");
                waterfalls = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad --waterfall {v:?}")));
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other:?}")),
            other if trace.is_none() => trace = Some(PathBuf::from(other)),
            other => die(&format!("unexpected argument {other:?}")),
        }
    }
    let trace = trace.unwrap_or_else(|| die("no trace file given"));
    let recs = load(&trace);

    println!("trace-report: {} ({} fetches)", trace.display(), recs.len());
    if recs.is_empty() {
        eprintln!("trace-report: no fetch span trees found (was the run traced?)");
        std::process::exit(1);
    }
    println!();
    println!("{}", decomposition_table(&recs));
    println!("{}", waterfall(&recs, waterfalls));

    let violations = sum_violations(&recs);
    if !violations.is_empty() {
        eprintln!(
            "trace-report: MALFORMED — {} fetch tree(s) whose children do not sum to the root PLT:",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!(
        "All {} fetch trees sum exactly (children == root PLT within 1us).",
        recs.len()
    );

    if let Some(base_path) = baseline {
        let base = load(&base_path);
        if base.is_empty() {
            eprintln!(
                "trace-report: baseline {} has no fetch trees",
                base_path.display()
            );
            std::process::exit(1);
        }
        let verdict = compare(&base, &recs, max_regress_pct);
        println!();
        println!("{}", verdict.render());
        if verdict.regressed {
            std::process::exit(3);
        }
    }
}
