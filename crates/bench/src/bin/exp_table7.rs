//! Regenerate Table 7 (the 123-user pilot deployment study).
fn main() {
    println!("{}", csaw_bench::experiments::table7::run(1, 123).render());
}
