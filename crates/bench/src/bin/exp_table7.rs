//! Regenerate Table 7 (the 123-user pilot deployment study).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::table7::run(cli.seed, 123).render()
    );
    cli.finish();
}
