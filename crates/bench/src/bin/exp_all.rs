//! Run every experiment and print the full paper-vs-measured report.
//! `cargo run --release -p csaw-bench --bin exp_all` regenerates the
//! numbers recorded in EXPERIMENTS.md.
use csaw_bench::experiments as e;

fn main() {
    let seed = 1;
    println!("=== C-Saw reproduction: full experiment sweep (seed {seed}) ===\n");
    println!("{}", e::table1::run(seed).render());
    println!("{}", e::fig1::run_1a(seed).render());
    println!("{}", e::fig1::run_1b(seed).render());
    println!("{}", e::fig1::run_1c(seed).render());
    println!("{}", e::table2::run(seed).render());
    println!("{}", e::fig2::run(seed).render());
    println!("{}", e::table5::run(seed).render());
    println!("{}", e::fig5::run_5a(seed).render());
    println!("{}", e::fig5::run_5b(seed).render());
    println!("{}", e::fig5::run_5c(seed).render());
    println!("{}", e::fig6::run_6a(seed).render());
    println!("{}", e::fig6::run_6b(seed).render());
    println!("{}", e::table6::run(seed).render());
    println!("{}", e::fig7::run_7a(seed).render());
    println!("{}", e::fig7::run_7b(seed).render());
    println!("{}", e::fig7::run_7c(seed).render());
    println!("{}", e::table7::run(seed, 123).render());
    println!("{}", e::wild::run(seed).render());
    println!("--- extensions (§8 future-work questions) ---\n");
    println!("{}", e::datausage::run(seed).render());
    println!("{}", e::ablation_explore::run(seed).render());
    println!("{}", e::fingerprint::run(seed).render());
    println!("{}", e::nonweb::run(seed).render());
    println!("{}", e::propagation::run(seed).render());
}
