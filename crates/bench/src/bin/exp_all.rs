//! Run every experiment and print the full paper-vs-measured report.
//!
//! `cargo run --release -p csaw-bench --bin exp_all -- --jobs 0`
//! regenerates the numbers recorded in EXPERIMENTS.md. Each experiment's
//! independent trials fan out across `--jobs` workers through
//! [`csaw_bench::runner`]; stdout is byte-identical for every job count.
//! Experiments with no parallel decomposition (table7, fig6b,
//! propagation) run as one-trial experiments through the same runner.
//!
//! Besides the stdout report, the binary records per-experiment wall
//! timings in `<out-dir>/<seed>/summary.json` (`--out-dir` defaults to
//! `runs`). Timings are wall-clock and therefore *not* deterministic —
//! they live in the JSON artifact and on stderr, never in stdout.

use csaw_bench::experiments as e;
use csaw_bench::runner::{self, single_trial};
use csaw_obs::event::progress;
use std::time::Instant;

type Exp = (&'static str, fn(u64, usize) -> String);

/// The paper experiments, in paper order.
const EXPERIMENTS: &[Exp] = &[
    ("table1", |s, j| e::table1::run_jobs(s, j).render()),
    ("fig1a", |s, j| e::fig1::run_1a_jobs(s, j).render()),
    ("fig1b", |s, j| e::fig1::run_1b_jobs(s, j).render()),
    ("fig1c", |s, j| e::fig1::run_1c_jobs(s, j).render()),
    ("table2", |s, j| e::table2::run_jobs(s, j).render()),
    ("fig2", |s, j| e::fig2::run_jobs(s, j).render()),
    ("table5", |s, j| e::table5::run_jobs(s, j).render()),
    ("fig5a", |s, j| e::fig5::run_5a_jobs(s, j).render()),
    ("fig5b", |s, j| e::fig5::run_5b_jobs(s, j).render()),
    ("fig5c", |s, j| e::fig5::run_5c_jobs(s, j).render()),
    ("fig6a", |s, j| e::fig6::run_6a_jobs(s, j).render()),
    ("fig6b", |s, j| {
        runner::run(&single_trial("fig6b", s, e::fig6::run_6b), j).render()
    }),
    ("table6", |s, j| e::table6::run_jobs(s, j).render()),
    ("fig7a", |s, j| e::fig7::run_7a_jobs(s, j).render()),
    ("fig7b", |s, j| e::fig7::run_7b_jobs(s, j).render()),
    ("fig7c", |s, j| e::fig7::run_7c_jobs(s, j).render()),
    ("table7", |s, j| {
        runner::run(&single_trial("table7", s, |s| e::table7::run(s, 123)), j).render()
    }),
    ("wild", |s, j| e::wild::run_jobs(s, j).render()),
];

/// The §8 future-work extensions.
const EXTENSIONS: &[Exp] = &[
    ("datausage", |s, j| e::datausage::run_jobs(s, j).render()),
    ("ablation_explore", |s, j| {
        e::ablation_explore::run_jobs(s, j).render()
    }),
    ("fingerprint", |s, j| {
        e::fingerprint::run_jobs(s, j).render()
    }),
    ("nonweb", |s, j| e::nonweb::run_jobs(s, j).render()),
    ("propagation", |s, j| {
        runner::run(&single_trial("propagation", s, e::propagation::run), j).render()
    }),
];

fn main() {
    let (cli, extras) = csaw_bench::cli::ExpCli::parse_with_extras(&[(
        "--out-dir",
        "directory for the <seed>/summary.json artifact (default runs)",
    )]);
    let out_dir = std::path::PathBuf::from(
        extras
            .get("--out-dir")
            .map(String::as_str)
            .unwrap_or("runs"),
    );
    let seed = cli.seed;
    let jobs = cli.jobs;
    let started = Instant::now();
    let mut timings: Vec<(&str, f64)> = Vec::new();

    println!("=== C-Saw reproduction: full experiment sweep (seed {seed}) ===\n");
    for (name, run) in EXPERIMENTS {
        progress(&format!("running {name}"));
        let t0 = Instant::now();
        println!("{}", run(seed, jobs));
        timings.push((name, t0.elapsed().as_secs_f64()));
    }
    println!("--- extensions (§8 future-work questions) ---\n");
    for (name, run) in EXTENSIONS {
        progress(&format!("running {name}"));
        let t0 = Instant::now();
        println!("{}", run(seed, jobs));
        timings.push((name, t0.elapsed().as_secs_f64()));
    }
    let total_s = started.elapsed().as_secs_f64();

    let dir = out_dir.join(seed.to_string());
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("exp_all: cannot create {}: {err}", dir.display());
        std::process::exit(1);
    }
    let mut json = format!(
        "{{\n  \"seed\": {seed},\n  \"jobs\": {jobs},\n  \"total_wall_s\": {total_s:.3},\n  \"experiments\": [\n"
    );
    for (i, (name, wall_s)) in timings.iter().enumerate() {
        let sep = if i + 1 < timings.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_s\": {wall_s:.3}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join("summary.json");
    if let Err(err) = std::fs::write(&path, json) {
        eprintln!("exp_all: cannot write {}: {err}", path.display());
        std::process::exit(1);
    }

    eprintln!("exp_all: per-experiment wall timings (jobs={jobs}):");
    for (name, wall_s) in &timings {
        eprintln!("  {name:<18}{wall_s:>8.2}s");
    }
    eprintln!("  {:<18}{total_s:>8.2}s", "total");
    eprintln!("exp_all: summary -> {}", path.display());
    cli.finish();
}
