//! Run every experiment and print the full paper-vs-measured report.
//! `cargo run --release -p csaw-bench --bin exp_all` regenerates the
//! numbers recorded in EXPERIMENTS.md.
use csaw_bench::experiments as e;
use csaw_obs::event::progress;

fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    let seed = cli.seed;
    type Exp = (&'static str, fn(u64) -> String);
    let experiments: &[Exp] = &[
        ("table1", |s| e::table1::run(s).render()),
        ("fig1a", |s| e::fig1::run_1a(s).render()),
        ("fig1b", |s| e::fig1::run_1b(s).render()),
        ("fig1c", |s| e::fig1::run_1c(s).render()),
        ("table2", |s| e::table2::run(s).render()),
        ("fig2", |s| e::fig2::run(s).render()),
        ("table5", |s| e::table5::run(s).render()),
        ("fig5a", |s| e::fig5::run_5a(s).render()),
        ("fig5b", |s| e::fig5::run_5b(s).render()),
        ("fig5c", |s| e::fig5::run_5c(s).render()),
        ("fig6a", |s| e::fig6::run_6a(s).render()),
        ("fig6b", |s| e::fig6::run_6b(s).render()),
        ("table6", |s| e::table6::run(s).render()),
        ("fig7a", |s| e::fig7::run_7a(s).render()),
        ("fig7b", |s| e::fig7::run_7b(s).render()),
        ("fig7c", |s| e::fig7::run_7c(s).render()),
        ("table7", |s| e::table7::run(s, 123).render()),
        ("wild", |s| e::wild::run(s).render()),
    ];
    let extensions: &[Exp] = &[
        ("datausage", |s| e::datausage::run(s).render()),
        ("ablation_explore", |s| e::ablation_explore::run(s).render()),
        ("fingerprint", |s| e::fingerprint::run(s).render()),
        ("nonweb", |s| e::nonweb::run(s).render()),
        ("propagation", |s| e::propagation::run(s).render()),
    ];
    println!("=== C-Saw reproduction: full experiment sweep (seed {seed}) ===\n");
    for (name, run) in experiments {
        progress(&format!("running {name}"));
        println!("{}", run(seed));
    }
    println!("--- extensions (§8 future-work questions) ---\n");
    for (name, run) in extensions {
        progress(&format!("running {name}"));
        println!("{}", run(seed));
    }
    cli.finish();
}
