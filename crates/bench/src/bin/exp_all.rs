//! Run every experiment and print the full paper-vs-measured report.
//!
//! `cargo run --release -p csaw-bench --bin exp_all -- --jobs 0`
//! regenerates the numbers recorded in EXPERIMENTS.md. Each experiment's
//! independent trials fan out across `--jobs` workers through
//! [`csaw_bench::runner`]; stdout is byte-identical for every job count.
//! Experiments with no parallel decomposition (table7, fig6b,
//! propagation) run as one-trial experiments through the same runner.
//!
//! Besides the stdout report, the binary writes three artifacts under
//! `<out-dir>/<seed>/` (`--out-dir` defaults to `runs`):
//!
//! - `summary.json` — per-experiment wall timings (not deterministic;
//!   they also go to stderr, never stdout);
//! - `metrics.json` — per-experiment metrics snapshots, taken from a
//!   child observability scope installed around each experiment (the
//!   process-wide `--metrics-out` snapshot only shows totals);
//! - `BENCH_seed<seed>.json` — the scorecard: a deterministic FNV-1a
//!   digest of every experiment's stdout block (so CI's fingerprint
//!   diff catches nondeterminism anywhere in the sweep) plus the wall
//!   timings as tolerance-banded timing fields for `perf-report`.

use csaw_bench::experiments as e;
use csaw_bench::runner::{self, single_trial};
use csaw_bench::scorecard::{self, Scorecard};
use csaw_obs::event::progress;
use csaw_obs::json::JsonValue;
use csaw_obs::scope::{self, ObsCtx};
use std::sync::Arc;
use std::time::Instant;

type Exp = (&'static str, fn(u64, usize) -> String);

/// The paper experiments, in paper order.
const EXPERIMENTS: &[Exp] = &[
    ("table1", |s, j| e::table1::run_jobs(s, j).render()),
    ("fig1a", |s, j| e::fig1::run_1a_jobs(s, j).render()),
    ("fig1b", |s, j| e::fig1::run_1b_jobs(s, j).render()),
    ("fig1c", |s, j| e::fig1::run_1c_jobs(s, j).render()),
    ("table2", |s, j| e::table2::run_jobs(s, j).render()),
    ("fig2", |s, j| e::fig2::run_jobs(s, j).render()),
    ("table5", |s, j| e::table5::run_jobs(s, j).render()),
    ("fig5a", |s, j| e::fig5::run_5a_jobs(s, j).render()),
    ("fig5b", |s, j| e::fig5::run_5b_jobs(s, j).render()),
    ("fig5c", |s, j| e::fig5::run_5c_jobs(s, j).render()),
    ("fig6a", |s, j| e::fig6::run_6a_jobs(s, j).render()),
    ("fig6b", |s, j| {
        runner::run(&single_trial("fig6b", s, e::fig6::run_6b), j).render()
    }),
    ("table6", |s, j| e::table6::run_jobs(s, j).render()),
    ("fig7a", |s, j| e::fig7::run_7a_jobs(s, j).render()),
    ("fig7b", |s, j| e::fig7::run_7b_jobs(s, j).render()),
    ("fig7c", |s, j| e::fig7::run_7c_jobs(s, j).render()),
    ("table7", |s, j| {
        runner::run(&single_trial("table7", s, |s| e::table7::run(s, 123)), j).render()
    }),
    ("wild", |s, j| e::wild::run_jobs(s, j).render()),
];

/// The §8 future-work extensions.
const EXTENSIONS: &[Exp] = &[
    ("datausage", |s, j| e::datausage::run_jobs(s, j).render()),
    ("ablation_explore", |s, j| {
        e::ablation_explore::run_jobs(s, j).render()
    }),
    ("fingerprint", |s, j| {
        e::fingerprint::run_jobs(s, j).render()
    }),
    ("nonweb", |s, j| e::nonweb::run_jobs(s, j).render()),
    ("propagation", |s, j| {
        runner::run(&single_trial("propagation", s, e::propagation::run), j).render()
    }),
];

/// One experiment's artifacts: rendered stdout, wall seconds, metrics.
struct ExpRun {
    name: &'static str,
    wall_s: f64,
    digest: String,
    metrics: JsonValue,
}

/// Run one experiment inside a child observability scope (fresh
/// registry, everything else inherited), so its metrics can be
/// snapshotted in isolation; the child registry is merged back into the
/// parent afterwards to keep `--metrics-out` totals whole.
fn run_scoped(
    parent: &Arc<ObsCtx>,
    name: &'static str,
    run: fn(u64, usize) -> String,
    seed: u64,
    jobs: usize,
) -> ExpRun {
    progress(&format!("running {name}"));
    let child = Arc::new(
        ObsCtx::new()
            .with_clock(parent.clock.clone())
            .with_sink(parent.sink.clone())
            .with_verbosity(parent.verbosity)
            .with_perf(parent.perf_mode()),
    );
    let t0 = Instant::now();
    let out = {
        let _guard = scope::install(child.clone());
        run(seed, jobs)
    };
    let wall_s = t0.elapsed().as_secs_f64();
    println!("{out}");
    parent.registry.merge_from(&child.registry);
    ExpRun {
        name,
        wall_s,
        digest: scorecard::digest64(&out),
        metrics: child.registry.snapshot(),
    }
}

fn write_or_die(path: &std::path::Path, text: String) {
    if let Err(err) = std::fs::write(path, text) {
        eprintln!("exp_all: cannot write {}: {err}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let (cli, extras) = csaw_bench::cli::ExpCli::parse_with_extras(&[(
        "--out-dir",
        "directory for the <seed>/ artifacts (default runs)",
    )]);
    let out_dir = std::path::PathBuf::from(
        extras
            .get("--out-dir")
            .map(String::as_str)
            .unwrap_or("runs"),
    );
    let seed = cli.seed;
    let jobs = cli.jobs;
    let started = Instant::now();
    let mut runs: Vec<ExpRun> = Vec::new();

    println!("=== C-Saw reproduction: full experiment sweep (seed {seed}) ===\n");
    for (name, run) in EXPERIMENTS {
        runs.push(run_scoped(cli.ctx(), name, *run, seed, jobs));
    }
    println!("--- extensions (§8 future-work questions) ---\n");
    for (name, run) in EXTENSIONS {
        runs.push(run_scoped(cli.ctx(), name, *run, seed, jobs));
    }
    let total_s = started.elapsed().as_secs_f64();

    let dir = out_dir.join(seed.to_string());
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("exp_all: cannot create {}: {err}", dir.display());
        std::process::exit(1);
    }

    // summary.json: the wall timings (kept for EXPERIMENTS.md tooling).
    let mut json = format!(
        "{{\n  \"seed\": {seed},\n  \"jobs\": {jobs},\n  \"total_wall_s\": {total_s:.3},\n  \"experiments\": [\n"
    );
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 < runs.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}}}{sep}\n",
            r.name, r.wall_s
        ));
    }
    json.push_str("  ]\n}\n");
    let summary_path = dir.join("summary.json");
    write_or_die(&summary_path, json);

    // metrics.json: one registry snapshot per experiment (deterministic
    // in the seed, like the per-binary --metrics-out snapshots).
    let mut metrics = JsonValue::obj();
    metrics.set("seed", seed);
    let mut per_exp = JsonValue::obj();
    for r in &runs {
        per_exp.set(r.name, r.metrics.clone());
    }
    metrics.set("experiments", per_exp);
    let metrics_path = dir.join("metrics.json");
    write_or_die(&metrics_path, metrics.to_string_pretty() + "\n");

    // The scorecard: stdout digests are the deterministic section, wall
    // timings the timing section.
    let mut card = Scorecard::new("exp_all", seed);
    let mut digests = JsonValue::obj();
    let mut walls = JsonValue::obj();
    for r in &runs {
        digests.set(r.name, r.digest.as_str());
        walls.set(r.name, r.wall_s);
    }
    card.deterministic.set("stdout_digests", digests);
    card.timing.set("experiment_wall_s", walls);
    card.timing.set("total_wall_s", total_s);
    let card_path = dir.join(format!("BENCH_seed{seed}.json"));
    if let Err(err) = card.write(&card_path) {
        eprintln!("exp_all: cannot write {}: {err}", card_path.display());
        std::process::exit(1);
    }

    eprintln!("exp_all: per-experiment wall timings (jobs={jobs}):");
    for r in &runs {
        eprintln!("  {:<18}{:>8.2}s", r.name, r.wall_s);
    }
    eprintln!("  {:<18}{total_s:>8.2}s", "total");
    eprintln!("exp_all: summary -> {}", summary_path.display());
    eprintln!("exp_all: metrics -> {}", metrics_path.display());
    eprintln!("exp_all: scorecard -> {}", card_path.display());
    cli.finish();
}
