//! Regenerate Figure 1c (Lantern vs IP-as-hostname).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig1::run_1c_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
