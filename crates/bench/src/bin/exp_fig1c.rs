//! Regenerate Figure 1c (Lantern vs IP-as-hostname).
fn main() {
    println!("{}", csaw_bench::experiments::fig1::run_1c(1).render());
}
