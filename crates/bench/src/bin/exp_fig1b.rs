//! Regenerate Figure 1b (HTTPS vs Tor by exit location).
fn main() {
    println!("{}", csaw_bench::experiments::fig1::run_1b(1).render());
}
