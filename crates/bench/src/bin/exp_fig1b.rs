//! Regenerate Figure 1b (HTTPS vs Tor by exit location).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig1::run_1b_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
