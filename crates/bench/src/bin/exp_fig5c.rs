//! Regenerate Figure 5c (redundancy on a larger unblocked page).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig5::run_5c_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
