//! Regenerate Figure 5c (redundancy on a larger unblocked page).
fn main() {
    println!("{}", csaw_bench::experiments::fig5::run_5c(1).render());
}
