//! Regenerate Table 2 (static proxy ping latencies).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::table2::run_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
