//! Regenerate Table 2 (static proxy ping latencies).
fn main() {
    println!("{}", csaw_bench::experiments::table2::run(1).render());
}
