//! Render and gate on windowed health-telemetry frames.
//!
//! ```text
//! health-report frames.jsonl                      # timelines + verdict
//! health-report frames.jsonl --gate               # exit 3 on any violation
//! health-report frames.jsonl --expect rule1,rule2 # exit 7 if any listed
//!                                                 # rule never fired
//! ```
//!
//! The input is the JSONL file an experiment binary writes with
//! `--frames-out` (only `ts.frame` / `slo.violation` events matter; a
//! full `--trace-out` JSONL stream also works). `--gate` is the CI
//! "run must be healthy" check; `--expect` is the inverse — a
//! fault-injection leg that *fails to alert* is an alerting bug, so CI
//! runs the 60 %-fault chaos leg with
//! `--expect report.delivery.fast` and without `--gate`.
//!
//! Exit codes: 0 ok, 2 usage/IO error, 3 `--gate` violation, 7 an
//! `--expect`ed rule never fired.

use csaw_bench::healthreport;
use std::path::PathBuf;

const USAGE: &str = "\
usage: health-report FRAMES.jsonl [flags]

  --gate            exit 3 when any SLO violation is present
  --expect RULES    comma-separated SLO rule names that MUST have
                    fired; exit 7 listing any that did not (for
                    fault-injection legs that are required to alert)";

fn fail_usage(msg: &str) -> ! {
    eprintln!("health-report: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut frames_path: Option<PathBuf> = None;
    let mut gate = false;
    let mut expect: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail_usage(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--gate" => gate = true,
            "--expect" => {
                let v = value("--expect");
                expect.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with('-') => fail_usage(&format!("unknown flag {flag:?}")),
            path if frames_path.is_none() => frames_path = Some(PathBuf::from(path)),
            extra => fail_usage(&format!("unexpected argument {extra:?}")),
        }
    }
    let Some(frames_path) = frames_path else {
        fail_usage("a frames JSONL path is required");
    };
    let text = std::fs::read_to_string(&frames_path)
        .unwrap_or_else(|e| fail_usage(&format!("{}: {e}", frames_path.display())));
    let input = healthreport::parse_jsonl(&text).unwrap_or_else(|e| fail_usage(&e));

    print!("{}", healthreport::render(&input));

    let missing = input.missing_expected(&expect);
    if !missing.is_empty() {
        eprintln!(
            "health-report: expected rule(s) never fired: {}",
            missing.join(", ")
        );
        std::process::exit(7);
    }
    if gate && !input.violations.is_empty() {
        std::process::exit(3);
    }
}
