//! Regenerate Figure 7a (C-Saw vs Lantern vs Tor, DNS-blocked page).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig7::run_7a_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
