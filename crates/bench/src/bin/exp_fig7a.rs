//! Regenerate Figure 7a (C-Saw vs Lantern vs Tor, DNS-blocked page).
fn main() {
    println!("{}", csaw_bench::experiments::fig7::run_7a(1).render());
}
