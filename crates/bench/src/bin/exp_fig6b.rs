//! Regenerate Figure 6b (URL aggregation record savings).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig6::run_6b(cli.seed).render()
    );
    cli.finish();
}
