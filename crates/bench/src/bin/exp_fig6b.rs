//! Regenerate Figure 6b (URL aggregation record savings).
fn main() {
    println!("{}", csaw_bench::experiments::fig6::run_6b(1).render());
}
