//! Million-client ingestion harness for the sharded global store.
//!
//! ```text
//! exp_scale [--clients N] [--threads 1,2,4,8] [--shards N] [--lookups N]
//!           [--bench-out PATH]
//! ```
//!
//! Defaults to one million clients; CI smoke runs use `--clients 10000`.
//!
//! Every run writes the machine-readable scorecard (`BENCH_<seed>.json`
//! by default, `--bench-out` to relocate, `--bench-out none` to skip) —
//! feed it to `perf-report` for the attribution table and the CI
//! regression gate. Perf telemetry defaults to `--perf wall` here, so
//! the scorecard carries real lock wait/hold attribution.

use csaw_bench::experiments::scale::{self, ScaleConfig};
use csaw_bench::healthreport::{self, HealthInput};
use csaw_bench::scorecard;
use csaw_obs::slo::SloSet;
use csaw_obs::PerfMode;
use std::sync::Arc;

fn numeric<T: std::str::FromStr>(
    extras: &std::collections::HashMap<String, String>,
    flag: &str,
    default: T,
) -> T {
    match extras.get(flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("exp_scale: bad value for {flag}: {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let (cli, extras) = csaw_bench::cli::ExpCli::parse_with_extras(&[
        ("--clients", "reporting clients to ingest (default 1000000)"),
        (
            "--threads",
            "comma list of writer-thread counts (default 1,2,4,8)",
        ),
        ("--shards", "store shard count (default 16)"),
        ("--lookups", "read-path lookups to time (default 10000)"),
        (
            "--bench-out",
            "scorecard path (default BENCH_<seed>.json; 'none' disables)",
        ),
        (
            "--transport",
            "also run the socketed phase: 'in-process' (default) or 'tcp'",
        ),
    ]);
    cli.default_perf(PerfMode::Monotonic);
    // This harness runs on wall clock (the virtual clock never moves),
    // so windows are off unless --window is given; when on, the ingest
    // coverage rule still applies to the single close-of-run window.
    cli.default_window(0.0, Arc::new(SloSet::ingest_default()));
    let mut cfg = ScaleConfig {
        clients: numeric(&extras, "--clients", 1_000_000),
        shards: numeric(&extras, "--shards", 16),
        lookups: numeric(&extras, "--lookups", 10_000),
        ..ScaleConfig::default()
    };
    if let Some(list) = extras.get("--threads") {
        cfg.threads = list
            .split(',')
            .map(|t| {
                t.trim().parse().unwrap_or_else(|_| {
                    eprintln!("exp_scale: bad --threads entry {t:?}");
                    std::process::exit(2);
                })
            })
            .collect();
        if cfg.threads.is_empty() {
            eprintln!("exp_scale: --threads needs at least one count");
            std::process::exit(2);
        }
    }
    let transport = extras
        .get("--transport")
        .map(String::as_str)
        .unwrap_or("in-process");
    if !matches!(transport, "in-process" | "tcp") {
        eprintln!("exp_scale: --transport must be 'in-process' or 'tcp', got {transport:?}");
        std::process::exit(2);
    }
    let mut result = scale::run_with(cli.seed, cfg.clone());
    if transport == "tcp" {
        // The socketed phase panics on any reconciliation failure
        // (silent loss), which exits nonzero — that's the CI gate.
        let threads = cfg.threads.iter().copied().max().unwrap_or(1);
        result.socket = Some(scale::run_socketed(
            cli.seed,
            &cfg,
            threads,
            csaw_dbserver::DbServerConfig::default(),
        ));
    }
    println!("{}", result.render());
    let bench_out = extras.get("--bench-out").map(String::as_str);
    if bench_out != Some("none") {
        let path = bench_out
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| scorecard::default_path(cli.seed));
        let mut card = result.scorecard(cli.seed);
        // Close the open telemetry window so the scorecard's health
        // section sees the run's series (finish() flushes again; the
        // extra idle tail frame is skipped by the coverage rule).
        cli.ctx().flush_timeline();
        let timeline = &cli.ctx().timeline;
        if timeline.enabled() {
            card.health = healthreport::health_json(&HealthInput {
                frames: timeline.recent_frames(),
                violations: timeline.violations(),
            });
        }
        if let Err(e) = card.write(&path) {
            eprintln!("exp_scale: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("exp_scale: scorecard -> {}", path.display());
    }
    cli.finish();
}
