//! Regenerate the §7.5 "C-Saw in the Wild" event timeline.
fn main() {
    println!("{}", csaw_bench::experiments::wild::run(1).render());
}
