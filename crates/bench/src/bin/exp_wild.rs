//! Regenerate the §7.5 "C-Saw in the Wild" event timeline.
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::wild::run_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
