//! Regenerate Table 1 (ISP-A vs ISP-B filtering mechanisms).
fn main() {
    println!("{}", csaw_bench::experiments::table1::run(1).render());
}
