//! Regenerate Table 1 (ISP-A vs ISP-B filtering mechanisms).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::table1::run_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
