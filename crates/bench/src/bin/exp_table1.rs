//! Regenerate Table 1 (ISP-A vs ISP-B filtering mechanisms).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::table1::run(cli.seed).render()
    );
    cli.finish();
}
