//! Regenerate Figure 6a (how many redundant requests are enough).
fn main() {
    println!("{}", csaw_bench::experiments::fig6::run_6a(1).render());
}
