//! Regenerate Figure 6a (how many redundant requests are enough).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig6::run_6a_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
