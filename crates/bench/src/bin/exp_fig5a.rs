//! Regenerate Figure 5a (serial vs parallel redundancy, blocked pages).
fn main() {
    println!("{}", csaw_bench::experiments::fig5::run_5a(1).render());
}
