//! Regenerate Figure 5a (serial vs parallel redundancy, blocked pages).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig5::run_5a_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
