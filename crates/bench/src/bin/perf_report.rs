//! Render and gate on benchmark scorecards.
//!
//! ```text
//! perf-report BENCH_seed1.json                      # attribution table
//! perf-report BENCH_seed1.json --fingerprint        # deterministic bytes only
//! perf-report new.json --baseline BENCH_seed1.json  # CI regression gate
//! perf-report BENCH_seed1.json --gate-health        # absolute fitness gate
//! perf-report BENCH_seed1.json --trace trace.json   # join with trace spans
//! ```
//!
//! Exit codes: 0 ok, 2 usage/IO error, 3 timing regression against the
//! baseline, 4 deterministic-field mismatch (a correctness bug, not a
//! perf regression — it outranks 3 when both occur), 5 health-gate
//! violation (lock-wait fraction or parallel-scaling floor breached).

use csaw_bench::perfreport;
use csaw_bench::scorecard::Scorecard;
use csaw_bench::tracereport;
use std::collections::BTreeMap;
use std::path::PathBuf;

const USAGE: &str = "\
usage: perf-report CARD.json [flags]

  --baseline FILE   compare against a baseline scorecard; exit 3 on a
                    timing regression, 4 on a deterministic mismatch
  --tolerance F     relative timing band for --baseline (default 0.25)
  --fingerprint     print only the deterministic fingerprint and exit
                    (two same-seed runs must print identical bytes)
  --gate-health     absolute fitness gate on the card itself: exit 5
                    when the widest row's lock-wait fraction exceeds
                    20% of attributed thread-seconds or 1→8-thread
                    scaling is below 3× (skipped on hosts too narrow
                    to express it)
  --trace FILE      also aggregate a trace file (Chrome-trace or JSONL)
                    into per-span totals alongside the attribution";

fn fail_usage(msg: &str) -> ! {
    eprintln!("perf-report: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut card_path: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut tolerance = 0.25f64;
    let mut fingerprint = false;
    let mut gate_health = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail_usage(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--trace" => trace = Some(PathBuf::from(value("--trace"))),
            "--tolerance" => {
                let v = value("--tolerance");
                tolerance = v
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| fail_usage(&format!("bad --tolerance {v:?}")));
            }
            "--fingerprint" => fingerprint = true,
            "--gate-health" => gate_health = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with('-') => fail_usage(&format!("unknown flag {flag:?}")),
            path if card_path.is_none() => card_path = Some(PathBuf::from(path)),
            extra => fail_usage(&format!("unexpected argument {extra:?}")),
        }
    }
    let Some(card_path) = card_path else {
        fail_usage("a scorecard path is required");
    };
    let card = Scorecard::load(&card_path).unwrap_or_else(|e| fail_usage(&e));

    if fingerprint {
        // Bytes only: CI diffs this output across two same-seed runs.
        print!("{}", card.fingerprint());
        return;
    }

    print!("{}", perfreport::attribution(&card));

    if let Some(trace_path) = &trace {
        let text = std::fs::read_to_string(trace_path)
            .unwrap_or_else(|e| fail_usage(&format!("{}: {e}", trace_path.display())));
        let events =
            tracereport::parse_events(&text).unwrap_or_else(|e| fail_usage(&e.to_string()));
        // Spans aggregate by duration; instant events still show up
        // with a count so a span-less trace is not rendered as empty.
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for ev in &events {
            let e = by_name.entry(ev.name.as_str()).or_insert((0, 0));
            e.0 += 1;
            e.1 += ev.dur_us.unwrap_or(0);
        }
        let mut spans: Vec<_> = by_name.into_iter().collect();
        spans.sort_by(|a, b| {
            b.1 .1
                .cmp(&a.1 .1)
                .then(b.1 .0.cmp(&a.1 .0))
                .then(a.0.cmp(b.0))
        });
        println!(
            "\ntrace events by total span time ({}):",
            trace_path.display()
        );
        for (name, (count, total_us)) in spans.iter().take(15) {
            println!("  {name:<32} {total_us:>10}µs  ({count} events)");
        }
    }

    if let Some(base_path) = &baseline {
        let base = Scorecard::load(base_path).unwrap_or_else(|e| fail_usage(&e));
        let cmp = perfreport::compare(&card, &base, tolerance);
        print!("\n{}", cmp.render());
        if !cmp.deterministic_mismatches.is_empty() {
            std::process::exit(4);
        }
        if !cmp.timing_regressions.is_empty() {
            std::process::exit(3);
        }
    }

    if gate_health {
        let h = perfreport::health(&card);
        print!("\n{}", h.render());
        if !h.ok() {
            std::process::exit(5);
        }
    }
}
