//! Regenerate Figure 5b (redundancy on a small unblocked page).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig5::run_5b_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
