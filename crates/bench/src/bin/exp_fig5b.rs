//! Regenerate Figure 5b (redundancy on a small unblocked page).
fn main() {
    println!("{}", csaw_bench::experiments::fig5::run_5b(1).render());
}
