//! Regenerate Figure 7c (C-Saw w/ Lantern vs C-Saw w/ Tor).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig7::run_7c_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
