//! Regenerate Figure 7c (C-Saw w/ Lantern vs C-Saw w/ Tor).
fn main() {
    println!("{}", csaw_bench::experiments::fig7::run_7c(1).render());
}
