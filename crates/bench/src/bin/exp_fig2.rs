//! Regenerate Figure 2 (ONI blocking-type mixtures across 8 ASes).
fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    println!(
        "{}",
        csaw_bench::experiments::fig2::run_jobs(cli.seed, cli.jobs).render()
    );
    cli.finish();
}
