//! Regenerate Figure 2 (ONI blocking-type mixtures across 8 ASes).
fn main() {
    println!("{}", csaw_bench::experiments::fig2::run(1).render());
}
