//! Run the extension experiments (the paper's §8 future-work questions):
//! fingerprintability, data usage, the exploration ablation, non-web
//! filtering, and crowd propagation.
use csaw_bench::experiments as e;
use csaw_bench::runner::{self, single_trial};
use csaw_obs::event::progress;

fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    let seed = cli.seed;
    let jobs = cli.jobs;
    type Exp = (&'static str, fn(u64, usize) -> String);
    let extensions: &[Exp] = &[
        ("datausage", |s, j| e::datausage::run_jobs(s, j).render()),
        ("ablation_explore", |s, j| {
            e::ablation_explore::run_jobs(s, j).render()
        }),
        ("fingerprint", |s, j| {
            e::fingerprint::run_jobs(s, j).render()
        }),
        ("nonweb", |s, j| e::nonweb::run_jobs(s, j).render()),
        ("propagation", |s, j| {
            runner::run(&single_trial("propagation", s, e::propagation::run), j).render()
        }),
    ];
    println!("=== C-Saw reproduction: extension experiments (seed {seed}) ===\n");
    for (name, run) in extensions {
        progress(&format!("running {name}"));
        println!("{}", run(seed, jobs));
    }
    cli.finish();
}
