//! Run the extension experiments (the paper's §8 future-work questions):
//! fingerprintability, data usage, and the exploration ablation.
use csaw_bench::experiments as e;
use csaw_obs::event::progress;

fn main() {
    let cli = csaw_bench::cli::ExpCli::parse();
    let seed = cli.seed;
    type Exp = (&'static str, fn(u64) -> String);
    let extensions: &[Exp] = &[
        ("datausage", |s| e::datausage::run(s).render()),
        ("ablation_explore", |s| e::ablation_explore::run(s).render()),
        ("fingerprint", |s| e::fingerprint::run(s).render()),
        ("nonweb", |s| e::nonweb::run(s).render()),
        ("propagation", |s| e::propagation::run(s).render()),
    ];
    println!("=== C-Saw reproduction: extension experiments (seed {seed}) ===\n");
    for (name, run) in extensions {
        progress(&format!("running {name}"));
        println!("{}", run(seed));
    }
    cli.finish();
}
