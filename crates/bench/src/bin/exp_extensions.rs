//! Run the extension experiments (the paper's §8 future-work questions):
//! fingerprintability, data usage, and the exploration ablation.
use csaw_bench::experiments as e;

fn main() {
    let seed = 1;
    println!("=== C-Saw reproduction: extension experiments (seed {seed}) ===\n");
    println!("{}", e::datausage::run(seed).render());
    println!("{}", e::ablation_explore::run(seed).render());
    println!("{}", e::fingerprint::run(seed).render());
    println!("{}", e::nonweb::run(seed).render());
    println!("{}", e::propagation::run(seed).render());
}
