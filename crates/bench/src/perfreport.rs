//! Attribution and regression-gating over benchmark scorecards — the
//! logic behind the `perf-report` binary (sibling of [`crate::tracereport`]).
//!
//! Two jobs:
//!
//! - [`attribution`]: render a per-phase table answering "where did the
//!   ingest wall time go?" from one scorecard — thread-seconds split
//!   into batch building, per-lock-family wait/hold, non-lock ingest
//!   compute, and the harness/idle remainder. This is the evidence the
//!   ROADMAP's scaling work is gated on: lock-bound shows up as wait%,
//!   allocation-bound as allocs/report.
//! - [`compare`]: diff a fresh scorecard against the checked-in
//!   baseline. Deterministic fields must match exactly (allocator
//!   counts get a ±20% band for toolchain drift); timing fields get a
//!   caller-chosen relative tolerance plus a small absolute slack so
//!   µs-scale percentiles don't gate on scheduler jitter.
//! - [`health`]: absolute fitness checks on one scorecard, independent
//!   of any baseline — the highest-thread-count row's lock-wait
//!   fraction must stay under [`HEALTH_MAX_LOCK_WAIT_FRACTION`] of its
//!   attributed thread-seconds, and 1→8-thread scaling must reach
//!   [`HEALTH_MIN_SCALING`]× (skipped with a note when the card's
//!   recording host lacked the cores to express parallelism at all).

use crate::scorecard::Scorecard;
use csaw_obs::json::JsonValue;

/// Relative band for allocator counts inside the deterministic section:
/// exact equality is the rule for every other key, but alloc counts move
/// when the standard library's container growth policies do, and a
/// toolchain bump should not read as a correctness mismatch.
const ALLOC_BAND: f64 = 0.20;

/// Absolute slack (µs) on lookup-latency comparisons — p50s of a few µs
/// would otherwise fail on a single timer-granularity blip.
const LOOKUP_SLACK_US: f64 = 100.0;

/// Absolute slack (ns) on micro-benchmark comparisons.
const MICRO_SLACK_NS: f64 = 50.0;

/// [`health`]: ceiling on the highest-thread-count row's summed
/// lock-wait as a fraction of attributed thread-seconds
/// (`build_s + call_s`). Past this, ingest is lock-bound and the
/// batch-per-shard design has regressed.
pub const HEALTH_MAX_LOCK_WAIT_FRACTION: f64 = 0.20;

/// [`health`]: floor on `reports_per_sec` scaling from the 1-thread
/// row to the [`HEALTH_SCALING_THREADS`]-thread row.
pub const HEALTH_MIN_SCALING: f64 = 3.0;

/// [`health`]: the thread count the scaling floor is measured at.
pub const HEALTH_SCALING_THREADS: u64 = 8;

/// Render the per-phase ingest attribution table for one scorecard.
///
/// For every timing row that carries perf data (`--perf wall` runs),
/// the denominator is `threads × ingest_secs` thread-seconds and the
/// components are: batch build (workload synthesis on the harness
/// side), per-family lock wait and hold, ingest compute (in-call time
/// not spent in any timed lock), and the remainder (harness loop
/// overhead plus scheduler idle). `attributed` is the fraction of
/// thread-seconds directly measured inside the worker loop
/// (build + call) — the acceptance bar for the telemetry layer.
pub fn attribution(card: &Scorecard) -> String {
    let mut out = format!("perf-report: {} seed {}\n", card.experiment, card.seed);
    let rows = card
        .timing
        .get("rows")
        .and_then(JsonValue::as_arr)
        .map(<[JsonValue]>::to_vec)
        .unwrap_or_default();
    if rows.is_empty() {
        out.push_str("no timing rows in this scorecard\n");
    }
    for row in &rows {
        let threads = row
            .get("threads")
            .and_then(JsonValue::as_u64)
            .unwrap_or(1)
            .max(1);
        let ingest_s = row
            .get("ingest_secs")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let total = (threads as f64) * ingest_s;
        let (Some(build_s), Some(call_s)) = (
            row.get("build_s").and_then(JsonValue::as_f64),
            row.get("call_s").and_then(JsonValue::as_f64),
        ) else {
            out.push_str(&format!(
                "threads={threads}: no attribution data (rerun with --perf wall)\n"
            ));
            continue;
        };

        let mut components: Vec<(String, f64)> = vec![("batch build (harness)".into(), build_s)];
        let mut in_call_lock_s = 0.0;
        if let Some(locks) = row.get("locks").and_then(JsonValue::as_obj) {
            for (name, l) in locks {
                let wait_s = l.get("wait_us").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1e6;
                let hold_s = l.get("hold_us").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1e6;
                in_call_lock_s += wait_s + hold_s;
                components.push((format!("lock wait {name}"), wait_s));
                components.push((format!("lock hold {name}"), hold_s));
            }
        }
        components.push((
            "ingest compute (non-lock)".into(),
            (call_s - in_call_lock_s).max(0.0),
        ));
        components.push((
            "harness/idle remainder".into(),
            (total - build_s - call_s).max(0.0),
        ));

        let attributed_pct = if total > 0.0 {
            (build_s + call_s) / total * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "\nthreads={threads}  ingest_s={ingest_s:.3}  thread_s={total:.3}  attributed={attributed_pct:.1}%\n"
        ));
        for (name, secs) in &components {
            let pct = if total > 0.0 {
                secs / total * 100.0
            } else {
                0.0
            };
            out.push_str(&format!("  {name:<42} {secs:>9.3}s  {pct:>5.1}%\n"));
        }
        if let (Some(allocs), Some(bytes)) = (
            row.get("allocs").and_then(JsonValue::as_u64),
            row.get("alloc_bytes").and_then(JsonValue::as_u64),
        ) {
            out.push_str(&format!(
                "  allocator: {allocs} events, {bytes} bytes during ingest\n"
            ));
        }
    }
    if let Some(micro) = card.timing.get("micro").and_then(JsonValue::as_obj) {
        out.push_str("\nmicro-benchmarks (ns/iter):\n");
        for (name, ns) in micro {
            let ns = ns.as_u64().unwrap_or(0);
            out.push_str(&format!("  {name:<32} {ns:>12}\n"));
        }
    }
    out
}

/// The outcome of diffing a scorecard against a baseline: what must
/// fail CI ([`Comparison::deterministic_mismatches`] — exit 4 — and
/// [`Comparison::timing_regressions`] — exit 3) and what is merely
/// informational.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Seed-pure fields that differ — a correctness/determinism bug, not
    /// a perf regression.
    pub deterministic_mismatches: Vec<String>,
    /// Timing fields outside the tolerance band.
    pub timing_regressions: Vec<String>,
    /// Non-gating observations (benches missing from a filtered run,
    /// improvements worth noticing).
    pub notes: Vec<String>,
}

impl Comparison {
    /// True when nothing gating was found.
    pub fn ok(&self) -> bool {
        self.deterministic_mismatches.is_empty() && self.timing_regressions.is_empty()
    }

    /// Human-readable verdict block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.deterministic_mismatches {
            out.push_str(&format!("DETERMINISM MISMATCH: {m}\n"));
        }
        for r in &self.timing_regressions {
            out.push_str(&format!("TIMING REGRESSION: {r}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if self.ok() {
            out.push_str("perf-report: within tolerance of baseline\n");
        }
        out
    }
}

/// Numeric leaf comparison with a relative band plus absolute slack.
fn outside_band(cur: f64, base: f64, rel: f64, abs: f64) -> bool {
    (cur - base).abs() > base.abs() * rel + abs
}

/// Recursively diff the deterministic sections. Exact equality except
/// keys mentioning `alloc`, which get [`ALLOC_BAND`].
fn diff_deterministic(path: &str, cur: &JsonValue, base: &JsonValue, out: &mut Comparison) {
    match (cur.as_obj(), base.as_obj()) {
        (Some(c), Some(b)) => {
            let keys: std::collections::BTreeSet<&String> = c.keys().chain(b.keys()).collect();
            for k in keys {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match (c.get(k), b.get(k)) {
                    (Some(cv), Some(bv)) => diff_deterministic(&p, cv, bv, out),
                    (Some(_), None) => out
                        .deterministic_mismatches
                        .push(format!("{p}: present only in current")),
                    (None, Some(_)) => out
                        .deterministic_mismatches
                        .push(format!("{p}: present only in baseline")),
                    (None, None) => unreachable!(),
                }
            }
            return;
        }
        (None, None) => {}
        _ => {
            out.deterministic_mismatches
                .push(format!("{path}: shape differs"));
            return;
        }
    }
    if let (Some(c), Some(b)) = (cur.as_arr(), base.as_arr()) {
        if c.len() != b.len() {
            out.deterministic_mismatches.push(format!(
                "{path}: {} entries vs {} in baseline",
                c.len(),
                b.len()
            ));
            return;
        }
        for (i, (cv, bv)) in c.iter().zip(b).enumerate() {
            diff_deterministic(&format!("{path}[{i}]"), cv, bv, out);
        }
        return;
    }
    if path.contains("alloc") {
        let (c, b) = (
            cur.as_f64().unwrap_or(f64::NAN),
            base.as_f64().unwrap_or(f64::NAN),
        );
        if !(c.is_finite() && b.is_finite()) || outside_band(c, b, ALLOC_BAND, 2.0) {
            out.deterministic_mismatches.push(format!(
                "{path}: {} vs baseline {} (±{:.0}% band)",
                cur.to_string_compact(),
                base.to_string_compact(),
                ALLOC_BAND * 100.0
            ));
        }
        return;
    }
    if cur.to_string_compact() != base.to_string_compact() {
        out.deterministic_mismatches.push(format!(
            "{path}: {} vs baseline {}",
            cur.to_string_compact(),
            base.to_string_compact()
        ));
    }
}

/// Index timing rows by their `threads` value.
fn rows_by_threads(timing: &JsonValue) -> Vec<(u64, JsonValue)> {
    timing
        .get("rows")
        .and_then(JsonValue::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| {
                    r.get("threads")
                        .and_then(JsonValue::as_u64)
                        .map(|t| (t, r.clone()))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compare `current` against `baseline`.
///
/// Gating rules: identity and the deterministic section must match (see
/// `diff_deterministic`); per matched thread count,
/// `reports_per_sec` must stay ≥ `baseline × (1 − tolerance)` and the
/// lookup percentiles ≤ `baseline × (1 + tolerance)` plus slack;
/// micro-bench ns/iter likewise. Wait/hold sums are diagnostics, never
/// gates — they move with machine load and that is exactly what they
/// are for.
pub fn compare(current: &Scorecard, baseline: &Scorecard, tolerance: f64) -> Comparison {
    let mut out = Comparison::default();
    if current.experiment != baseline.experiment {
        out.deterministic_mismatches.push(format!(
            "experiment: {:?} vs baseline {:?}",
            current.experiment, baseline.experiment
        ));
    }
    if current.seed != baseline.seed {
        out.deterministic_mismatches.push(format!(
            "seed: {} vs baseline {}",
            current.seed, baseline.seed
        ));
    }
    diff_deterministic(
        "deterministic",
        &current.deterministic,
        &baseline.deterministic,
        &mut out,
    );

    let cur_rows = rows_by_threads(&current.timing);
    for (threads, base_row) in rows_by_threads(&baseline.timing) {
        let Some((_, cur_row)) = cur_rows.iter().find(|(t, _)| *t == threads) else {
            out.timing_regressions
                .push(format!("timing row for {threads} thread(s) missing"));
            continue;
        };
        let f = |row: &JsonValue, key: &str| row.get(key).and_then(JsonValue::as_f64);
        if let (Some(c), Some(b)) = (
            f(cur_row, "reports_per_sec"),
            f(&base_row, "reports_per_sec"),
        ) {
            if c < b * (1.0 - tolerance) {
                out.timing_regressions.push(format!(
                    "threads={threads} reports_per_sec {c:.0} < {b:.0} × (1 − {tolerance})"
                ));
            } else if c > b * (1.0 + tolerance) {
                out.notes.push(format!(
                    "threads={threads} reports_per_sec improved: {c:.0} vs {b:.0}"
                ));
            }
        }
        for key in ["lookup_p50_us", "lookup_p99_us"] {
            if let (Some(c), Some(b)) = (f(cur_row, key), f(&base_row, key)) {
                if c > b * (1.0 + tolerance) + LOOKUP_SLACK_US {
                    out.timing_regressions.push(format!(
                        "threads={threads} {key} {c:.0}µs > {b:.0}µs × (1 + {tolerance}) + {LOOKUP_SLACK_US:.0}µs"
                    ));
                }
            }
        }
    }

    let micro = |card: &Scorecard| {
        card.timing
            .get("micro")
            .and_then(JsonValue::as_obj)
            .cloned()
            .unwrap_or_default()
    };
    let cur_micro = micro(current);
    for (name, base_ns) in micro(baseline) {
        let Some(base_ns) = base_ns.as_f64() else {
            continue;
        };
        match cur_micro.get(&name).and_then(JsonValue::as_f64) {
            None => out
                .notes
                .push(format!("micro {name}: not measured in current run")),
            Some(c) if c > base_ns * (1.0 + tolerance) + MICRO_SLACK_NS => {
                out.timing_regressions.push(format!(
                    "micro {name} {c:.0}ns > {base_ns:.0}ns × (1 + {tolerance}) + {MICRO_SLACK_NS:.0}ns"
                ));
            }
            Some(_) => {}
        }
    }
    out
}

/// The outcome of the absolute health gate: hard failures plus
/// non-gating context.
#[derive(Debug, Default)]
pub struct Health {
    /// Violations of the fitness floors — each one fails the gate.
    pub violations: Vec<String>,
    /// Non-gating context (skipped checks and why).
    pub notes: Vec<String>,
}

impl Health {
    /// True when no floor was breached.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable verdict block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("HEALTH VIOLATION: {v}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if self.ok() {
            out.push_str("perf-report: scorecard is healthy\n");
        }
        out
    }
}

/// Absolute fitness checks on one scorecard (no baseline involved):
///
/// - **lock-wait fraction** — the summed per-family `wait_us` must stay
///   under [`HEALTH_MAX_LOCK_WAIT_FRACTION`] of the attributed
///   thread-seconds (`build_s + call_s`); more than that and the
///   writers are spending their concurrency budget queueing on the
///   store's locks;
/// - **parallel scaling** — `reports_per_sec` at
///   [`HEALTH_SCALING_THREADS`] threads must be at least
///   [`HEALTH_MIN_SCALING`]× the 1-thread row's.
///
/// Both checks respect the card's recorded `timing.host_threads`: a
/// machine cannot demonstrate parallel speedup it has no cores for, and
/// when threads outnumber cores, lock wait measures the OS scheduler's
/// time-slicing (a descheduled lock holder parks every other writer for
/// a whole quantum), not the store. So the wait check runs on the
/// *widest row the host could actually run concurrently*, and the
/// scaling check is skipped with a note on hosts narrower than
/// [`HEALTH_SCALING_THREADS`] — the gate bites exactly on hosts
/// (reference machine, CI runners) wide enough to express contention.
///
/// Cards without the relevant rows fail loudly: a gate that silently
/// passes on an empty card would defeat its purpose.
pub fn health(card: &Scorecard) -> Health {
    let mut out = Health::default();
    let rows = rows_by_threads(&card.timing);
    let Some((widest, _)) = rows.iter().max_by_key(|(t, _)| *t).cloned() else {
        out.violations
            .push("no timing rows to gate on (rerun exp_scale with a scorecard)".into());
        return out;
    };
    let host_threads = card
        .timing
        .get("host_threads")
        .and_then(JsonValue::as_u64)
        .unwrap_or(u64::MAX); // older cards: assume wide, keep the gate strict

    // Lock-wait fraction on the widest genuinely-concurrent row.
    let Some((hi_threads, hi_row)) = rows
        .iter()
        .filter(|(t, _)| *t <= host_threads)
        .max_by_key(|(t, _)| *t)
        .cloned()
    else {
        out.violations.push(format!(
            "no timing row at ≤ {host_threads} threads to gate lock-wait on"
        ));
        return out;
    };
    if hi_threads < widest {
        out.notes.push(format!(
            "lock-wait gated at {hi_threads} thread(s): rows above the host's \
             {host_threads} core(s) measure time-slicing, not the store"
        ));
    }
    let f = |row: &JsonValue, key: &str| row.get(key).and_then(JsonValue::as_f64);
    match (f(&hi_row, "build_s"), f(&hi_row, "call_s")) {
        (Some(build_s), Some(call_s)) if build_s + call_s > 0.0 => {
            let attributed = build_s + call_s;
            let wait_s = hi_row
                .get("locks")
                .and_then(JsonValue::as_obj)
                .map(|locks| {
                    locks
                        .values()
                        .filter_map(|l| l.get("wait_us").and_then(JsonValue::as_f64))
                        .sum::<f64>()
                        / 1e6
                })
                .unwrap_or(0.0);
            let frac = wait_s / attributed;
            if frac > HEALTH_MAX_LOCK_WAIT_FRACTION {
                out.violations.push(format!(
                    "threads={hi_threads} lock-wait fraction {:.1}% > {:.0}% of attributed \
                     thread-seconds ({wait_s:.3}s waiting / {attributed:.3}s attributed)",
                    frac * 100.0,
                    HEALTH_MAX_LOCK_WAIT_FRACTION * 100.0
                ));
            }
        }
        _ => out.violations.push(format!(
            "threads={hi_threads} row has no attribution data (rerun with --perf wall)"
        )),
    }

    // 1→N scaling, when the recording host could express it.
    let one = rows.iter().find(|(t, _)| *t == 1).map(|(_, r)| r.clone());
    let wide = rows
        .iter()
        .find(|(t, _)| *t == HEALTH_SCALING_THREADS)
        .map(|(_, r)| r.clone());
    match (one, wide) {
        (Some(one), Some(wide)) => {
            if host_threads < HEALTH_SCALING_THREADS {
                out.notes.push(format!(
                    "scaling check skipped: card was recorded on a {host_threads}-thread host, \
                     which cannot express {HEALTH_SCALING_THREADS}-thread speedup"
                ));
            } else if let (Some(b), Some(w)) =
                (f(&one, "reports_per_sec"), f(&wide, "reports_per_sec"))
            {
                if b <= 0.0 || w / b < HEALTH_MIN_SCALING {
                    out.violations.push(format!(
                        "1→{HEALTH_SCALING_THREADS}-thread scaling {:.2}× < {HEALTH_MIN_SCALING}× \
                         ({w:.0} vs {b:.0} reports/s)",
                        if b > 0.0 { w / b } else { 0.0 }
                    ));
                }
            } else {
                out.violations.push(
                    "scaling rows are missing reports_per_sec; cannot verify the floor".into(),
                );
            }
        }
        _ => out.violations.push(format!(
            "scaling check needs timing rows at 1 and {HEALTH_SCALING_THREADS} threads"
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn card_with_timing() -> Scorecard {
        let mut card = Scorecard::new("exp_scale", 1);
        card.deterministic.set("accepted", 400u64);
        card.deterministic.set("allocs_per_report", 100u64);
        let mut row = JsonValue::obj();
        row.set("threads", 1u64);
        row.set("ingest_secs", 1.0);
        row.set("reports_per_sec", 1000.0);
        row.set("lookup_p50_us", 10u64);
        row.set("lookup_p99_us", 50u64);
        row.set("build_s", 0.2);
        row.set("call_s", 0.78);
        let mut locks = JsonValue::obj();
        let mut l = JsonValue::obj();
        l.set("contended", 3u64);
        l.set("wait_us", 100_000u64);
        l.set("hold_us", 300_000u64);
        locks.set("store.shard.records.write", l);
        row.set("locks", locks);
        card.timing.set("rows", vec![row]);
        card.set_micro(&[("url_parse".into(), 200u64)]);
        card
    }

    #[test]
    fn attribution_names_every_component_and_coverage() {
        let text = attribution(&card_with_timing());
        assert!(text.contains("attributed=98.0%"), "{text}");
        assert!(text.contains("batch build (harness)"));
        assert!(text.contains("lock wait store.shard.records.write"));
        assert!(text.contains("lock hold store.shard.records.write"));
        assert!(text.contains("ingest compute (non-lock)"));
        assert!(text.contains("harness/idle remainder"));
        assert!(text.contains("url_parse"));
    }

    #[test]
    fn attribution_degrades_gracefully_without_perf_rows() {
        let mut card = Scorecard::new("exp_scale", 1);
        let mut row = JsonValue::obj();
        row.set("threads", 2u64);
        row.set("ingest_secs", 0.5);
        card.timing.set("rows", vec![row]);
        let text = attribution(&card);
        assert!(text.contains("no attribution data"), "{text}");
        assert!(attribution(&Scorecard::new("x", 1)).contains("no timing rows"));
    }

    #[test]
    fn identical_cards_compare_clean() {
        let card = card_with_timing();
        let c = compare(&card, &card, 0.25);
        assert!(c.ok(), "{:?}", c);
        assert!(c.render().contains("within tolerance"));
    }

    #[test]
    fn deterministic_drift_is_a_mismatch_but_allocs_get_a_band() {
        let base = card_with_timing();
        let mut cur = base.clone();
        cur.deterministic.set("allocs_per_report", 110u64); // within ±20%
        assert!(compare(&cur, &base, 0.25).ok());
        cur.deterministic.set("allocs_per_report", 200u64); // outside
        let c = compare(&cur, &base, 0.25);
        assert_eq!(c.deterministic_mismatches.len(), 1, "{:?}", c);
        let mut cur = base.clone();
        cur.deterministic.set("accepted", 401u64);
        let c = compare(&cur, &base, 0.25);
        assert!(!c.ok());
        assert!(
            c.deterministic_mismatches[0].contains("accepted"),
            "{:?}",
            c
        );
    }

    #[test]
    fn timing_regressions_respect_tolerance() {
        let base = card_with_timing();
        let mut cur = base.clone();
        // 20% slower throughput passes a 25% band, fails a 10% one.
        let mut rows = cur.timing.get("rows").unwrap().as_arr().unwrap().to_vec();
        rows[0].set("reports_per_sec", 800.0);
        cur.timing.set("rows", rows);
        assert!(compare(&cur, &base, 0.25).ok());
        let c = compare(&cur, &base, 0.10);
        assert_eq!(c.timing_regressions.len(), 1, "{:?}", c);
        assert!(c.timing_regressions[0].contains("reports_per_sec"));
    }

    /// A card shaped like a real exp_scale run on a wide host: healthy
    /// 1→8 scaling and a quiet lock profile at 8 threads.
    fn healthy_card() -> Scorecard {
        let mut card = Scorecard::new("exp_scale", 1);
        card.timing.set("host_threads", 16u64);
        let mut rows = Vec::new();
        for (threads, rps, wait_us) in [(1u64, 250_000.0, 10_000u64), (8, 1_000_000.0, 100_000)] {
            let mut row = JsonValue::obj();
            row.set("threads", threads);
            row.set("ingest_secs", 1.0);
            row.set("reports_per_sec", rps);
            row.set("build_s", 0.5);
            row.set("call_s", threads as f64 - 0.6);
            let mut locks = JsonValue::obj();
            let mut l = JsonValue::obj();
            l.set("wait_us", wait_us);
            l.set("hold_us", 300_000u64);
            locks.set("store.shard.records.write", l);
            row.set("locks", locks);
            rows.push(row);
        }
        card.timing.set("rows", rows);
        card
    }

    #[test]
    fn health_passes_a_quiet_scaling_card() {
        let h = health(&healthy_card());
        assert!(h.ok(), "{:?}", h);
        assert!(h.render().contains("healthy"));
    }

    #[test]
    fn health_fails_on_lock_wait_fraction() {
        let mut card = healthy_card();
        let mut rows = card.timing.get("rows").unwrap().as_arr().unwrap().to_vec();
        // 8-thread row: 2.5 of 7.9 attributed thread-seconds waiting.
        let mut locks = JsonValue::obj();
        let mut l = JsonValue::obj();
        l.set("wait_us", 2_500_000u64);
        locks.set("store.ledger.keys.write", l);
        rows[1].set("locks", locks);
        card.timing.set("rows", rows);
        let h = health(&card);
        assert_eq!(h.violations.len(), 1, "{:?}", h);
        assert!(h.violations[0].contains("lock-wait fraction"), "{:?}", h);
        // The same noisy 8-thread row on a 4-core host is time-slicing
        // noise, not store contention: the gate drops to the widest
        // genuinely-concurrent row (here 1 thread) and notes it.
        card.timing.set("host_threads", 4u64);
        let h = health(&card);
        assert!(h.ok(), "{:?}", h);
        assert!(
            h.notes.iter().any(|n| n.contains("lock-wait gated at 1")),
            "{:?}",
            h
        );
    }

    #[test]
    fn health_fails_on_poor_scaling_but_skips_on_narrow_hosts() {
        let mut card = healthy_card();
        let mut rows = card.timing.get("rows").unwrap().as_arr().unwrap().to_vec();
        rows[1].set("reports_per_sec", 500_000.0); // 2× at 8 threads
        card.timing.set("rows", rows);
        let h = health(&card);
        assert_eq!(h.violations.len(), 1, "{:?}", h);
        assert!(h.violations[0].contains("scaling"), "{:?}", h);
        // Same card recorded on a 2-thread host: the scaling floor is
        // physically unreachable there, so it's a note, not a failure.
        card.timing.set("host_threads", 2u64);
        let h = health(&card);
        assert!(h.ok(), "{:?}", h);
        assert!(h.notes.iter().any(|n| n.contains("skipped")), "{:?}", h);
    }

    #[test]
    fn health_fails_loudly_on_cards_it_cannot_judge() {
        let empty = Scorecard::new("exp_scale", 1);
        assert!(!health(&empty).ok());
        // Rows without perf attribution must not pass silently.
        let mut card = healthy_card();
        let mut rows = card.timing.get("rows").unwrap().as_arr().unwrap().to_vec();
        for r in &mut rows {
            let mut stripped = JsonValue::obj();
            stripped.set("threads", r.get("threads").unwrap().clone());
            stripped.set("reports_per_sec", r.get("reports_per_sec").unwrap().clone());
            *r = stripped;
        }
        card.timing.set("rows", rows);
        let h = health(&card);
        assert!(
            h.violations.iter().any(|v| v.contains("no attribution")),
            "{:?}",
            h
        );
    }

    #[test]
    fn missing_micro_is_a_note_and_slower_micro_gates() {
        let base = card_with_timing();
        let mut cur = base.clone();
        cur.timing.set("micro", JsonValue::obj());
        let c = compare(&cur, &base, 0.25);
        assert!(c.ok());
        assert!(c.notes.iter().any(|n| n.contains("url_parse")), "{:?}", c);
        let mut cur = base.clone();
        cur.set_micro(&[("url_parse".into(), 2000u64)]);
        assert!(!compare(&cur, &base, 0.25).ok());
    }
}
