//! The deterministic parallel trial executor every `exp_*` sweep runs
//! on.
//!
//! An experiment is a set of **independent trials** (seed × config
//! point) plus a reduction. [`run`] fans the trials across `jobs`
//! worker threads pulling from one shared queue (an idle worker steals
//! the next un-run trial), yet its observable output is **byte-identical
//! to a serial run**:
//!
//! - every trial draws from its own RNG, derived from the trial seed
//!   alone ([`TrialSpec::rng`]) — never from a shared stream;
//! - every trial runs under its own observability arena (fresh
//!   [`csaw_obs::Registry`], fresh virtual clock, a fresh
//!   [`csaw_obs::Timeline`] inheriting the caller's window
//!   configuration, and a [`csaw_obs::BufferSink`] capturing its
//!   events — telemetry frames included);
//! - after the worker barrier the arenas are folded into the caller's
//!   scope in **trial-ordinal order**: registries merge (addition
//!   commutes), buffered events replay into the real sink, and the
//!   caller's virtual clock advances to the trial maximum.
//!
//! Worker scheduling therefore affects wall-clock time and nothing
//! else. `--jobs 1` and `--jobs 64` write the same bytes.
//!
//! # Minimal experiment
//!
//! ```
//! use csaw_bench::runner::{self, Experiment, TrialSpec};
//!
//! /// Monte-Carlo mean of x² over uniform x — one trial per sample.
//! struct MeanOfSquares {
//!     seed: u64,
//! }
//!
//! impl Experiment for MeanOfSquares {
//!     type Trial = f64;
//!     type Output = f64;
//!
//!     fn name(&self) -> &'static str {
//!         "mean-of-squares"
//!     }
//!
//!     fn trials(&self) -> Vec<TrialSpec> {
//!         (0..8)
//!             .map(|i| TrialSpec::forked(self.name(), self.seed, i, format!("sample-{i}")))
//!             .collect()
//!     }
//!
//!     fn run_trial(&self, spec: &TrialSpec) -> f64 {
//!         let mut rng = spec.rng();
//!         let x = rng.f64();
//!         x * x
//!     }
//!
//!     fn reduce(&self, trials: Vec<f64>) -> f64 {
//!         trials.iter().sum::<f64>() / trials.len() as f64
//!     }
//! }
//!
//! let serial = runner::run(&MeanOfSquares { seed: 1 }, 1);
//! let parallel = runner::run(&MeanOfSquares { seed: 1 }, 4);
//! assert_eq!(serial, parallel, "jobs must not change the result");
//! ```

use csaw_obs::clock::ManualClock;
use csaw_obs::contention::{LockStats, PerfMode, TimedMutex};
use csaw_obs::metrics::{Counter, Gauge, Histogram, Registry};
use csaw_obs::scope::{self, ObsCtx};
use csaw_obs::sink::{BufferSink, Sink};
use csaw_obs::timeseries::Timeline;
use csaw_obs::Event;
use csaw_simnet::rng::DetRng;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One independent unit of experiment work.
///
/// The spec carries everything a worker needs: a merge position
/// (`ordinal`), a human-readable `label` for progress/timing output,
/// and the trial's private RNG `seed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialSpec {
    /// Merge position: results are combined in ascending ordinal order
    /// after the barrier, whatever order workers finished in.
    pub ordinal: u64,
    /// Human-readable config-point label (`"TCP/IP × parallel"`).
    pub label: String,
    /// The trial's RNG seed. Trials must draw only from RNGs derived
    /// from this seed; sharing a stream across trials would make the
    /// output depend on execution order.
    pub seed: u64,
}

impl TrialSpec {
    /// A spec whose seed is splitmix-forked from
    /// `(experiment, exp_seed, ordinal)` — the default for new
    /// decompositions.
    pub fn forked(
        experiment: &str,
        exp_seed: u64,
        ordinal: u64,
        label: impl Into<String>,
    ) -> TrialSpec {
        TrialSpec {
            ordinal,
            label: label.into(),
            seed: fork_seed(exp_seed, experiment, ordinal),
        }
    }

    /// A spec with an explicit seed — for experiments that predate the
    /// runner and must keep their historical RNG streams (and therefore
    /// their published reference numbers) bit-stable.
    pub fn salted(seed: u64, ordinal: u64, label: impl Into<String>) -> TrialSpec {
        TrialSpec {
            ordinal,
            label: label.into(),
            seed,
        }
    }

    /// The trial's private generator.
    pub fn rng(&self) -> DetRng {
        DetRng::new(self.seed)
    }
}

/// Derive a trial seed from `(exp_seed, experiment, ordinal)`: FNV-1a
/// over the experiment name folded with the ordinal, finished with two
/// SplitMix64 rounds. Labelled forking means adding a trial to one
/// experiment never perturbs another's draws.
pub fn fork_seed(exp_seed: u64, experiment: &str, ordinal: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut x = exp_seed ^ h.rotate_left(17) ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut out = 0u64;
    for _ in 0..2 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        out = z ^ (z >> 31);
    }
    out
}

/// An experiment decomposed into independent trials plus a reduction.
///
/// Contract: `run_trial` must be a pure function of `(self, spec)` and
/// the trial-scoped observability context — no shared mutable state, no
/// draws from an RNG owned by another trial. `reduce` receives the
/// trial results in ascending ordinal order.
pub trait Experiment: Sync {
    /// One trial's result.
    type Trial: Send + 'static;
    /// The reduced experiment result (usually the struct with the
    /// `render()` method the binary prints).
    type Output;

    /// Stable name (`"fig5a"`), used for seed forking, progress lines,
    /// and the `exp_all` manifest/artifact tree.
    fn name(&self) -> &'static str;

    /// The full trial list. Order defines the serial execution order;
    /// ordinals define the merge order (normally the same).
    fn trials(&self) -> Vec<TrialSpec>;

    /// Run one trial. Called on an arbitrary worker thread under a
    /// trial-private observability scope.
    fn run_trial(&self, spec: &TrialSpec) -> Self::Trial;

    /// Combine the ordinal-ordered trial results.
    fn reduce(&self, trials: Vec<Self::Trial>) -> Self::Output;
}

/// A monolithic `run(seed)` experiment wrapped as a one-trial
/// [`Experiment`], so coupled sweeps (shared evolving state across
/// their inner loop) still ride the same executor, arena, and
/// `exp_all` manifest path as decomposed ones.
pub struct SingleTrial<T, F> {
    name: &'static str,
    seed: u64,
    run: F,
    _out: std::marker::PhantomData<fn() -> T>,
}

/// Wrap `run` as a single-trial experiment named `name`.
pub fn single_trial<T, F>(name: &'static str, seed: u64, run: F) -> SingleTrial<T, F>
where
    T: Send + 'static,
    F: Fn(u64) -> T + Sync,
{
    SingleTrial {
        name,
        seed,
        run,
        _out: std::marker::PhantomData,
    }
}

impl<T, F> Experiment for SingleTrial<T, F>
where
    T: Send + 'static,
    F: Fn(u64) -> T + Sync,
{
    type Trial = T;
    type Output = T;

    fn name(&self) -> &'static str {
        self.name
    }

    fn trials(&self) -> Vec<TrialSpec> {
        vec![TrialSpec::salted(self.seed, 0, self.name)]
    }

    fn run_trial(&self, spec: &TrialSpec) -> T {
        (self.run)(spec.seed)
    }

    fn reduce(&self, mut trials: Vec<T>) -> T {
        trials.pop().expect("exactly one trial")
    }
}

/// Wall-clock cost of one trial, for the `exp_all` summary artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialTiming {
    /// The trial's merge ordinal.
    pub ordinal: u64,
    /// The trial's label.
    pub label: String,
    /// Wall-clock seconds the trial took on its worker.
    pub wall_s: f64,
}

/// Run an experiment across `jobs` workers and reduce. `jobs ≤ 1` runs
/// serially on the calling thread — through the *same* per-trial arena
/// path, which is what makes the byte-equality guarantee structural
/// rather than aspirational.
pub fn run<E: Experiment>(exp: &E, jobs: usize) -> E::Output {
    run_timed(exp, jobs).0
}

/// Like [`run`], but also returns per-trial wall-clock timings.
pub fn run_timed<E: Experiment>(exp: &E, jobs: usize) -> (E::Output, Vec<TrialTiming>) {
    let specs = exp.trials();
    let (trials, timings) = run_trials(&specs, jobs, |s| exp.run_trial(s));
    (exp.reduce(trials), timings)
}

/// Pre-resolved handles for the runner's own scheduling telemetry
/// (recorded only under [`PerfMode::Monotonic`], parallel path only).
struct RunnerStats {
    steals: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    idle_us: Arc<Histogram>,
}

/// Everything a trial leaves behind: its value plus its observability
/// arena, carried back to the merge step.
struct TrialResult<T> {
    value: T,
    events: Vec<Event>,
    registry: Arc<Registry>,
    clock_us: u64,
    wall_s: f64,
}

fn run_one<T, F>(
    spec: &TrialSpec,
    run: &F,
    enabled: bool,
    verbosity: u8,
    perf: PerfMode,
    parent_timeline: &Timeline,
) -> TrialResult<T>
where
    F: Fn(&TrialSpec) -> T,
{
    let sink = Arc::new(BufferSink::new(enabled));
    let ctx = Arc::new(
        ObsCtx::new()
            .with_clock(Arc::new(ManualClock::new()))
            .with_sink(sink.clone() as Arc<dyn Sink>)
            .with_verbosity(verbosity)
            // Trials inherit the caller's perf-attribution mode, so a
            // perf-enabled sweep sees into the locks its trials build.
            .with_perf(perf)
            // ... and the caller's window configuration, on a private
            // timeline: frames close into the trial's BufferSink, so
            // they replay in ordinal order like every other event.
            .with_timeline(Arc::new(parent_timeline.child())),
    );
    let started = Instant::now();
    let value = {
        let _guard = scope::install(ctx.clone());
        run(spec)
    };
    // End-of-run close: the runner owns the final flush so every trial
    // leaves exactly one partial last window. Trial bodies must not
    // flush themselves. No-op when windowing is off.
    ctx.flush_timeline();
    TrialResult {
        value,
        events: sink.take(),
        registry: ctx.registry.clone(),
        clock_us: ctx.clock.now_us(),
        wall_s: started.elapsed().as_secs_f64(),
    }
}

/// The generic executor under [`run`]: fan `specs` across `jobs`
/// workers, then fold the per-trial arenas into the calling scope in
/// ordinal order. Exposed so `exp_all` can pool trials from *many*
/// experiments through one work queue.
pub fn run_trials<T, F>(specs: &[TrialSpec], jobs: usize, run: F) -> (Vec<T>, Vec<TrialTiming>)
where
    T: Send,
    F: Fn(&TrialSpec) -> T + Sync,
{
    let parent = scope::current();
    let enabled = parent.sink.enabled();
    let verbosity = parent.verbosity;
    let perf = parent.perf_mode();
    let timeline = parent.timeline.clone();
    let jobs = jobs.max(1).min(specs.len().max(1));

    // Runner self-measurement is wall-clock-only (Monotonic): under
    // Virtual mode queue depths and idle times are scheduler noise that
    // would break the jobs-independence the snapshots promise, so they
    // are simply not recorded there.
    let runner_stats = (perf == PerfMode::Monotonic).then(|| RunnerStats {
        steals: parent.registry.counter("runner.steals"),
        queue_depth: parent.registry.gauge("runner.queue_depth"),
        idle_us: parent.registry.histogram("runner.worker.idle_us"),
    });

    let mut slots: Vec<Option<TrialResult<T>>> = if jobs <= 1 {
        specs
            .iter()
            .map(|s| Some(run_one(s, &run, enabled, verbosity, perf, &timeline)))
            .collect()
    } else {
        // One shared work deque: each idle worker steals the next
        // un-run trial from the front. Assignment of trials to workers
        // is nondeterministic; nothing downstream can see it. The
        // deque's own lock is a timed lock (`runner.queue` family) so a
        // perf run can tell queue contention from genuine idleness.
        let queue_stats = (perf == PerfMode::Monotonic)
            .then(|| LockStats::resolve("runner.queue"))
            .flatten();
        let queue = TimedMutex::with_stats(queue_stats, (0..specs.len()).collect::<VecDeque<_>>());
        let slots: Vec<Mutex<Option<TrialResult<T>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|sc| {
            for _ in 0..jobs {
                sc.spawn(|| {
                    let mut finished_at: Option<Instant> = None;
                    loop {
                        let (claimed, remaining) = {
                            let mut q = queue.lock();
                            let c = q.pop_front();
                            (c, q.len())
                        };
                        let Some(i) = claimed else { break };
                        if let Some(rs) = &runner_stats {
                            rs.steals.inc();
                            rs.queue_depth.set(remaining as i64);
                            // Idle = gap between finishing the previous
                            // trial and claiming this one.
                            if let Some(done) = finished_at {
                                rs.idle_us.observe_us(done.elapsed().as_micros() as u64);
                            }
                        }
                        let result = run_one(&specs[i], &run, enabled, verbosity, perf, &timeline);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                        finished_at = Some(Instant::now());
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect()
    };

    // The barrier is behind us; merge in ordinal order (stable on list
    // position for equal ordinals).
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].ordinal);
    let mut values = Vec::with_capacity(specs.len());
    let mut timings = Vec::with_capacity(specs.len());
    for i in order {
        let r = slots[i]
            .take()
            .expect("worker barrier guarantees every trial ran");
        parent.registry.merge_from(&r.registry);
        if enabled {
            for e in &r.events {
                parent.sink.record(e);
            }
        }
        // Runner's own windowed series, recorded here rather than on
        // the worker threads: the merge loop runs on the caller thread
        // in ordinal order, so the count is a pure function of the
        // trial list and the jobs-independence guarantee holds.
        if timeline.enabled() {
            timeline.counter("runner.trials.merged", &[]).inc();
        }
        if let Some(clock) = parent.manual_clock() {
            clock.set_us(r.clock_us);
        }
        values.push(r.value);
        timings.push(TrialTiming {
            ordinal: specs[i].ordinal,
            label: specs[i].label.clone(),
            wall_s: r.wall_s,
        });
    }
    (values, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_obs::sink::RingSink;

    /// A synthetic experiment exercising every arena surface: events,
    /// counters, histograms, gauges, per-trial clocks — with per-trial
    /// busy-work skew so workers finish far out of ordinal order.
    struct Synthetic {
        seed: u64,
        trials: u64,
    }

    impl Experiment for Synthetic {
        type Trial = u64;
        type Output = Vec<u64>;

        fn name(&self) -> &'static str {
            "synthetic"
        }

        fn trials(&self) -> Vec<TrialSpec> {
            (0..self.trials)
                .map(|i| TrialSpec::forked(self.name(), self.seed, i, format!("t{i}")))
                .collect()
        }

        fn run_trial(&self, spec: &TrialSpec) -> u64 {
            let mut rng = spec.rng();
            // Adversarial interleaving: early ordinals do the most
            // work, so under parallel execution they finish *last* and
            // a naive completion-order merge would invert the stream.
            let spin = (self.trials - spec.ordinal) * 40_000;
            let mut acc = spec.seed;
            for _ in 0..spin {
                acc = acc.rotate_left(7) ^ 0x9e37;
            }
            std::hint::black_box(acc);
            let draw = rng.range_u64(0, 1_000);
            csaw_obs::advance_clock_us(1_000 * (spec.ordinal + 1));
            csaw_obs::event!("synthetic.trial", ordinal = spec.ordinal, draw = draw);
            csaw_obs::inc("synthetic.trials");
            csaw_obs::observe_us("synthetic.draw", draw);
            csaw_obs::current().registry.gauge("synthetic.net").add(1);
            draw
        }

        fn reduce(&self, trials: Vec<u64>) -> Vec<u64> {
            trials
        }
    }

    /// Run the synthetic experiment under a fresh scope; return the
    /// reduced output, the replayed event stream rendered to JSON, and
    /// the metrics snapshot.
    fn run_instrumented(jobs: usize) -> (Vec<u64>, String, String) {
        let ring = Arc::new(RingSink::new(1 << 12));
        let ctx = Arc::new(
            ObsCtx::new()
                .with_clock(Arc::new(ManualClock::new()))
                .with_sink(ring.clone()),
        );
        let _guard = scope::install(ctx.clone());
        let out = run(
            &Synthetic {
                seed: 7,
                trials: 12,
            },
            jobs,
        );
        let events: Vec<String> = ring
            .drain()
            .into_iter()
            .map(|e| e.to_json().to_string_compact())
            .collect();
        let snapshot = ctx.registry.snapshot().to_string_pretty();
        (out, events.join("\n"), snapshot)
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let (out1, events1, snap1) = run_instrumented(1);
        for jobs in [4, 16] {
            let (out, events, snap) = run_instrumented(jobs);
            assert_eq!(out, out1, "jobs={jobs}: reduced output diverged");
            assert_eq!(events, events1, "jobs={jobs}: event stream diverged");
            assert_eq!(snap, snap1, "jobs={jobs}: metrics snapshot diverged");
        }
    }

    #[test]
    fn events_replay_in_ordinal_order() {
        let (_, events, _) = run_instrumented(16);
        let ordinals: Vec<u64> = events
            .lines()
            .map(|l| {
                let v = csaw_obs::JsonValue::parse(l).expect("event json");
                v.get("fields")
                    .and_then(|f| f.get("ordinal"))
                    .and_then(|o| o.as_u64())
                    .expect("ordinal field")
            })
            .collect();
        assert_eq!(ordinals, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn parent_clock_advances_to_trial_maximum() {
        let ctx = Arc::new(ObsCtx::new().with_clock(Arc::new(ManualClock::new())));
        let _guard = scope::install(ctx.clone());
        let _ = run(&Synthetic { seed: 1, trials: 5 }, 4);
        // Trial k sets its clock to 1000·(k+1); the merged maximum is
        // the last trial's.
        assert_eq!(ctx.clock.now_us(), 5_000);
    }

    #[test]
    fn metrics_totals_match_trial_count() {
        let ctx = Arc::new(ObsCtx::new().with_clock(Arc::new(ManualClock::new())));
        let _guard = scope::install(ctx.clone());
        let _ = run(&Synthetic { seed: 3, trials: 9 }, 16);
        assert_eq!(ctx.registry.counter("synthetic.trials").get(), 9);
        assert_eq!(ctx.registry.histogram("synthetic.draw").count(), 9);
        assert_eq!(ctx.registry.gauge("synthetic.net").get(), 9);
    }

    #[test]
    fn out_of_order_ordinals_merge_by_ordinal_not_position() {
        struct Reversed;
        impl Experiment for Reversed {
            type Trial = u64;
            type Output = Vec<u64>;
            fn name(&self) -> &'static str {
                "reversed"
            }
            fn trials(&self) -> Vec<TrialSpec> {
                // Listed high-to-low: merge order must follow ordinals.
                (0..6u64)
                    .rev()
                    .map(|i| TrialSpec::salted(i, i, format!("r{i}")))
                    .collect()
            }
            fn run_trial(&self, spec: &TrialSpec) -> u64 {
                spec.ordinal * 10
            }
            fn reduce(&self, trials: Vec<u64>) -> Vec<u64> {
                trials
            }
        }
        assert_eq!(run(&Reversed, 4), vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn timings_cover_every_trial_in_ordinal_order() {
        let (_, timings) = run_timed(&Synthetic { seed: 2, trials: 7 }, 4);
        assert_eq!(timings.len(), 7);
        for (i, t) in timings.iter().enumerate() {
            assert_eq!(t.ordinal, i as u64);
            assert!(t.wall_s >= 0.0);
        }
    }

    #[test]
    fn perf_off_leaves_no_runner_or_lock_metrics() {
        let ctx = Arc::new(ObsCtx::new().with_clock(Arc::new(ManualClock::new())));
        let _guard = scope::install(ctx.clone());
        let _ = run(&Synthetic { seed: 5, trials: 6 }, 4);
        let snap = ctx.registry.snapshot().to_string_compact();
        assert!(
            !snap.contains("runner.") && !snap.contains("lock."),
            "perf-off runs must not grow new metric families: {snap}"
        );
    }

    #[test]
    fn monotonic_perf_records_steals_and_queue_metrics() {
        let ctx = Arc::new(
            ObsCtx::new()
                .with_clock(Arc::new(ManualClock::new()))
                .with_perf(PerfMode::Monotonic),
        );
        let _guard = scope::install(ctx.clone());
        let _ = run(&Synthetic { seed: 5, trials: 6 }, 4);
        assert_eq!(
            ctx.registry.counter("runner.steals").get(),
            6,
            "every trial is claimed exactly once"
        );
        assert_eq!(
            ctx.registry.counter("lock.runner.queue.acquires").get(),
            6 + 4,
            "one claim per trial plus one empty-queue check per worker"
        );
        // 4 workers × ≥1 trial each is not guaranteed (one worker can
        // drain everything), so idle samples are 0..=5; the histogram
        // must merely exist via the queue-depth gauge having been set.
        assert!(ctx.registry.gauge("runner.queue_depth").get() >= 0);
    }

    #[test]
    fn virtual_perf_keeps_byte_identity_across_jobs() {
        let run_at = |jobs: usize| -> String {
            let ctx = Arc::new(
                ObsCtx::new()
                    .with_clock(Arc::new(ManualClock::new()))
                    .with_perf(PerfMode::Virtual),
            );
            let _guard = scope::install(ctx.clone());
            let _ = run(
                &Synthetic {
                    seed: 11,
                    trials: 8,
                },
                jobs,
            );
            ctx.registry.snapshot().to_string_pretty()
        };
        assert_eq!(
            run_at(1),
            run_at(8),
            "virtual perf mode must not leak scheduling into snapshots"
        );
    }

    #[test]
    fn trial_timelines_inherit_config_and_replay_frames_byte_identically() {
        use csaw_obs::timeseries::FRAME_EVENT;
        use csaw_obs::{SloSet, WindowCfg};

        /// Records one windowed counter sample per trial and advances
        /// past a window boundary, so every trial emits frames.
        struct Windowed;
        impl Experiment for Windowed {
            type Trial = ();
            type Output = ();
            fn name(&self) -> &'static str {
                "windowed"
            }
            fn trials(&self) -> Vec<TrialSpec> {
                (0..6u64)
                    .map(|i| TrialSpec::forked(self.name(), 9, i, format!("w{i}")))
                    .collect()
            }
            fn run_trial(&self, spec: &TrialSpec) {
                let ctx = scope::current();
                assert!(
                    ctx.timeline.enabled(),
                    "trial timeline must inherit the parent window config"
                );
                ctx.timeline
                    .counter("trial.work", &[("o", &spec.ordinal.to_string())])
                    .inc();
                // Crosses the 1 ms boundary (closes window 0), leaves a
                // partial window for the runner's end-of-run flush.
                csaw_obs::advance_clock_us(1_500);
            }
            fn reduce(&self, _trials: Vec<()>) {}
        }

        let run_at = |jobs: usize| -> String {
            let ring = Arc::new(RingSink::new(1 << 12));
            let ctx = Arc::new(
                ObsCtx::new()
                    .with_clock(Arc::new(ManualClock::new()))
                    .with_sink(ring.clone()),
            );
            ctx.timeline.configure(WindowCfg {
                window_us: 1_000,
                retain: 8,
                slos: Arc::new(SloSet::empty()),
            });
            let _guard = scope::install(ctx.clone());
            run(&Windowed, jobs);
            ring.drain()
                .into_iter()
                .filter(|e| e.name == FRAME_EVENT)
                .map(|e| e.to_json().to_string_compact())
                .collect::<Vec<_>>()
                .join("\n")
        };

        let serial = run_at(1);
        // 6 trials × (1 boundary close + 1 end-of-run flush) = 12 frames.
        assert_eq!(serial.lines().count(), 12, "frames:\n{serial}");
        assert!(serial.contains("trial.work{o=3}"));
        assert_eq!(run_at(4), serial, "frames must not depend on jobs");
    }

    #[test]
    fn merge_feeds_runner_series_into_parent_timeline() {
        use csaw_obs::{SloSet, WindowCfg};
        let ctx = Arc::new(ObsCtx::new().with_clock(Arc::new(ManualClock::new())));
        ctx.timeline.configure(WindowCfg {
            window_us: 1_000_000,
            retain: 4,
            slos: Arc::new(SloSet::empty()),
        });
        let _guard = scope::install(ctx.clone());
        let _ = run(&Synthetic { seed: 4, trials: 5 }, 4);
        ctx.flush_timeline();
        let frames = ctx.timeline.recent_frames();
        let merged: u64 = frames
            .iter()
            .map(|f| f.family_count("runner.trials.merged"))
            .sum();
        assert_eq!(merged, 5, "one merge per trial");
    }

    #[test]
    fn fork_seed_separates_experiments_and_ordinals() {
        let a = fork_seed(1, "fig5a", 0);
        assert_eq!(a, fork_seed(1, "fig5a", 0), "deterministic");
        assert_ne!(a, fork_seed(1, "fig5a", 1), "ordinal-sensitive");
        assert_ne!(a, fork_seed(1, "fig5b", 0), "label-sensitive");
        assert_ne!(a, fork_seed(2, "fig5a", 0), "seed-sensitive");
    }

    #[test]
    fn empty_trial_list_reduces_empty() {
        struct Empty;
        impl Experiment for Empty {
            type Trial = u64;
            type Output = usize;
            fn name(&self) -> &'static str {
                "empty"
            }
            fn trials(&self) -> Vec<TrialSpec> {
                Vec::new()
            }
            fn run_trial(&self, _spec: &TrialSpec) -> u64 {
                unreachable!("no trials")
            }
            fn reduce(&self, trials: Vec<u64>) -> usize {
                trials.len()
            }
        }
        assert_eq!(run(&Empty, 8), 0);
    }
}
