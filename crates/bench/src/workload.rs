//! Workload generation: browsing sessions, URL universes, Zipf sampling.

use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_webproto::url::Url;

/// A Zipf(s) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `s` (s≈0.8–1.2 for
    /// web popularity).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf {
            cumulative: weights,
        }
    }

    /// Sample a rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Open-loop request arrivals with uniform inter-arrival times — the
/// paper's §7.1 workload ("100 web requests whose inter-arrival times are
/// uniformly distributed between 1s and 5s").
pub fn uniform_arrivals(
    n: usize,
    lo: SimDuration,
    hi: SimDuration,
    rng: &mut DetRng,
) -> Vec<SimTime> {
    let mut t = SimTime::ZERO;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let gap = rng.range_u64(lo.as_micros(), hi.as_micros() + 1);
        t += SimDuration::from_micros(gap);
        out.push(t);
    }
    out
}

/// A universe of censored and clean sites for the pilot study: `blocked`
/// domains (each with several distinct URLs) plus `clean` domains.
#[derive(Debug, Clone)]
pub struct PilotUniverse {
    /// Blocked-domain hostnames.
    pub blocked_domains: Vec<String>,
    /// Distinct blocked URLs (≥1 per blocked domain).
    pub blocked_urls: Vec<Url>,
    /// Clean-domain hostnames.
    pub clean_domains: Vec<String>,
    /// URLs on clean domains.
    pub clean_urls: Vec<Url>,
}

/// Build the pilot universe: `n_blocked_domains` censored domains carrying
/// `n_blocked_urls` distinct URLs between them, plus `n_clean` clean
/// domains with a few pages each.
pub fn pilot_universe(
    n_blocked_domains: usize,
    n_blocked_urls: usize,
    n_clean: usize,
) -> PilotUniverse {
    assert!(n_blocked_urls >= n_blocked_domains);
    let blocked_domains: Vec<String> = (0..n_blocked_domains)
        .map(|i| format!("blocked-{i:03}.example"))
        .collect();
    let mut blocked_urls = Vec::with_capacity(n_blocked_urls);
    for (i, d) in blocked_domains.iter().enumerate() {
        blocked_urls.push(Url::parse(&format!("http://{d}/")).expect("static url"));
        let _ = i;
    }
    // Spread the remaining URLs over the domains round-robin as distinct
    // paths.
    let mut k = 0usize;
    while blocked_urls.len() < n_blocked_urls {
        let d = &blocked_domains[k % blocked_domains.len()];
        blocked_urls.push(
            Url::parse(&format!("http://{d}/page/{}", k / blocked_domains.len()))
                .expect("static url"),
        );
        k += 1;
    }
    let clean_domains: Vec<String> = (0..n_clean)
        .map(|i| format!("clean-{i:03}.example"))
        .collect();
    let mut clean_urls = Vec::new();
    for d in &clean_domains {
        for p in 0..3 {
            clean_urls.push(Url::parse(&format!("http://{d}/p{p}")).expect("static url"));
        }
    }
    PilotUniverse {
        blocked_domains,
        blocked_urls,
        clean_domains,
        clean_urls,
    }
}

/// An Alexa-top-15-style browse session (Fig. 6b): per site, a set of
/// derived URLs the user visits.
pub fn alexa15_session(urls_per_site: usize) -> Vec<(String, Vec<Url>)> {
    let sites = [
        "google.com.pk",
        "youtube.com",
        "facebook.com",
        "google.com",
        "yahoo.com",
        "daraz.pk",
        "wikipedia.org",
        "twitter.com",
        "hamariweb.com",
        "olx.com.pk",
        "urdupoint.com",
        "dawn.com",
        "espncricinfo.com",
        "live.com",
        "instagram.com",
    ];
    sites
        .iter()
        .map(|s| {
            let urls = (0..urls_per_site)
                .map(|i| {
                    Url::parse(&format!("http://{s}/section{}/page{}", i % 4, i))
                        .expect("static url")
                })
                .collect();
            (s.to_string(), urls)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = DetRng::new(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[10] && counts[10] > counts[50],
            "{:?}",
            &counts[..12]
        );
        // Rough Zipf sanity: rank 0 ≈ 2x rank 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.5..=2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn arrivals_monotone_and_bounded() {
        let mut rng = DetRng::new(2);
        let ts = uniform_arrivals(
            100,
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
            &mut rng,
        );
        assert_eq!(ts.len(), 100);
        for w in ts.windows(2) {
            let gap = w[1].duration_since(w[0]);
            assert!(gap >= SimDuration::from_secs(1) && gap <= SimDuration::from_secs(5));
        }
    }

    #[test]
    fn pilot_universe_shape_matches_table7_inputs() {
        // The paper's Table 7: 420 blocked domains, 997 unique blocked
        // URLs accessed.
        let u = pilot_universe(420, 997, 100);
        assert_eq!(u.blocked_domains.len(), 420);
        assert_eq!(u.blocked_urls.len(), 997);
        // URLs are unique.
        let set: std::collections::HashSet<String> =
            u.blocked_urls.iter().map(|u| u.to_string()).collect();
        assert_eq!(set.len(), 997);
        // Every blocked URL is on a blocked domain.
        for url in &u.blocked_urls {
            let host = url.host().to_string();
            assert!(u.blocked_domains.contains(&host));
        }
    }

    #[test]
    fn alexa_session_has_15_sites() {
        let s = alexa15_session(20);
        assert_eq!(s.len(), 15);
        assert!(s.iter().all(|(_, urls)| urls.len() == 20));
    }
}
