//! # csaw-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation against
//! the simulated substrate. Each experiment is a pure function of a seed
//! (bit-reproducible) returning a typed result with a `render()` method
//! that prints the same rows/series the paper reports.
//!
//! Binaries: one `exp_*` per artifact plus `exp_all` (which writes the
//! full report consumed by `EXPERIMENTS.md`). Criterion micro-benchmarks
//! for the hot paths live under `benches/`.
//!
//! Perf attribution rides on `csaw_obs::contention` plus three local
//! pieces: [`alloc_track`] (allocs/report via the optional counting
//! allocator), [`scorecard`] (the machine-readable `BENCH_<seed>.json`
//! every scale run writes), and [`perfreport`] (the attribution table
//! and the CI tolerance gate behind the `perf-report` binary).
//! Windowed health telemetry (`--frames-out` JSONL) is analyzed by
//! [`healthreport`] behind the `health-report` binary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc_track;
pub mod cli;
pub mod experiments;
pub mod healthreport;
pub mod perfreport;
pub mod runner;
pub mod scorecard;
pub mod stats;
pub mod tracereport;
pub mod workload;
pub mod worlds;

pub use stats::{percentile, reduction_pct, Cdf, Summary};
