//! Offline health-timeline analysis behind the `health-report` binary.
//!
//! Consumes the JSONL stream `--frames-out` writes (`ts.frame` and
//! `slo.violation` events — a full `--trace-out` JSONL stream also
//! parses; unrelated events are skipped) and renders, per run label:
//!
//! - a **delivery timeline**: per window, reports queued / posted /
//!   failed, the cumulative delivery ratio, the summed client queue
//!   depth at window close, and the detection-latency p99;
//! - a **per-AS staleness timeline**: the `store.ingest.staleness_us`
//!   p99 per AS label, per window — the freshness signal behind the
//!   paper's "how stale is the blocked list a client downloads";
//! - the **SLO verdicts**: every `slo.violation` the deterministic
//!   rule engine emitted at window close.
//!
//! The analysis is read-only re-presentation: verdicts were already
//! decided (deterministically) when the windows closed. `--gate` turns
//! "any violation" into a non-zero exit for CI; `--expect` inverts the
//! check for fault-injection legs that must alert (a chaos run at 60 %
//! fault rate that does *not* fire the delivery SLO is a bug in the
//! alerting, not a healthy run).

use csaw_obs::json::JsonValue;
use csaw_obs::slo::Violation;
use csaw_obs::timeseries::{key_in_family, Frame};
use std::collections::BTreeSet;

/// Everything parsed out of a frames JSONL file.
#[derive(Debug, Clone, Default)]
pub struct HealthInput {
    /// Telemetry frames, in file order (trial-ordinal order, thanks to
    /// the runner's deterministic merge).
    pub frames: Vec<Frame>,
    /// SLO violations, in emission order.
    pub violations: Vec<Violation>,
}

impl HealthInput {
    /// Distinct run labels, in first-seen frame order.
    pub fn runs(&self) -> Vec<&str> {
        let mut runs: Vec<&str> = Vec::new();
        for f in &self.frames {
            if !runs.contains(&f.run.as_str()) {
                runs.push(&f.run);
            }
        }
        runs
    }

    /// Frames belonging to `run`, in file order.
    pub fn frames_for(&self, run: &str) -> Vec<&Frame> {
        self.frames.iter().filter(|f| f.run == run).collect()
    }

    /// Distinct names of rules that fired, sorted.
    pub fn rules_violated(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.violations.iter().map(|v| v.rule.as_str()).collect();
        set.into_iter().collect()
    }

    /// Expected rule names that never fired (the `--expect` check).
    pub fn missing_expected(&self, expected: &[String]) -> Vec<String> {
        let fired: BTreeSet<&str> = self.violations.iter().map(|v| v.rule.as_str()).collect();
        expected
            .iter()
            .filter(|r| !fired.contains(r.as_str()))
            .cloned()
            .collect()
    }
}

/// Parse a frames JSONL stream. Lines that are valid JSON but neither
/// `ts.frame` nor `slo.violation` events are skipped, so a full
/// `--trace-out` stream is accepted too; malformed JSON is an error.
pub fn parse_jsonl(text: &str) -> Result<HealthInput, String> {
    let mut input = HealthInput::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e:?}", lineno + 1))?;
        if let Some(f) = Frame::parse(&v) {
            input.frames.push(f);
        } else if let Some(viol) = Violation::parse(&v) {
            input.violations.push(viol);
        }
    }
    Ok(input)
}

/// Sum of close-of-window gauge levels across a label family; `None`
/// when the frame has no series in the family.
fn gauge_sum(f: &Frame, family: &str) -> Option<i64> {
    let mut sum = None;
    for (k, s) in &f.series {
        if key_in_family(k, family) {
            if let Some(last) = s.gauge_last() {
                *sum.get_or_insert(0) += last;
            }
        }
    }
    sum
}

/// Largest p99 across a digest family's labels; `None` when no label
/// saw samples this window.
fn digest_p99(f: &Frame, family: &str) -> Option<u64> {
    f.series
        .iter()
        .filter(|(k, _)| key_in_family(k, family))
        .filter_map(|(_, s)| s.p99_us())
        .max()
}

/// Format a window as `[start,end)` in whole virtual hours when every
/// boundary is hour-aligned, else in seconds.
fn window_label(start_us: u64, end_us: u64, hour_aligned: bool) -> String {
    if hour_aligned {
        format!(
            "[{:>4},{:>4})h",
            start_us / 3_600_000_000,
            end_us / 3_600_000_000
        )
    } else {
        format!("[{:>7},{:>7})s", start_us / 1_000_000, end_us / 1_000_000)
    }
}

fn all_hour_aligned(frames: &[&Frame]) -> bool {
    frames
        .iter()
        .all(|f| f.start_us % 3_600_000_000 == 0 && f.end_us % 3_600_000_000 == 0)
}

/// Render one run's delivery + staleness timelines.
fn render_run(input: &HealthInput, run: &str) -> String {
    let frames = input.frames_for(run);
    let hour = all_hour_aligned(&frames);
    let shown = if run.is_empty() { "(main)" } else { run };
    let mut out = format!("run {shown}: {} window(s)\n", frames.len());

    // Delivery timeline.
    out.push_str(&format!(
        "  {:<13} {:>7} {:>7} {:>7} {:>9} {:>8} {:>12}\n",
        "window", "queued", "posted", "failed", "delivery", "q.depth", "detect_p99ms"
    ));
    let (mut cq, mut cp) = (0u64, 0u64);
    for f in &frames {
        cq += f.family_count("client.reports.queued");
        cp += f.family_count("client.reports.posted");
        let delivery = if cq == 0 {
            "-".to_string()
        } else {
            format!("{:.3}", cp as f64 / cq as f64)
        };
        let depth = gauge_sum(f, "client.report_queue_depth")
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        let detect = digest_p99(f, "client.detect_latency_us")
            .map(|us| format!("{:.1}", us as f64 / 1e3))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "  {:<13} {:>7} {:>7} {:>7} {:>9} {:>8} {:>12}\n",
            window_label(f.start_us, f.end_us, hour),
            f.family_count("client.reports.queued"),
            f.family_count("client.reports.posted"),
            f.family_count("client.reports.failed"),
            delivery,
            depth,
            detect,
        ));
    }

    // Per-AS staleness timeline, only when the store side reported any.
    let stale_keys: Vec<&String> = {
        let mut set = BTreeSet::new();
        for f in &frames {
            for k in f.series.keys() {
                if key_in_family(k, "store.ingest.staleness_us") {
                    set.insert(k);
                }
            }
        }
        set.into_iter().collect()
    };
    if !stale_keys.is_empty() {
        out.push_str("  per-AS ingest staleness p99 (s):\n");
        out.push_str(&format!("  {:<13}", "window"));
        for k in &stale_keys {
            let label = k
                .rsplit_once('{')
                .map(|(_, l)| l.trim_end_matches('}'))
                .unwrap_or(k);
            out.push_str(&format!(" {label:>12}"));
        }
        out.push('\n');
        for f in &frames {
            out.push_str(&format!(
                "  {:<13}",
                window_label(f.start_us, f.end_us, hour)
            ));
            for k in &stale_keys {
                let cell = f
                    .series
                    .get(*k)
                    .and_then(|s| s.p99_us())
                    .map(|us| format!("{:.1}", us as f64 / 1e6))
                    .unwrap_or_else(|| "-".into());
                out.push_str(&format!(" {cell:>12}"));
            }
            out.push('\n');
        }
    }
    out
}

/// The full report: per-run timelines, the violation list, and a final
/// verdict line.
pub fn render(input: &HealthInput) -> String {
    let mut out = String::from("health-report: windowed telemetry timelines\n\n");
    for run in input.runs() {
        out.push_str(&render_run(input, run));
        out.push('\n');
    }
    if input.violations.is_empty() {
        out.push_str("SLO violations: none\n");
    } else {
        out.push_str(&format!("SLO violations ({}):\n", input.violations.len()));
        for v in &input.violations {
            let run = if v.run.is_empty() { "(main)" } else { &v.run };
            out.push_str(&format!(
                "  {:<13} {:<22} {:<40} value {:.3} vs {:.3}  run {}\n",
                window_label(
                    v.win_start_us,
                    v.win_end_us,
                    v.win_start_us % 3_600_000_000 == 0
                ),
                v.rule,
                v.series,
                v.value,
                v.threshold,
                run,
            ));
        }
    }
    out.push_str(&format!("{}\n", verdict(input)));
    out
}

/// One-line verdict: `health: OK ...` or `health: FAIL ...`.
pub fn verdict(input: &HealthInput) -> String {
    if input.violations.is_empty() {
        format!(
            "health: OK — {} window(s), no SLO violations",
            input.frames.len()
        )
    } else {
        format!(
            "health: FAIL — {} violation(s) across rules: {}",
            input.violations.len(),
            input.rules_violated().join(", ")
        )
    }
}

/// The scorecard `health` section: window count, violation count, and
/// the distinct rules that fired. Excluded from the determinism
/// fingerprint (it is advisory context, not a gated count), though for
/// virtual-time experiments it is in fact seed-pure.
pub fn health_json(input: &HealthInput) -> JsonValue {
    let mut v = JsonValue::obj();
    v.set("windows", input.frames.len());
    v.set("violations", input.violations.len());
    v.set(
        "rules_violated",
        JsonValue::Arr(
            input
                .rules_violated()
                .into_iter()
                .map(JsonValue::from)
                .collect(),
        ),
    );
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_obs::timeseries::SeriesSample;
    use std::collections::BTreeMap;

    fn frame(run: &str, w: u64, series: &[(&str, SeriesSample)]) -> Frame {
        Frame {
            start_us: w * 3_600_000_000,
            end_us: (w + 1) * 3_600_000_000,
            run: run.into(),
            skipped: 0,
            series: series
                .iter()
                .map(|(k, s)| (k.to_string(), s.clone()))
                .collect(),
        }
    }

    fn sample_lines() -> String {
        let f0 = frame(
            "rate=0.6",
            0,
            &[
                ("client.reports.queued{x=a}", SeriesSample::Count(10)),
                ("client.reports.posted", SeriesSample::Count(2)),
                (
                    "client.report_queue_depth{client=1}",
                    SeriesSample::Gauge {
                        last: 8,
                        min: 0,
                        max: 10,
                    },
                ),
                (
                    "store.ingest.staleness_us{asn=7}",
                    SeriesSample::Digest {
                        count: 2,
                        sum_us: 4_000_000,
                        min_us: 1_000_000,
                        max_us: 3_000_000,
                        p50_us: 1_000_000,
                        p90_us: 3_000_000,
                        p99_us: 3_000_000,
                    },
                ),
            ],
        );
        let f1 = frame(
            "rate=0.6",
            1,
            &[
                ("client.reports.queued{x=a}", SeriesSample::Count(0)),
                ("client.reports.posted", SeriesSample::Count(5)),
            ],
        );
        let v = Violation {
            rule: "report.delivery.fast".into(),
            series: "client.reports.posted".into(),
            win_start_us: 3_600_000_000,
            win_end_us: 7_200_000_000,
            windows: 2,
            value: 0.7,
            threshold: 0.9,
            run: "rate=0.6".into(),
        };
        [
            f0.to_event().to_json().to_string_compact(),
            // Unrelated events are tolerated and skipped.
            r#"{"event":"progress","ts_us":1,"fields":{"msg":"x"}}"#.to_string(),
            f1.to_event().to_json().to_string_compact(),
            v.to_event().to_json().to_string_compact(),
        ]
        .join("\n")
    }

    #[test]
    fn parses_frames_violations_and_skips_noise() {
        let input = parse_jsonl(&sample_lines()).unwrap();
        assert_eq!(input.frames.len(), 2);
        assert_eq!(input.violations.len(), 1);
        assert_eq!(input.runs(), vec!["rate=0.6"]);
        assert!(parse_jsonl("not json").is_err());
    }

    #[test]
    fn render_shows_delivery_staleness_and_verdict() {
        let input = parse_jsonl(&sample_lines()).unwrap();
        let text = render(&input);
        assert!(text.contains("run rate=0.6: 2 window(s)"), "{text}");
        // Cumulative delivery: 2/10 after window 0, 7/10 after window 1.
        assert!(text.contains("0.200"), "{text}");
        assert!(text.contains("0.700"), "{text}");
        assert!(text.contains("asn=7"), "{text}");
        assert!(text.contains("3.0"), "staleness p99 secs: {text}");
        assert!(text.contains("report.delivery.fast"), "{text}");
        assert!(text.contains("health: FAIL"), "{text}");
    }

    #[test]
    fn clean_input_verdicts_ok() {
        let mut input = parse_jsonl(&sample_lines()).unwrap();
        input.violations.clear();
        assert!(verdict(&input).starts_with("health: OK"));
        assert!(render(&input).contains("SLO violations: none"));
    }

    #[test]
    fn expect_reports_missing_rules() {
        let input = parse_jsonl(&sample_lines()).unwrap();
        assert!(input
            .missing_expected(&["report.delivery.fast".into()])
            .is_empty());
        assert_eq!(
            input.missing_expected(&["client.coverage".into()]),
            vec!["client.coverage".to_string()]
        );
    }

    #[test]
    fn health_json_summarizes() {
        let input = parse_jsonl(&sample_lines()).unwrap();
        let h = health_json(&input);
        assert_eq!(h.get("windows").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(h.get("violations").and_then(JsonValue::as_u64), Some(1));
        assert!(h.to_string_compact().contains("report.delivery.fast"));
    }

    #[test]
    fn second_aligned_windows_render_in_seconds() {
        let f = Frame {
            start_us: 0,
            end_us: 5_000_000,
            run: String::new(),
            skipped: 0,
            series: BTreeMap::from([("client.reports.queued".to_string(), SeriesSample::Count(1))]),
        };
        let input = HealthInput {
            frames: vec![f],
            violations: vec![],
        };
        let text = render(&input);
        assert!(text.contains(")s"), "{text}");
        assert!(
            text.contains("(main)"),
            "empty run label placeholder: {text}"
        );
    }
}
