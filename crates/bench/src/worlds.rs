//! Standard experiment worlds.
//!
//! Every experiment builds its topology from these helpers so the
//! geography (anchored on the paper's Table 2 latencies), the page sizes
//! (YouTube homepage ~360 KB, the Fig. 1c porn page ~50 KB, the Fig. 5
//! 95 KB / 316 KB pages) and the censor profiles stay consistent across
//! tables and figures.

use csaw_censor::blocking::Category;
use csaw_censor::policy::CensorPolicy;
use csaw_circumvent::transports::StaticProxy;
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::time::SimDuration;
use csaw_simnet::topology::{AccessNetwork, Asn, Provider, Region, Site};

/// The front domain available in all worlds that include a CDN.
pub const FRONT: &str = "cdn-front.example";

/// Hostname of the YouTube stand-in.
pub const YOUTUBE: &str = "www.youtube.com";

/// Hostname of the Fig. 1c porn-page stand-in (~50 KB).
pub const PORN_PAGE: &str = "adult-content.example";

/// Hostname of the small unblocked page (95 KB, Fig. 5b).
pub const SMALL_PAGE: &str = "small.example";

/// Hostname of the larger unblocked page (316 KB, Fig. 5c).
pub const LARGE_PAGE: &str = "large.example";

/// Base sites present in every standard world.
fn standard_sites(
    builder: csaw_circumvent::world::WorldBuilder,
) -> csaw_circumvent::world::WorldBuilder {
    builder
        .site(
            // Table 2: ping to YouTube from the vantage was 186 ms.
            SiteSpec::new(YOUTUBE, Site::at_vantage_rtt(Region::UsEast, 186))
                .category(Category::Video)
                .frontable(true)
                .serves_by_ip(true)
                .default_page(360_000, 20),
        )
        .site(SiteSpec::new(FRONT, Site::in_region(Region::Singapore)))
        .site(
            SiteSpec::new(PORN_PAGE, Site::in_region(Region::Netherlands))
                .category(Category::Porn)
                .serves_by_ip(true)
                .default_page(50_000, 4),
        )
        .site(
            SiteSpec::new(SMALL_PAGE, Site::in_region(Region::UsEast))
                .serves_by_ip(true)
                .default_page(95_000, 6),
        )
        .site(
            SiteSpec::new(LARGE_PAGE, Site::in_region(Region::UsEast))
                .serves_by_ip(true)
                .default_page(316_000, 14),
        )
        .site(
            SiteSpec::new("twitter.com", Site::in_region(Region::UsEast))
                .category(Category::Social)
                .frontable(true)
                .default_page(250_000, 16),
        )
        .site(
            SiteSpec::new("instagram.com", Site::in_region(Region::UsEast))
                .category(Category::Social)
                .frontable(true)
                .default_page(300_000, 18),
        )
}

/// A single-homed world behind one censoring ISP.
pub fn single_isp_world(asn: Asn, name: &str, policy: CensorPolicy) -> World {
    let provider = Provider::new(asn, name);
    let access = AccessNetwork::single(provider);
    standard_sites(World::builder(access))
        .censor(asn, policy)
        .build()
}

/// A world with no censorship (control condition).
pub fn clean_world() -> World {
    let provider = Provider::new(Asn(64500), "ISP-CLEAN");
    standard_sites(World::builder(AccessNetwork::single(provider))).build()
}

/// The paper's case-study vantage: a University multihomed over ISP-A and
/// ISP-B (§2.3), each with its Table 1 policy.
pub fn multihomed_university_world() -> World {
    let a = Provider::new(csaw_censor::ISP_A_ASN, "ISP-A");
    let b = Provider::new(csaw_censor::ISP_B_ASN, "ISP-B");
    let access = AccessNetwork::multihomed(vec![(a, 1.0), (b, 1.0)]);
    standard_sites(World::builder(access))
        .censor(csaw_censor::ISP_A_ASN, csaw_censor::isp_a())
        .censor(csaw_censor::ISP_B_ASN, csaw_censor::isp_b())
        .build()
}

/// The ten static proxies of Figure 1a / Table 2, with the paper's
/// measured RTTs. Germany-1, UK and Japan are flaky (wide PLT variance —
/// "either real-time on-path congestion or high load at the proxy").
pub fn static_proxies() -> Vec<StaticProxy> {
    let flaky = |p: StaticProxy| p.congested(0.35, SimDuration::from_secs(6));
    vec![
        flaky(StaticProxy::at(
            "UK",
            Site::at_vantage_rtt(Region::UnitedKingdom, 228),
        )),
        StaticProxy::at(
            "Netherlands",
            Site::at_vantage_rtt(Region::Netherlands, 172),
        ),
        flaky(StaticProxy::at(
            "Japan",
            Site::at_vantage_rtt(Region::Japan, 387),
        )),
        StaticProxy::at("US-1", Site::at_vantage_rtt(Region::UsCentral, 329)),
        StaticProxy::at("US-2", Site::at_vantage_rtt(Region::UsWest, 429)),
        StaticProxy::at("US-3", Site::at_vantage_rtt(Region::UsEast, 160)),
        flaky(StaticProxy::at(
            "Germany-1",
            Site::at_vantage_rtt(Region::Germany, 309),
        )),
        StaticProxy::at("Germany-2", Site::at_vantage_rtt(Region::Germany, 174)),
        StaticProxy::at("France-1", Site::at_vantage_rtt(Region::France, 210)),
        StaticProxy::at("France-2", Site::at_vantage_rtt(Region::France, 250)),
    ]
}

/// The 16 ASes of the pilot study (Table 7), AS numbers drawn from the
/// paper's §7.5 snapshot plus plausible Pakistani ASNs.
pub fn pilot_asns() -> Vec<Asn> {
    vec![
        Asn(17557),
        Asn(38193),
        Asn(59257),
        Asn(45773),
        Asn(9541),
        Asn(23674),
        Asn(45595),
        Asn(132165),
        Asn(58895),
        Asn(38710),
        Asn(7590),
        Asn(138423),
        Asn(136030),
        Asn(24499),
        Asn(45669),
        Asn(138827),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_worlds_have_the_anchors() {
        let w = clean_world();
        for host in [YOUTUBE, FRONT, PORN_PAGE, SMALL_PAGE, LARGE_PAGE] {
            assert!(w.site(host).is_some(), "{host} missing");
        }
        let yt = w.site(YOUTUBE).unwrap();
        assert!(yt.frontable);
        // 360 KB ± wobble.
        let url = csaw_webproto::Url::parse("http://www.youtube.com/").unwrap();
        let page = yt.page_for(&url);
        assert!((page.total_bytes() as i64 - 360_000).abs() < 80_000);
    }

    #[test]
    fn ten_proxies_three_flaky() {
        let ps = static_proxies();
        assert_eq!(ps.len(), 10);
        let flaky = ps.iter().filter(|p| p.congestion_p > 0.0).count();
        assert_eq!(flaky, 3);
    }

    #[test]
    fn sixteen_pilot_asns_distinct() {
        let asns = pilot_asns();
        assert_eq!(asns.len(), 16);
        let distinct: std::collections::HashSet<Asn> = asns.iter().copied().collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn multihomed_world_flags() {
        let w = multihomed_university_world();
        assert!(w.access.is_multihomed());
        assert!(w.censor(csaw_censor::ISP_A_ASN).is_some());
        assert!(w.censor(csaw_censor::ISP_B_ASN).is_some());
    }
}
