//! Figure 6: (a) how many redundant requests are enough, and (b) the
//! URL-aggregation saving.
//!
//! **(a)** duplicates of an uncensored fetch ride *separate Tor
//! circuits*; the client takes the earliest copy. Going 1→2 improves the
//! median ~30%; going 2→3 buys nothing at the median and fattens the p95
//! (~+17% in the paper) through client load.
//!
//! **(b)** an Alexa-top-15 browse session with and without aggregation;
//! the paper measured ~55% fewer local-DB records.

use crate::runner::{self, Experiment, TrialSpec};
use crate::stats::Cdf;
use crate::workload::alexa15_session;
use csaw::local::{LocalDb, Status};
use csaw::measure::{measure_direct, DetectConfig, MeasuredStatus};
use csaw_censor::policy::{CensorPolicy, CensorRule, TargetMatcher};
use csaw_censor::HttpAction;
use csaw_circumvent::tor::TorClient;
use csaw_circumvent::transports::{FetchCtx, Transport};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{AccessNetwork, Asn, Provider, Region, Site};
use csaw_webproto::url::Url;

/// Fig. 6a result: PLT CDFs for 1, 2 and 3 redundant requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6a {
    /// "1 RReq.", "2 RReqs.", "3 RReqs.".
    pub series: Vec<Cdf>,
}

/// Run Fig. 6a: 200 rounds; each round sends `k` copies on fresh Tor
/// circuits and takes the fastest. Two concurrent Tor fetches barely tax
/// the client (they are slow, bandwidth-light flows); a third saturates
/// it — the calibration behind the paper's finding that the second copy
/// buys ~30% at the median while the third only fattens the p95 (+17%).
pub fn run_6a(seed: u64) -> Fig6a {
    run_6a_jobs(seed, 1)
}

/// Fig. 6a with its three redundancy levels (k = 1..3) as parallel
/// trials.
pub fn run_6a_jobs(seed: u64, jobs: usize) -> Fig6a {
    runner::run(&Fig6aExp { seed }, jobs)
}

/// Fig. 6a decomposed: one trial per redundancy level, each with its
/// historical `seed ^ (k << 9)` stream.
pub struct Fig6aExp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for Fig6aExp {
    type Trial = Cdf;
    type Output = Fig6a;

    fn name(&self) -> &'static str {
        "fig6a"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        (1usize..=3)
            .map(|k| {
                let label = if k == 1 {
                    "1 RReq.".to_string()
                } else {
                    format!("{k} RReqs.")
                };
                TrialSpec::salted(self.seed ^ (k as u64) << 9, k as u64 - 1, label)
            })
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> Cdf {
        let k = spec.ordinal as usize + 1;
        let world = crate::worlds::clean_world();
        let url = Url::parse(&format!("http://{}/", crate::worlds::YOUTUBE)).expect("static URL");
        let provider = world.access.providers()[0].clone();
        let mut rng = DetRng::new(spec.seed);
        let mut tor = TorClient::new();
        let mut plts = Vec::new();
        for round in 0..200u64 {
            let ctx = FetchCtx {
                now: SimTime::from_secs(round * 30),
                provider: provider.clone(),
            };
            let mut best: Option<SimDuration> = None;
            for _ in 0..k {
                tor.drop_circuit(); // each copy on its own circuit
                let r = tor.fetch(&world, &ctx, &url, &mut rng);
                if let Some(plt) = r.fetch().genuine_plt() {
                    best = Some(match best {
                        None => plt,
                        Some(b) => b.min(plt),
                    });
                }
            }
            if let Some(b) = best {
                // Client-load tax: mild at 2 copies, saturating at 3.
                let tax = match k {
                    1 => 1.0,
                    2 => 1.0 + rng.range_f64(0.0, 0.08),
                    _ => 1.0 + rng.range_f64(0.10, 0.90),
                };
                plts.push(b.mul_f64(tax));
            }
        }
        Cdf::of(&spec.label, &plts)
    }

    fn reduce(&self, trials: Vec<Cdf>) -> Fig6a {
        Fig6a { series: trials }
    }
}

impl Fig6a {
    /// A series by label.
    pub fn series(&self, label: &str) -> &Cdf {
        self.series
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("series {label} missing"))
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        format!(
            "Figure 6a: redundant requests over separate Tor circuits\n{}",
            Cdf::render_table(&self.series)
        )
    }
}

/// Fig. 6b result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig6b {
    /// Records without aggregation.
    pub without: usize,
    /// Records with aggregation.
    pub with: usize,
}

impl Fig6b {
    /// The record-count reduction, percent.
    pub fn reduction_pct(&self) -> f64 {
        crate::stats::reduction_pct(self.without as f64, self.with as f64)
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        format!(
            "Figure 6b: local_DB records — without aggregation: {}, with: {} ({:.1}% reduction)\n",
            self.without,
            self.with,
            self.reduction_pct()
        )
    }
}

/// Run Fig. 6b: browse the Alexa-top-15 session (20 URLs per site)
/// against a censor that page-blocks specific URLs on seven of the
/// sites (the "censors sometimes block only specific pages" case, §4.4),
/// recording every measurement into an aggregating and a
/// non-aggregating local DB.
pub fn run_6b(seed: u64) -> Fig6b {
    let session = alexa15_session(20);
    // Censor: on 7 sites, block each *visited derived URL* individually.
    let mut policy = CensorPolicy::new("F6B-ISP");
    for (_, urls) in session.iter().take(7) {
        for u in urls {
            policy = policy.with_rule(
                CensorRule::target(TargetMatcher::UrlPrefix(u.clone()))
                    .http(HttpAction::BlockPageRedirect),
            );
        }
    }
    let provider = Provider::new(Asn(5300), "F6B-ISP");
    let mut builder = World::builder(AccessNetwork::single(provider));
    for (host, _) in &session {
        builder = builder
            .site(SiteSpec::new(host, Site::in_region(Region::UsEast)).default_page(150_000, 8));
    }
    let world = builder.censor(Asn(5300), policy).build();
    let provider = world.access.providers()[0].clone();

    let ttl = SimDuration::from_secs(24 * 3600);
    let mut agg = LocalDb::new(ttl);
    let mut raw = LocalDb::without_aggregation(ttl);
    let mut rng = DetRng::new(seed);
    let now = SimTime::from_secs(1);
    for (_, urls) in &session {
        for u in urls {
            let m = measure_direct(
                &world,
                &provider,
                u,
                Some(150_000),
                &DetectConfig::default(),
                &mut rng,
            );
            let (status, stages) = match m.status {
                MeasuredStatus::Blocked => (Status::Blocked, m.stages.clone()),
                _ => (Status::NotBlocked, vec![]),
            };
            agg.record_measurement(u, provider.asn, now, status, stages.clone());
            raw.record_measurement(u, provider.asn, now, status, stages);
        }
    }
    Fig6b {
        without: raw.record_count(),
        with: agg.record_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_two_copies_help_three_hurt_the_tail() {
        let f = run_6a(31);
        let one = f.series("1 RReq.");
        let two = f.series("2 RReqs.");
        let three = f.series("3 RReqs.");
        // Median: 2 copies ~30% better than 1 (loose band 10–50%).
        let med_gain = crate::stats::reduction_pct(one.median(), two.median());
        assert!(
            (10.0..=50.0).contains(&med_gain),
            "median gain {med_gain:.1}% (1: {:.2}s, 2: {:.2}s)",
            one.median(),
            two.median()
        );
        // Median: 3 copies no better than 2 (within 15%).
        assert!(
            three.median() >= two.median() * 0.85,
            "3 copies median {:.2} much better than 2 {:.2}",
            three.median(),
            two.median()
        );
        // Tail: p95(3) worse than p95(2).
        assert!(
            three.pct(95.0) > two.pct(95.0),
            "p95(3) {:.2} <= p95(2) {:.2}",
            three.pct(95.0),
            two.pct(95.0)
        );
    }

    #[test]
    fn fig6b_aggregation_saves_about_half() {
        let f = run_6b(32);
        assert_eq!(f.without, 300, "15 sites x 20 URLs");
        let red = f.reduction_pct();
        assert!(
            (45.0..=65.0).contains(&red),
            "reduction {red:.1}% ({} -> {})",
            f.without,
            f.with
        );
    }
}
