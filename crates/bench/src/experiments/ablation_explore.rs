//! Ablation: the every-n-th-access exploration policy (§4.3.2).
//!
//! The paper's rationale: "To accommodate the case where, over time, a
//! circumvention approach may improve in PLTs, we use a randomly chosen
//! circumvention approach for every n = 5-th access." This ablation
//! constructs exactly that case — a nearby relay that is down at first
//! and comes up fast mid-run — and compares a client with exploration
//! (n = 5) against one without (n = ∞). The greedy client settled on the
//! steady-but-slow faraway relay during the outage and never looks back;
//! the exploring client rediscovers the recovered relay and its
//! steady-state PLT drops.

use crate::runner::{self, Experiment, TrialSpec};
use csaw::circum::selector::{BlockedFetch, Selector};
use csaw::config::UserPreference;
use csaw_censor::blocking::BlockingType;
use csaw_circumvent::fetch::FetchReport;
use csaw_circumvent::transports::{FetchCtx, Transport, TransportKind};
use csaw_circumvent::world::World;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{Region, Site};
use csaw_webproto::url::Url;

/// A relay that comes up mid-run: unreachable before `improves_at`,
/// fast afterwards — the "circumvention approach may improve in PLTs"
/// case the paper's n-th-access exploration exists for.
struct ImprovingRelay {
    name: &'static str,
    site: Site,
    improves_at: SimTime,
}

impl Transport for ImprovingRelay {
    fn name(&self) -> &str {
        self.name
    }
    fn kind(&self) -> TransportKind {
        TransportKind::Relay
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        if ctx.now < self.improves_at {
            return FetchReport {
                outcome: csaw_circumvent::outcome::FetchOutcome::Failed(
                    csaw_circumvent::outcome::FailureKind::TransportUnavailable,
                ),
                elapsed: SimDuration::from_millis(500),
                trace: Vec::new(),
                resource_failures: Vec::new(),
            };
        }
        csaw_circumvent::fetch::relay_fetch(
            world,
            &ctx.provider,
            &[self.site],
            url,
            SimDuration::from_millis(10),
            rng,
        )
    }
}

/// The ablation's outcome for one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// Exploration period (u32::MAX = never).
    pub explore_every: u32,
    /// Mean PLT over the post-improvement window (s).
    pub steady_state_mean_s: f64,
    /// How many post-improvement accesses used the recovered relay.
    pub recovered_relay_uses: usize,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreAblation {
    /// With exploration (n = 5).
    pub with: PolicyOutcome,
    /// Without exploration.
    pub without: PolicyOutcome,
}

fn run_policy(explore_every: u32, seed: u64) -> PolicyOutcome {
    // The blocked URL needs a relay (IP-level block, no fronting).
    let policy = csaw_censor::single_mechanism(
        "abl",
        crate::worlds::YOUTUBE,
        csaw_censor::DnsTamper::None,
        csaw_censor::IpAction::Drop,
        csaw_censor::HttpAction::None,
        csaw_censor::TlsAction::None,
    );
    let world =
        crate::worlds::single_isp_world(csaw_simnet::topology::Asn(5700), "ABL-ISP", policy);
    let url = Url::parse(&format!("http://{}/", crate::worlds::YOUTUBE)).expect("static URL");
    let improves_at = SimTime::from_secs(2_000);

    // Two relays: "nearby" is down until the improvement, then fast;
    // "faraway" is steady but slow. A greedy client settles on faraway
    // during the outage and — without exploration — never looks back.
    let transports: Vec<Box<dyn Transport + Send>> = vec![
        Box::new(ImprovingRelay {
            name: "nearby-relay",
            site: Site::in_region(Region::Singapore),
            improves_at,
        }),
        Box::new(csaw_circumvent::transports::StaticProxy::at(
            "faraway-relay",
            Site::in_region(Region::UsWest),
        )),
    ];
    let mut selector = Selector::new(transports, explore_every, 0.3, UserPreference::Performance);
    let provider = world.access.providers()[0].clone();
    let mut rng = DetRng::new(seed);
    let stages = [BlockingType::IpDrop];

    let mut post_plts = Vec::new();
    let mut recovered_uses = 0usize;
    for i in 0..120u64 {
        let now = SimTime::from_secs(i * 60);
        let ctx = FetchCtx {
            now,
            provider: provider.clone(),
        };
        let BlockedFetch {
            report,
            transport: name,
            ..
        } = selector.fetch_blocked(&world, &ctx, &url, &stages, &mut rng);
        if now >= improves_at + SimDuration::from_secs(1_200) {
            // Steady-state window, well past the improvement.
            if let Some(plt) = report.fetch().genuine_plt() {
                post_plts.push(plt.as_secs_f64());
            }
            if name == "nearby-relay" {
                recovered_uses += 1;
            }
        }
    }
    PolicyOutcome {
        explore_every,
        steady_state_mean_s: if post_plts.is_empty() {
            0.0
        } else {
            post_plts.iter().sum::<f64>() / post_plts.len() as f64
        },
        recovered_relay_uses: recovered_uses,
    }
}

/// The two compared policies: (n, label).
const POLICIES: [(u32, &str); 2] = [(5, "explore n=5"), (u32::MAX, "never explore")];

/// Run the ablation.
pub fn run(seed: u64) -> ExploreAblation {
    run_jobs(seed, 1)
}

/// The ablation with one runner trial per policy.
pub fn run_jobs(seed: u64, jobs: usize) -> ExploreAblation {
    runner::run(&ExploreExp { seed }, jobs)
}

/// The ablation decomposed: one trial per policy, both on the same seed
/// (the serial sweep ran both policies over identical draws).
pub struct ExploreExp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for ExploreExp {
    type Trial = PolicyOutcome;
    type Output = ExploreAblation;

    fn name(&self) -> &'static str {
        "ablation_explore"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        POLICIES
            .iter()
            .enumerate()
            .map(|(i, (_, label))| TrialSpec::salted(self.seed, i as u64, *label))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> PolicyOutcome {
        let (explore_every, _) = POLICIES[spec.ordinal as usize];
        run_policy(explore_every, spec.seed)
    }

    fn reduce(&self, trials: Vec<PolicyOutcome>) -> ExploreAblation {
        let mut it = trials.into_iter();
        ExploreAblation {
            with: it.next().expect("explore trial"),
            without: it.next().expect("never-explore trial"),
        }
    }
}

impl ExploreAblation {
    /// Text rendering.
    pub fn render(&self) -> String {
        format!(
            "Exploration ablation (§4.3.2, n = 5):\n  with exploration   : steady-state mean {:.2}s, recovered-relay uses {}\n  without exploration: steady-state mean {:.2}s, recovered-relay uses {}\n  Exploration lets the client rediscover a transport that improved mid-run.\n",
            self.with.steady_state_mean_s,
            self.with.recovered_relay_uses,
            self.without.steady_state_mean_s,
            self.without.recovered_relay_uses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploration_rediscovers_improved_relay() {
        let a = run(81);
        assert!(
            a.with.recovered_relay_uses > a.without.recovered_relay_uses,
            "with {} vs without {}",
            a.with.recovered_relay_uses,
            a.without.recovered_relay_uses
        );
        assert!(
            a.with.steady_state_mean_s < a.without.steady_state_mean_s,
            "with {:.2}s vs without {:.2}s",
            a.with.steady_state_mean_s,
            a.without.steady_state_mean_s
        );
    }

    #[test]
    fn without_exploration_sticks_to_first_impression() {
        let a = run(82);
        // The never-explore client found nearby-relay congested early and
        // should essentially never return to it.
        assert!(
            a.without.recovered_relay_uses <= 2,
            "{}",
            a.without.recovered_relay_uses
        );
    }
}
