//! Non-web filtering (the §8 future-work item, implemented): a messaging
//! app blocked with different UDP mechanisms across ASes, detected by the
//! paired direct/tunnel probe and circumvented through a VPN relay.

use crate::runner::{self, Experiment, TrialSpec};
use csaw::measure::nonweb::measure_udp_service;
use csaw::measure::MeasuredStatus;
use csaw_censor::blocking::UdpAction;
use csaw_censor::policy::{CensorPolicy, CensorRule, TargetMatcher};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::rng::DetRng;
use csaw_simnet::topology::{AccessNetwork, Asn, Provider, Region, Site};

/// One AS's measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct NonwebRow {
    /// AS label.
    pub asn: u32,
    /// Configured UDP mechanism (ground truth).
    pub configured: String,
    /// Measured verdict.
    pub verdict: String,
    /// Direct app RTT (ms), if the app got through.
    pub direct_rtt_ms: Option<u64>,
    /// Tunneled app RTT (ms) — the circumvention users fall back to.
    pub tunnel_rtt_ms: Option<u64>,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Nonweb {
    /// One row per AS.
    pub rows: Vec<NonwebRow>,
}

const SERVICE: &str = "messenger.example";

fn world_for(asn: Asn, action: UdpAction) -> World {
    let provider = Provider::new(asn, format!("nonweb-{asn}"));
    let mut policy = CensorPolicy::new(format!("udp-{asn}"));
    if action.is_active() {
        policy = policy
            .with_rule(CensorRule::target(TargetMatcher::DomainSuffix(SERVICE.into())).udp(action));
    }
    World::builder(AccessNetwork::single(provider))
        .site(
            SiteSpec::new(SERVICE, Site::in_region(Region::UsEast))
                .category(csaw_censor::Category::Social)
                .udp_service(3478),
        )
        .censor(asn, policy)
        .build()
}

const CASES: [(Asn, UdpAction, &str); 3] = [
    (Asn(9001), UdpAction::Drop, "UDP drop"),
    (Asn(9002), UdpAction::Throttle, "UDP throttle"),
    (Asn(9003), UdpAction::None, "none"),
];

/// Run the sweep: three ASes — one dropping the app's UDP, one throttling
/// it, one clean.
pub fn run(seed: u64) -> Nonweb {
    run_jobs(seed, 1)
}

/// The non-web sweep with one runner trial per AS.
pub fn run_jobs(seed: u64, jobs: usize) -> Nonweb {
    runner::run(&NonwebExp { seed }, jobs)
}

/// The sweep decomposed: one trial per AS, with the historical
/// `seed ^ asn` streams.
pub struct NonwebExp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for NonwebExp {
    type Trial = NonwebRow;
    type Output = Nonweb;

    fn name(&self) -> &'static str {
        "nonweb"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        CASES
            .iter()
            .enumerate()
            .map(|(i, (asn, _, label))| {
                TrialSpec::salted(
                    self.seed ^ asn.0 as u64,
                    i as u64,
                    format!("AS{} ({label})", asn.0),
                )
            })
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> NonwebRow {
        let (asn, action, label) = CASES[spec.ordinal as usize];
        let relay = Site::in_region(Region::Germany);
        let world = world_for(asn, action);
        let provider = world.access.providers()[0].clone();
        let mut rng = DetRng::new(spec.seed);
        let m = measure_udp_service(&world, &provider, relay, SERVICE, &mut rng);
        let verdict = match m.status {
            MeasuredStatus::Blocked => format!("blocked ({})", m.stages[0]),
            MeasuredStatus::NotBlocked => "not blocked".into(),
            MeasuredStatus::Inconclusive => "inconclusive".into(),
        };
        NonwebRow {
            asn: asn.0,
            configured: label.to_string(),
            verdict,
            direct_rtt_ms: m.direct_rtt.map(|d| d.as_millis()),
            tunnel_rtt_ms: m.tunnel_rtt.map(|d| d.as_millis()),
        }
    }

    fn reduce(&self, trials: Vec<NonwebRow>) -> Nonweb {
        Nonweb { rows: trials }
    }
}

impl Nonweb {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Non-web filtering (extension of §8): a messaging app across three ASes\n",
        );
        out.push_str(&format!(
            "  {:<8}{:<16}{:<26}{:>14}{:>14}\n",
            "AS", "configured", "measured", "direct(ms)", "tunnel(ms)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<8}{:<16}{:<26}{:>14}{:>14}\n",
                r.asn,
                r.configured,
                r.verdict,
                r.direct_rtt_ms
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.tunnel_rtt_ms
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_mechanisms_classified_correctly() {
        let n = run(91);
        assert_eq!(n.rows.len(), 3);
        let by_asn = |a: u32| n.rows.iter().find(|r| r.asn == a).unwrap();
        assert!(
            by_asn(9001).verdict.contains("UDP (drop)"),
            "{:?}",
            by_asn(9001)
        );
        assert!(
            by_asn(9002).verdict.contains("UDP (throttle)"),
            "{:?}",
            by_asn(9002)
        );
        assert_eq!(by_asn(9003).verdict, "not blocked");
        // Circumvention always delivers a usable tunnel RTT.
        for r in &n.rows {
            assert!(r.tunnel_rtt_ms.is_some(), "AS{}", r.asn);
            assert!(r.tunnel_rtt_ms.unwrap() < 2_000, "AS{}", r.asn);
        }
    }
}
