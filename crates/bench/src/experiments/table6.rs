//! Table 6: the cost of direct-path revalidation probability `p`.
//!
//! The paper (Tor as the circumvention approach, a blocked URL reported
//! via the global DB): median PLT rises from 5.6 s at p = 0 to 8.1 s at
//! p = 0.75, because each probe occupies the client concurrently with
//! the user's fetch — and a probe against, e.g., TCP/IP blocking lingers
//! for its whole 21 s detection window, taxing later requests too.

use crate::runner::{self, Experiment, TrialSpec};
use crate::stats::percentile;
use crate::worlds::{single_isp_world, YOUTUBE};
use csaw::measure::{measure_direct, DetectConfig};
use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
use csaw_circumvent::tor::TorClient;
use csaw_circumvent::transports::{FetchCtx, Transport};
use csaw_simnet::load::{InFlightTracker, LoadModel};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimTime;
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;

/// One sweep row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PRow {
    /// Revalidation probability.
    pub p: f64,
    /// Median PLT (s).
    pub median_s: f64,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Rows for p ∈ {0, 0.25, 0.5, 0.75}.
    pub rows: Vec<PRow>,
}

/// Run the sweep: a TCP/IP-blocked URL served via Tor, 200 accesses
/// 10 s apart; with probability `p` an access also launches a direct
/// probe that stays in flight for its full detection time.
///
/// The *same* sequence of Tor fetches underlies every `p` row (a paired
/// design): only the probe schedule varies, so the sweep isolates the
/// cost of revalidation rather than circuit luck.
pub fn run(seed: u64) -> Table6 {
    run_jobs(seed, 1)
}

/// Table 6 with one runner trial per revalidation probability.
pub fn run_jobs(seed: u64, jobs: usize) -> Table6 {
    runner::run(&Table6Exp { seed }, jobs)
}

/// The swept revalidation probabilities.
const PROBS: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

/// Table 6 decomposed: one trial per `p`. Each trial deterministically
/// *recomputes* the shared Tor base series from `seed` (and the probe
/// cost from `seed ^ 0xbeef`), so the paired design — every row built
/// on the identical fetch sequence — survives parallel execution
/// without any cross-trial state.
pub struct Table6Exp {
    /// Experiment seed.
    pub seed: u64,
}

impl Table6Exp {
    /// The 200-slot Tor base series and the probe detection time, both
    /// pure functions of the experiment seed.
    fn shared_inputs(
        &self,
    ) -> (
        csaw_circumvent::world::World,
        Vec<Option<csaw_simnet::time::SimDuration>>,
        csaw_simnet::time::SimDuration,
    ) {
        let policy = csaw_censor::single_mechanism(
            "T6",
            YOUTUBE,
            DnsTamper::None,
            IpAction::Drop,
            HttpAction::None,
            TlsAction::None,
        );
        let world = single_isp_world(Asn(5400), "T6-ISP", policy);
        let url = Url::parse(&format!("http://{YOUTUBE}/")).expect("static URL");
        let provider = world.access.providers()[0].clone();
        // Shared base series: 200 Tor fetches, one per access slot.
        let mut base_rng = DetRng::new(self.seed);
        let mut tor = TorClient::new();
        let mut bases = Vec::with_capacity(200);
        for i in 0..200u64 {
            let ctx = FetchCtx {
                now: SimTime::from_secs(i * 10),
                provider: provider.clone(),
            };
            let r = tor.fetch(&world, &ctx, &url, &mut base_rng);
            bases.push(r.fetch().genuine_plt());
        }
        // Probe cost is deterministic for IP blocking: the full 21 s
        // ladder (plus DNS); measure it once.
        let probe_time = {
            let mut rng = DetRng::new(self.seed ^ 0xbeef);
            measure_direct(
                &world,
                &provider,
                &url,
                Some(360_000),
                &DetectConfig::default(),
                &mut rng,
            )
            .detection_time
        };
        (world, bases, probe_time)
    }
}

impl Experiment for Table6Exp {
    type Trial = PRow;
    type Output = Table6;

    fn name(&self) -> &'static str {
        "table6"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        PROBS
            .iter()
            .enumerate()
            .map(|(i, p)| TrialSpec::salted(self.seed ^ p.to_bits(), i as u64, format!("p={p}")))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> PRow {
        let p = PROBS[spec.ordinal as usize];
        let (_world, bases, probe_time) = self.shared_inputs();
        let load = LoadModel::default();
        let mut rng = DetRng::new(spec.seed);
        let mut probes = InFlightTracker::new();
        let mut plts = Vec::new();
        for (i, base) in bases.iter().enumerate() {
            let now = SimTime::from_secs(i as u64 * 10);
            let Some(base) = *base else { continue };
            let mut concurrent = 1 + probes.in_flight_at(now.as_micros());
            if rng.chance(p) {
                probes.record(now.as_micros(), (now + probe_time).as_micros());
                concurrent += 1;
            }
            plts.push(load.inflate(base, concurrent, &mut rng));
        }
        PRow {
            p,
            median_s: percentile(&plts, 50.0).as_secs_f64(),
        }
    }

    fn reduce(&self, trials: Vec<PRow>) -> Table6 {
        Table6 { rows: trials }
    }
}

impl Table6 {
    /// The row for a given p.
    pub fn row(&self, p: f64) -> &PRow {
        self.rows
            .iter()
            .find(|r| (r.p - p).abs() < 1e-9)
            .expect("row exists")
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 6: revalidation probability p vs median PLT\n");
        out.push_str(&format!("  {:>6}{:>14}\n", "p", "median PLT(s)"));
        for r in &self.rows {
            out.push_str(&format!("  {:>6.2}{:>14.2}\n", r.p, r.median_s));
        }
        out.push_str("  (paper: 5.6 / 6.9 / 7.5 / 8.1)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_plt_monotone_in_p() {
        let t = run(61);
        assert_eq!(t.rows.len(), 4);
        for w in t.rows.windows(2) {
            assert!(
                w[1].median_s >= w[0].median_s,
                "p={} median {:.2} < p={} median {:.2}",
                w[1].p,
                w[1].median_s,
                w[0].p,
                w[0].median_s
            );
        }
        // Meaningful growth end-to-end (paper: 5.6 → 8.1, ~45%).
        let growth = t.row(0.75).median_s / t.row(0.0).median_s;
        assert!(
            (1.15..=2.5).contains(&growth),
            "p=0.75 vs p=0 growth {growth:.2}x"
        );
    }

    #[test]
    fn p_quarter_cost_is_moderate() {
        let t = run(62);
        let ratio = t.row(0.25).median_s / t.row(0.0).median_s;
        // The paper recommends p ≤ 0.25 as the sweet spot: some cost,
        // far from the p = 0.75 penalty.
        assert!((1.0..=1.6).contains(&ratio), "ratio {ratio:.2}");
    }
}
