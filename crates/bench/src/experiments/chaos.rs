//! `exp_chaos`: upload-pipeline delivery under injected faults.
//!
//! The paper's measurement value chain is only as good as the reports
//! that actually reach the global DB. This experiment arms the
//! deterministic fault layer (`csaw-faults`) against the store — write
//! failures, torn batches, download outages — plus client-side wire
//! corruption, and sweeps the fault rate. For each rate it reports the
//! delivery ratio, how stale records were by the time they landed
//! (posted − measured), and the client-side failure accounting.
//!
//! Each trial is processed in **global virtual-time order** (client
//! registrations, then time-sorted browse sessions, then round-robin
//! drain rounds), advancing the scope clock at every step. Under
//! `--window` that drives the windowed telemetry timeline: per-window
//! delivery, staleness, and backoff series with `run=rate=<r>` labels,
//! plus `slo.violation` events from the `SloSet::csaw_default` rules —
//! the input `health-report` renders and gates on.
//!
//! Two invariants are machine-checked (the `exp_chaos` binary exits
//! non-zero when either breaks, which is what the CI chaos job runs):
//!
//! - **zero silent loss**: `queued == posted + dropped + quarantined +
//!   pending` on every client, and the store holds exactly one record
//!   per report marked posted (URLs are unique per client);
//! - **determinism**: the rendered output is a pure function of the
//!   seed — the CI job diffs two same-seed runs byte-for-byte.

use crate::runner::{self, Experiment, TrialSpec};
use csaw::client::CsawClient;
use csaw::client::WireFault;
use csaw::config::CsawConfig;
use csaw::global::{ConfidenceFilter, ServerDb};
use csaw_censor::{profiles, Category};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_faults::{FaultProfile, FaultyBackend, OutageSchedule};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{AccessNetwork, Provider, Region, Site};
use csaw_store::ShardedStore;
use std::sync::Arc;

/// Experiment shape.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Clients per fault rate.
    pub clients: usize,
    /// Unique blocked URLs each client accesses (== reports queued,
    /// absent drops).
    pub urls_per_client: usize,
    /// Store-fault probabilities to sweep (write failure; torn writes
    /// and wire corruption are derived fractions of it).
    pub fault_rates: Vec<f64>,
    /// Post opportunities each client gets after its browsing burst.
    pub drain_rounds: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            clients: 6,
            urls_per_client: 8,
            fault_rates: vec![0.0, 0.1, 0.3, 0.5],
            drain_rounds: 24,
        }
    }
}

/// One swept fault rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Injected write-failure probability.
    pub fault_rate: f64,
    /// Reports ever queued across all clients.
    pub queued: u64,
    /// Reports the server durably accepted.
    pub posted: u64,
    /// Reports evicted by the queue bound.
    pub dropped: u64,
    /// Reports quarantined (poison / permanent rejects).
    pub quarantined: u64,
    /// Reports re-queued after torn writes.
    pub requeued: u64,
    /// Reports still pending when the horizon ran out.
    pub pending: u64,
    /// Failed post attempts (each armed a backoff).
    pub post_failures: u64,
    /// posted / queued.
    pub delivery_ratio: f64,
    /// Mean staleness of landed records, seconds (posted − measured).
    pub mean_staleness_s: f64,
    /// Records in the store at quiescence.
    pub store_records: usize,
    /// Did every client's accounting identity hold, with the store
    /// record count matching `posted`?
    pub accounted: bool,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Chaos {
    /// One row per swept fault rate.
    pub rows: Vec<ChaosRow>,
}

/// The censored single-ISP world the chaos and split-brain trials
/// browse (shared so both sweeps queue identical report workloads).
pub(crate) fn chaos_world() -> World {
    let provider = Provider::new(profiles::ISP_A_ASN, "isp");
    let access = AccessNetwork::single(provider);
    World::builder(access)
        .site(
            SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                .category(Category::Video)
                .frontable(true)
                .serves_by_ip(true)
                .default_page(360_000, 20),
        )
        .site(SiteSpec::new(
            "cdn-front.example",
            Site::in_region(Region::Singapore),
        ))
        .censor(profiles::ISP_A_ASN, profiles::isp_a())
        .build()
}

fn run_rate(seed: u64, cfg: &ChaosConfig, rate: f64) -> ChaosRow {
    // Frames closed during this trial carry the swept rate as their run
    // label, so health-report can attribute verdicts to config points.
    csaw_obs::current()
        .timeline
        .set_run(&format!("rate={rate}"));
    let world = chaos_world();
    let inner = Arc::new(ShardedStore::new(8).expect("shard count"));
    // The store also suffers hour-scale ingest outages so backoff gets
    // exercised on top of per-batch coin flips.
    let outages = OutageSchedule::generate(
        seed ^ 0xFA17,
        "chaos-ingest",
        SimDuration::from_secs(48 * 3600),
        SimDuration::from_secs(6 * 3600),
        SimDuration::from_secs((1.0 + rate * 3_600.0) as u64),
    );
    let faulty = Arc::new(FaultyBackend::new(
        inner,
        FaultProfile::none()
            .with_write_fail_p(rate)
            .with_torn_write_p(rate / 2.0)
            .with_ingest_outages(outages),
        seed ^ (rate * 1e4) as u64,
    ));
    let server = ServerDb::builder(seed)
        .backend(faulty.clone())
        .build()
        .expect("store config");

    // The trial is processed in global virtual-time order — every step
    // advances the scope clock (and with it the telemetry timeline), so
    // windowed series see queueing, failures, and recovery in the order
    // a wall-clock deployment would, not client-by-client.

    // Phase 1: registrations, one client per virtual second.
    let mut clients: Vec<CsawClient> = (0..cfg.clients)
        .map(|idx| {
            let mut c = CsawClient::new(
                CsawConfig::default().with_report_backoff(
                    SimDuration::from_secs(60),
                    SimDuration::from_secs(1_800),
                    0.1,
                ),
                Some("cdn-front.example"),
                seed ^ ((idx as u64 + 1) << 8),
            );
            // A slice of posts is corrupted on the wire too (transient:
            // the reports themselves are fine, so retries recover them).
            c.arm_wire_fault(WireFault::new(rate / 4.0, seed ^ (idx as u64) << 3));
            let t = SimTime::from_secs(idx as u64);
            csaw_obs::advance_clock_us(t.as_micros());
            c.register(&server, profiles::ISP_A_ASN, t, 0.0)
                .expect("registration");
            c
        })
        .collect();

    // Phase 2: browse sessions, interleaved across clients in firing
    // order. Client idx starts at 100 + 7·idx and revisits every 30 s,
    // exactly the per-client cadence the sweep always used — only the
    // processing order changed, to be globally time-sorted.
    let mut browse: Vec<(u64, usize, usize)> = Vec::new();
    for idx in 0..cfg.clients {
        for u in 0..cfg.urls_per_client {
            browse.push((100 + 7 * idx as u64 + 30 * u as u64, idx, u));
        }
    }
    browse.sort_unstable();
    let mut browse_end = SimTime::ZERO;
    for (t_secs, idx, u) in browse {
        let now = SimTime::from_secs(t_secs);
        browse_end = browse_end.max(now);
        csaw_obs::advance_clock_us(now.as_micros());
        faulty.set_now(now);
        let url = csaw_webproto::url::Url::parse(&format!("http://www.youtube.com/c{idx}/u{u}"))
            .expect("static url");
        clients[idx].request(&world, &url, now);
    }

    // Phase 3: drain rounds, round-robin — every client still pending
    // gets one post opportunity per round, 2 000 s apart (longer than
    // the 1 800 s backoff cap, so no round is wasted on a cooldown).
    for r in 0..cfg.drain_rounds {
        if clients.iter().all(|c| c.pending_reports() == 0) {
            break;
        }
        let now = browse_end + SimDuration::from_secs(2_000 * (r as u64 + 1));
        csaw_obs::advance_clock_us(now.as_micros());
        faulty.set_now(now);
        for c in clients.iter_mut() {
            if c.pending_reports() == 0 {
                continue;
            }
            c.post_reports(&server, now);
        }
    }

    let mut queued = 0u64;
    let mut posted = 0u64;
    let mut dropped = 0u64;
    let mut quarantined = 0u64;
    let mut requeued = 0u64;
    let mut pending = 0u64;
    let mut post_failures = 0u64;
    let mut accounted = true;
    for c in &clients {
        queued += c.stats.reports_queued;
        posted += c.stats.reports_posted;
        dropped += c.stats.reports_dropped;
        quarantined += c.stats.reports_quarantined;
        requeued += c.stats.reports_requeued;
        pending += c.pending_reports() as u64;
        post_failures += c.stats.post_failures;
        let identity = c.stats.reports_queued
            == c.stats.reports_posted
                + c.stats.reports_dropped
                + c.stats.reports_quarantined
                + c.pending_reports() as u64;
        accounted &= identity;
    }

    // Staleness over everything that landed. URLs are unique per
    // client, so the record count must equal the posted count — a
    // record marked posted but missing (loss) or present twice
    // (duplicate) both break the equality.
    let store_records = faulty.inner().record_count();
    accounted &= store_records as u64 == posted;
    let recs = faulty
        .inner()
        .blocked_for_as(profiles::ISP_A_ASN, &ConfidenceFilter::default())
        .expect("the wrapped in-memory backend cannot fail");
    let mean_staleness_s = if recs.is_empty() {
        0.0
    } else {
        let total: u64 = recs
            .iter()
            .map(|r| r.posted_at.duration_since(r.measured_at).as_micros())
            .sum();
        total as f64 / recs.len() as f64 / 1e6
    };

    ChaosRow {
        fault_rate: rate,
        queued,
        posted,
        dropped,
        quarantined,
        requeued,
        pending,
        post_failures,
        delivery_ratio: if queued == 0 {
            1.0
        } else {
            posted as f64 / queued as f64
        },
        mean_staleness_s,
        store_records,
        accounted,
    }
}

/// Run the sweep.
pub fn run(seed: u64, cfg: &ChaosConfig) -> Chaos {
    run_jobs(seed, cfg, 1)
}

/// The sweep with one runner trial per fault rate.
pub fn run_jobs(seed: u64, cfg: &ChaosConfig, jobs: usize) -> Chaos {
    runner::run(
        &ChaosExp {
            seed,
            cfg: cfg.clone(),
        },
        jobs,
    )
}

/// The sweep decomposed: one trial per fault rate. `run_rate` already
/// salts every internal stream with the rate, so each trial carries the
/// raw experiment seed.
pub struct ChaosExp {
    /// Experiment seed.
    pub seed: u64,
    /// Experiment shape.
    pub cfg: ChaosConfig,
}

impl Experiment for ChaosExp {
    type Trial = ChaosRow;
    type Output = Chaos;

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        self.cfg
            .fault_rates
            .iter()
            .enumerate()
            .map(|(i, rate)| TrialSpec::salted(self.seed, i as u64, format!("rate={rate}")))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> ChaosRow {
        let rate = self.cfg.fault_rates[spec.ordinal as usize];
        run_rate(spec.seed, &self.cfg, rate)
    }

    fn reduce(&self, trials: Vec<ChaosRow>) -> Chaos {
        Chaos { rows: trials }
    }
}

impl Chaos {
    /// True when any row shows silent loss (accounting identity or the
    /// store/posted equality broken).
    pub fn silent_loss(&self) -> bool {
        self.rows.iter().any(|r| !r.accounted)
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "exp_chaos: report delivery under injected store faults\n\
             (write-fail p = rate, torn-write p = rate/2, wire-corrupt p = rate/4,\n\
             plus seeded ingest outages; clients retry with exponential backoff)\n\n\
             rate   queued  posted  requeued  dropped  quar  pending  failures  delivery  staleness(s)  accounted\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<6.2} {:>6}  {:>6}  {:>8}  {:>7}  {:>4}  {:>7}  {:>8}  {:>8.3}  {:>12.1}  {}\n",
                r.fault_rate,
                r.queued,
                r.posted,
                r.requeued,
                r.dropped,
                r.quarantined,
                r.pending,
                r.post_failures,
                r.delivery_ratio,
                r.mean_staleness_s,
                if r.accounted { "yes" } else { "NO" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ChaosConfig {
        ChaosConfig {
            clients: 3,
            urls_per_client: 4,
            fault_rates: vec![0.0, 0.3],
            drain_rounds: 20,
        }
    }

    #[test]
    fn no_silent_loss_at_thirty_percent() {
        let c = run(1, &quick_cfg());
        assert!(!c.silent_loss(), "{}", c.render());
        // With enough drain rounds every report lands.
        for row in &c.rows {
            assert_eq!(row.pending, 0, "{}", c.render());
            assert!((row.delivery_ratio - 1.0).abs() < 1e-9);
        }
        // The faulted row actually saw failures and later staleness.
        assert!(c.rows[1].post_failures > 0);
        assert!(c.rows[1].mean_staleness_s >= c.rows[0].mean_staleness_s);
    }

    #[test]
    fn same_seed_same_render() {
        let a = run(7, &quick_cfg()).render();
        let b = run(7, &quick_cfg()).render();
        assert_eq!(a, b);
    }

    /// Run the sweep under hour windows + the full C-Saw SLO set (the
    /// exp_chaos binary's configuration) and return the frame JSONL and
    /// violation JSONL streams the sink saw.
    fn windowed_run(seed: u64, cfg: &ChaosConfig, jobs: usize) -> (String, Vec<String>) {
        use csaw_obs::slo::VIOLATION_EVENT;
        use csaw_obs::{ManualClock, ObsCtx, RingSink, SloSet, WindowCfg, FRAME_EVENT};
        use std::sync::Arc;

        let ring = Arc::new(RingSink::new(1 << 16));
        let ctx = Arc::new(
            ObsCtx::new()
                .with_clock(Arc::new(ManualClock::new()))
                .with_sink(ring.clone()),
        );
        ctx.timeline.configure(WindowCfg::from_secs(
            3_600.0,
            Arc::new(SloSet::csaw_default()),
        ));
        let _guard = csaw_obs::install(ctx.clone());
        let _ = run_jobs(seed, cfg, jobs);
        ctx.flush_timeline();
        let mut frames = Vec::new();
        let mut viols = Vec::new();
        for e in ring.drain() {
            let line = e.to_json().to_string_compact();
            if e.name == FRAME_EVENT {
                frames.push(line);
            } else if e.name == VIOLATION_EVENT {
                viols.push(line);
            }
        }
        (frames.join("\n"), viols)
    }

    #[test]
    fn frames_and_verdicts_are_jobs_invariant() {
        // Same seed, serial vs parallel: the health telemetry stream
        // must be byte-identical and the SLO verdicts identical — the
        // merge replays trial events in ordinal order regardless of
        // which worker finished first.
        let (frames_1, viols_1) = windowed_run(11, &quick_cfg(), 1);
        let (frames_2, viols_2) = windowed_run(11, &quick_cfg(), 2);
        assert!(!frames_1.is_empty(), "windowed sweep must emit frames");
        assert_eq!(frames_1, frames_2, "frames must not depend on --jobs");
        assert_eq!(viols_1, viols_2, "verdicts must not depend on --jobs");
    }

    #[test]
    fn delivery_slo_fires_at_sixty_percent_and_not_at_zero() {
        let cfg_at = |rate: f64| ChaosConfig {
            fault_rates: vec![rate],
            ..quick_cfg()
        };
        // Healthy leg: every report lands within the first window, so
        // no rule may fire — a false alarm here is an alerting bug.
        let (_, clean) = windowed_run(1, &cfg_at(0.0), 1);
        assert!(
            clean.is_empty(),
            "no faults must mean no violations: {clean:?}"
        );
        // Faulted leg: 60 % write failures stretch delivery over many
        // windows, so the fast delivery-ratio rule must alert, tagged
        // with the trial's run label.
        let (_, viols) = windowed_run(1, &cfg_at(0.6), 1);
        assert!(
            viols.iter().any(|v| v.contains("report.delivery.fast")),
            "60 % faults must fire the delivery SLO: {viols:?}"
        );
        assert!(
            viols.iter().all(|v| v.contains("rate=0.6")),
            "violations must carry the trial run label: {viols:?}"
        );
    }
}
