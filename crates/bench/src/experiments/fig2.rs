//! Figure 2: fraction of blocking types across ISPs in Yemen, Indonesia,
//! Vietnam and Kyrgyzstan (ONI data in the paper). We install each AS's
//! mixture as a censor policy over a 100-domain universe, measure every
//! domain with the C-Saw detector, and report the *recovered* fractions —
//! closing the loop between censor configuration and client-side
//! classification.

use crate::runner::{self, Experiment, TrialSpec};
use csaw::measure::{measure_direct, DetectConfig, MeasuredStatus};
use csaw_censor::blocking::BlockingType;
use csaw_censor::oni::{figure2_mixtures, policy_from_mixture, AsMixture, OniCategory};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::rng::DetRng;
use csaw_simnet::topology::{AccessNetwork, Provider, Region, Site};
use csaw_webproto::url::Url;

/// Recovered fractions for one AS.
#[derive(Debug, Clone, PartialEq)]
pub struct AsBar {
    /// Country label.
    pub country: String,
    /// AS number.
    pub asn: u32,
    /// Configured fractions (ground truth mixture).
    pub configured: [f64; 5],
    /// Fractions recovered by the detector.
    pub recovered: [f64; 5],
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// One bar per AS, in the figure's order.
    pub bars: Vec<AsBar>,
}

/// Map detector stages to the ONI category of Figure 2.
pub fn classify_oni(stages: &[BlockingType]) -> Option<OniCategory> {
    // Priority mirrors ONI's coding: DNS first, then transport, then
    // block pages.
    if stages.contains(&BlockingType::DnsNoResponse)
        || stages.contains(&BlockingType::DnsNxdomain)
        || stages.contains(&BlockingType::DnsServfail)
        || stages.contains(&BlockingType::DnsRefused)
    {
        return Some(OniCategory::NoDns);
    }
    if stages.contains(&BlockingType::DnsHijack) {
        return Some(OniCategory::DnsRedir);
    }
    if stages.contains(&BlockingType::HttpRst)
        || stages.contains(&BlockingType::IpRst)
        || stages.contains(&BlockingType::SniRst)
    {
        return Some(OniCategory::Rst);
    }
    if stages.contains(&BlockingType::HttpDrop)
        || stages.contains(&BlockingType::IpDrop)
        || stages.contains(&BlockingType::SniDrop)
    {
        return Some(OniCategory::NoHttpResp);
    }
    if stages.contains(&BlockingType::HttpBlockPageRedirect)
        || stages.contains(&BlockingType::HttpBlockPageInline)
    {
        return Some(OniCategory::BlockPageWoRedir);
    }
    None
}

fn world_for(mix: &AsMixture, domains: &[String]) -> World {
    let provider = Provider::new(mix.asn, format!("{}-{}", mix.country, mix.asn));
    let mut builder = World::builder(AccessNetwork::single(provider));
    for d in domains {
        builder = builder
            .site(SiteSpec::new(d, Site::in_region(Region::UsEast)).default_page(120_000, 8));
    }
    builder
        .censor(mix.asn, policy_from_mixture(mix, domains))
        .build()
}

/// Run the Figure 2 sweep: 100 censored domains per AS.
pub fn run(seed: u64) -> Fig2 {
    run_jobs(seed, 1)
}

/// Fig. 2 with one trial per AS mixture fanned across `jobs` workers.
pub fn run_jobs(seed: u64, jobs: usize) -> Fig2 {
    runner::run(&Fig2Exp { seed }, jobs)
}

/// Fig. 2 decomposed: one trial per AS mixture, each with its
/// historical `seed ^ asn` stream.
pub struct Fig2Exp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for Fig2Exp {
    type Trial = AsBar;
    type Output = Fig2;

    fn name(&self) -> &'static str {
        "fig2"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        figure2_mixtures()
            .into_iter()
            .enumerate()
            .map(|(i, mix)| {
                TrialSpec::salted(
                    self.seed ^ mix.asn.0 as u64,
                    i as u64,
                    format!("{} AS{}", mix.country, mix.asn.0),
                )
            })
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> AsBar {
        let mix = figure2_mixtures()
            .into_iter()
            .nth(spec.ordinal as usize)
            .expect("mixture index in range");
        let domains: Vec<String> = (0..100)
            .map(|i| format!("censored-{i:03}.{}", mix.country.to_ascii_lowercase()))
            .collect();
        let world = world_for(&mix, &domains);
        let provider = world.access.providers()[0].clone();
        let mut rng = DetRng::new(spec.seed);
        let mut counts = [0usize; 5];
        let mut classified = 0usize;
        for d in &domains {
            let url = Url::parse(&format!("http://{d}/")).expect("static URL");
            let m = measure_direct(
                &world,
                &provider,
                &url,
                Some(120_000),
                &DetectConfig::default(),
                &mut rng,
            );
            if m.status == MeasuredStatus::Blocked {
                if let Some(cat) = classify_oni(&m.stages) {
                    let idx = OniCategory::ALL
                        .iter()
                        .position(|c| *c == cat)
                        .expect("category in ALL");
                    counts[idx] += 1;
                    classified += 1;
                }
            }
        }
        let recovered = counts.map(|c| c as f64 / classified.max(1) as f64);
        AsBar {
            country: mix.country.to_string(),
            asn: mix.asn.0,
            configured: mix.fractions,
            recovered,
        }
    }

    fn reduce(&self, trials: Vec<AsBar>) -> Fig2 {
        Fig2 { bars: trials }
    }
}

impl Fig2 {
    /// Text rendering (stacked-bar analogue).
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 2: blocking-type fractions per AS (recovered)\n");
        out.push_str(&format!("  {:<24}", "AS"));
        for c in OniCategory::ALL {
            out.push_str(&format!("{:>22}", c.label()));
        }
        out.push('\n');
        for b in &self.bars {
            out.push_str(&format!("  {:<24}", format!("{} AS{}", b.country, b.asn)));
            for (i, _) in OniCategory::ALL.iter().enumerate() {
                out.push_str(&format!(
                    "{:>22}",
                    format!("{:.2} ({:.2})", b.recovered[i], b.configured[i])
                ));
            }
            out.push('\n');
        }
        out.push_str("  (recovered fraction, configured mixture in parentheses)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovered_matches_configured_within_tolerance() {
        let f = run(11);
        assert_eq!(f.bars.len(), 8);
        for b in &f.bars {
            for i in 0..5 {
                let err = (b.recovered[i] - b.configured[i]).abs();
                assert!(
                    err < 0.10,
                    "{} AS{} cat {}: recovered {:.2} configured {:.2}",
                    b.country,
                    b.asn,
                    i,
                    b.recovered[i],
                    b.configured[i]
                );
            }
        }
    }

    #[test]
    fn country_stories_hold() {
        let f = run(12);
        // Yemen (AS30873): NoHttpResp dominates.
        let yemen = f.bars.iter().find(|b| b.asn == 30873).unwrap();
        let no_http_idx = 2;
        assert!(yemen.recovered[no_http_idx] > 0.45);
        // Vietnam ASes: DNS-dominated (NoDns largest).
        for b in f.bars.iter().filter(|b| b.country == "Vietnam") {
            let max_idx = (0..5)
                .max_by(|a, c| b.recovered[*a].partial_cmp(&b.recovered[*c]).unwrap())
                .unwrap();
            assert!(max_idx == 0 || max_idx == 2, "{}: max at {max_idx}", b.asn);
        }
        // Kyrgyz ASes lean on RST + block pages.
        for b in f.bars.iter().filter(|b| b.country == "Kyrgyzstan") {
            assert!(b.recovered[3] + b.recovered[4] > 0.5, "AS{}", b.asn);
        }
    }

    #[test]
    fn oni_classification_priorities() {
        use BlockingType::*;
        assert_eq!(classify_oni(&[DnsServfail]), Some(OniCategory::NoDns));
        assert_eq!(classify_oni(&[DnsHijack]), Some(OniCategory::DnsRedir));
        assert_eq!(classify_oni(&[HttpRst]), Some(OniCategory::Rst));
        assert_eq!(classify_oni(&[SniDrop]), Some(OniCategory::NoHttpResp));
        assert_eq!(
            classify_oni(&[HttpBlockPageInline]),
            Some(OniCategory::BlockPageWoRedir)
        );
        // DNS takes precedence in multi-stage observations.
        assert_eq!(
            classify_oni(&[DnsServfail, IpDrop]),
            Some(OniCategory::NoDns)
        );
        assert_eq!(classify_oni(&[]), None);
    }
}
