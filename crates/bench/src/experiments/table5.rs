//! Table 5: average blocking-detection time per mechanism.
//!
//! Paper values (average of 50 runs):
//!
//! | mechanism                          | avg detect (s) |
//! |------------------------------------|----------------|
//! | TCP/IP                             | 21             |
//! | DNS ("Server Failure")             | 10.6           |
//! | DNS ("Server Refused")             | 0.025          |
//! | HTTP (block page)                  | 1.8            |
//! | TCP/IP + DNS (multi-stage)         | 32.7           |

use crate::runner::{self, Experiment, TrialSpec};
use crate::worlds::YOUTUBE;
use csaw::measure::{measure_direct, DetectConfig, MeasuredStatus};
use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimDuration;
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;

/// One mechanism's detection-time row.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectRow {
    /// Mechanism label (paper's wording).
    pub label: String,
    /// Paper's average (s).
    pub paper_s: f64,
    /// Our measured average (s).
    pub measured_s: f64,
    /// Runs averaged.
    pub runs: usize,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// All five rows.
    pub rows: Vec<DetectRow>,
}

/// The five mechanisms with the paper's reference averages.
fn cases() -> Vec<(&'static str, f64, DnsTamper, IpAction, HttpAction)> {
    vec![
        (
            "TCP/IP",
            21.0,
            DnsTamper::None,
            IpAction::Drop,
            HttpAction::None,
        ),
        (
            "DNS (Response: \"Server Failure\")",
            10.6,
            DnsTamper::Servfail,
            IpAction::None,
            HttpAction::None,
        ),
        (
            "DNS (Response: \"Server Refused\")",
            0.025,
            DnsTamper::Refused,
            IpAction::None,
            HttpAction::None,
        ),
        (
            "HTTP (Block Page)",
            1.8,
            DnsTamper::None,
            IpAction::None,
            HttpAction::BlockPageRedirect,
        ),
        (
            "TCP/IP + DNS",
            32.7,
            DnsTamper::Servfail,
            IpAction::Drop,
            HttpAction::None,
        ),
    ]
}

/// Run 50 detection trials per mechanism.
pub fn run(seed: u64) -> Table5 {
    run_jobs(seed, 1)
}

/// Table 5 with one runner trial per mechanism row.
pub fn run_jobs(seed: u64, jobs: usize) -> Table5 {
    runner::run(&Table5Exp { seed }, jobs)
}

/// Table 5 decomposed: one trial per mechanism, each with its
/// historical `seed ^ paper_s.to_bits()` stream.
pub struct Table5Exp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for Table5Exp {
    type Trial = DetectRow;
    type Output = Table5;

    fn name(&self) -> &'static str {
        "table5"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        cases()
            .into_iter()
            .enumerate()
            .map(|(i, (label, paper_s, ..))| {
                TrialSpec::salted(self.seed ^ paper_s.to_bits(), i as u64, label)
            })
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> DetectRow {
        let (label, paper_s, dns, ip, http) = cases()
            .into_iter()
            .nth(spec.ordinal as usize)
            .expect("case index in range");
        let url = Url::parse(&format!("http://{YOUTUBE}/")).expect("static URL");
        let policy = csaw_censor::single_mechanism(label, YOUTUBE, dns, ip, http, TlsAction::None);
        let world = crate::worlds::single_isp_world(Asn(5000), "T5-ISP", policy);
        let provider = world.access.providers()[0].clone();
        let mut rng = DetRng::new(spec.seed);
        let runs = 50;
        let mut total = SimDuration::ZERO;
        let mut detected = 0usize;
        for _ in 0..runs {
            let m = measure_direct(
                &world,
                &provider,
                &url,
                Some(360_000),
                &DetectConfig::default(),
                &mut rng,
            );
            if m.status == MeasuredStatus::Blocked {
                total += m.detection_time;
                detected += 1;
            }
        }
        assert!(detected > 0, "{label}: nothing detected");
        DetectRow {
            label: label.to_string(),
            paper_s,
            measured_s: total.as_secs_f64() / detected as f64,
            runs: detected,
        }
    }

    fn reduce(&self, trials: Vec<DetectRow>) -> Table5 {
        Table5 { rows: trials }
    }
}

impl Table5 {
    /// A row by label prefix.
    pub fn row(&self, prefix: &str) -> &DetectRow {
        self.rows
            .iter()
            .find(|r| r.label.starts_with(prefix))
            .expect("row exists")
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 5: avg blocking-detection time (paper vs measured)\n");
        out.push_str(&format!(
            "  {:<36}{:>10}{:>12}\n",
            "mechanism", "paper(s)", "measured(s)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<36}{:>10.3}{:>12.3}\n",
                r.label, r.paper_s, r.measured_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_times_match_paper_shape() {
        let t = run(42);
        // Within 15% of each paper row (generous: jitter + our redirect
        // model), and most importantly the *ordering* holds.
        let tcp = t.row("TCP/IP").measured_s;
        let servfail = t.row("DNS (Response: \"Server Failure\")").measured_s;
        let refused = t.row("DNS (Response: \"Server Refused\")").measured_s;
        let blockpage = t.row("HTTP").measured_s;
        let multi = t.row("TCP/IP + DNS").measured_s;
        assert!((tcp - 21.0).abs() / 21.0 < 0.05, "tcp {tcp}");
        assert!((servfail - 10.6).abs() / 10.6 < 0.10, "servfail {servfail}");
        assert!(refused < 0.1, "refused {refused}");
        assert!((0.8..=3.0).contains(&blockpage), "blockpage {blockpage}");
        assert!((multi - 32.7).abs() / 32.7 < 0.10, "multi {multi}");
        // Ordering: multi > tcp > servfail > blockpage > refused.
        assert!(multi > tcp && tcp > servfail && servfail > blockpage && blockpage > refused);
    }

    #[test]
    fn all_runs_detected() {
        let t = run(43);
        for r in &t.rows {
            assert_eq!(r.runs, 50, "{}", r.label);
        }
    }
}
