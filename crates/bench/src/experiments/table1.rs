//! Table 1: filtering mechanisms of ISP-A vs ISP-B, as *measured* by the
//! C-Saw detector (the paper presents the censor-side truth; we recover
//! it from client-side observations, which is the stronger statement).

use crate::runner::{self, Experiment, TrialSpec};
use crate::worlds::{single_isp_world, PORN_PAGE, YOUTUBE};
use csaw::measure::{measure_direct, DetectConfig, MeasuredStatus};
use csaw_censor::blocking::{BlockingType, Stage};
use csaw_simnet::rng::DetRng;
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;

/// One measured cell of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// ISP label.
    pub isp: String,
    /// Target label ("YouTube" / "Rest").
    pub target: String,
    /// Mechanisms observed across trials (deduplicated, sorted).
    pub mechanisms: Vec<BlockingType>,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// All four cells.
    pub cells: Vec<Cell>,
}

fn configs() -> [(&'static str, Asn, csaw_censor::policy::CensorPolicy); 2] {
    [
        ("ISP-A", Asn(45595), csaw_censor::isp_a()),
        ("ISP-B", Asn(17557), csaw_censor::isp_b()),
    ]
}

fn targets() -> [(&'static str, String); 2] {
    [
        ("YouTube", format!("http://{YOUTUBE}/")),
        (
            "Rest (Social, Porn, Political, ..)",
            format!("http://{PORN_PAGE}/"),
        ),
    ]
}

/// Run the Table 1 measurement: several trials per (ISP, target), union
/// of observed mechanisms (ISP-B's DNS stage engages probabilistically,
/// so one trial may see only part of the multi-stage setup).
pub fn run(seed: u64) -> Table1 {
    run_jobs(seed, 1)
}

/// Table 1 with one runner trial per (ISP, target) cell.
pub fn run_jobs(seed: u64, jobs: usize) -> Table1 {
    runner::run(&Table1Exp { seed }, jobs)
}

/// Table 1 decomposed: one trial per (ISP, target) cell, each with the
/// historical per-ISP `seed ^ asn` stream.
pub struct Table1Exp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for Table1Exp {
    type Trial = Cell;
    type Output = Table1;

    fn name(&self) -> &'static str {
        "table1"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        let mut specs = Vec::new();
        for (i, (isp, asn, _)) in configs().into_iter().enumerate() {
            for (j, (target, _)) in targets().into_iter().enumerate() {
                specs.push(TrialSpec::salted(
                    self.seed ^ asn.0 as u64,
                    (i * 2 + j) as u64,
                    format!("{isp} × {target}"),
                ));
            }
        }
        specs
    }

    fn run_trial(&self, spec: &TrialSpec) -> Cell {
        let (isp, asn, policy) = configs()
            .into_iter()
            .nth(spec.ordinal as usize / 2)
            .expect("config index in range");
        let (target, url_s) = targets()
            .into_iter()
            .nth(spec.ordinal as usize % 2)
            .expect("target index in range");
        let world = single_isp_world(asn, isp, policy);
        let url = Url::parse(&url_s).expect("static URL");
        let mut mechanisms: Vec<BlockingType> = Vec::new();
        let mut rng = DetRng::new(spec.seed);
        for _ in 0..20 {
            let provider = world.access.providers()[0].clone();
            let m = measure_direct(
                &world,
                &provider,
                &url,
                Some(360_000),
                &DetectConfig::default(),
                &mut rng,
            );
            if m.status == MeasuredStatus::Blocked {
                for s in m.stages {
                    if !mechanisms.contains(&s) {
                        mechanisms.push(s);
                    }
                }
            }
        }
        // Probe the HTTPS side too (Table 1 distinguishes HTTP-only
        // from HTTP+HTTPS blocking).
        let https_url = Url::parse(&url_s.replace("http://", "https://")).expect("static");
        for _ in 0..10 {
            let provider = world.access.providers()[0].clone();
            let m = measure_direct(
                &world,
                &provider,
                &https_url,
                Some(360_000),
                &DetectConfig::default(),
                &mut rng,
            );
            if m.status == MeasuredStatus::Blocked {
                for s in m.stages {
                    if s.stage() == Stage::Tls && !mechanisms.contains(&s) {
                        mechanisms.push(s);
                    }
                }
            }
        }
        mechanisms.sort();
        Cell {
            isp: isp.to_string(),
            target: target.to_string(),
            mechanisms,
        }
    }

    fn reduce(&self, trials: Vec<Cell>) -> Table1 {
        Table1 { cells: trials }
    }
}

impl Table1 {
    /// A cell by (ISP, target prefix).
    pub fn cell(&self, isp: &str, target_prefix: &str) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.isp == isp && c.target.starts_with(target_prefix))
            .expect("cell exists")
    }

    /// Text rendering in the paper's layout.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Table 1: measured filtering mechanisms (client-side recovery)\n");
        for c in &self.cells {
            let mechs: Vec<String> = c.mechanisms.iter().map(|m| m.to_string()).collect();
            out.push_str(&format!(
                "  {:<6} | {:<36} | {}\n",
                c.isp,
                c.target,
                if mechs.is_empty() {
                    "no blocking observed".to_string()
                } else {
                    mechs.join(" + ")
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_the_paper_matrix() {
        let t = run(1);
        // ISP-A, YouTube: HTTP blocking -> block page, no DNS/TLS stages.
        let c = t.cell("ISP-A", "YouTube");
        assert!(c.mechanisms.contains(&BlockingType::HttpBlockPageRedirect));
        assert!(c.mechanisms.iter().all(|m| m.stage() == Stage::Http));
        // ISP-B, YouTube: multi-stage — DNS hijack + HTTP drop + SNI drop.
        let c = t.cell("ISP-B", "YouTube");
        assert!(
            c.mechanisms.contains(&BlockingType::DnsHijack),
            "{:?}",
            c.mechanisms
        );
        assert!(
            c.mechanisms.contains(&BlockingType::HttpDrop),
            "{:?}",
            c.mechanisms
        );
        assert!(
            c.mechanisms.contains(&BlockingType::SniDrop),
            "{:?}",
            c.mechanisms
        );
        // ISP-A rest: block page via redirect; ISP-B rest: inline page.
        let c = t.cell("ISP-A", "Rest");
        assert_eq!(c.mechanisms, vec![BlockingType::HttpBlockPageRedirect]);
        let c = t.cell("ISP-B", "Rest");
        assert!(
            c.mechanisms.contains(&BlockingType::HttpBlockPageInline),
            "{:?}",
            c.mechanisms
        );
        assert!(!c.mechanisms.iter().any(|m| m.stage() == Stage::Dns));
    }

    #[test]
    fn render_mentions_both_isps() {
        let t = run(2);
        let s = t.render();
        assert!(s.contains("ISP-A") && s.contains("ISP-B"));
    }
}
