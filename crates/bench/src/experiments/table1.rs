//! Table 1: filtering mechanisms of ISP-A vs ISP-B, as *measured* by the
//! C-Saw detector (the paper presents the censor-side truth; we recover
//! it from client-side observations, which is the stronger statement).

use crate::worlds::{single_isp_world, PORN_PAGE, YOUTUBE};
use csaw::measure::{measure_direct, DetectConfig, MeasuredStatus};
use csaw_censor::blocking::{BlockingType, Stage};
use csaw_simnet::rng::DetRng;
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;

/// One measured cell of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// ISP label.
    pub isp: String,
    /// Target label ("YouTube" / "Rest").
    pub target: String,
    /// Mechanisms observed across trials (deduplicated, sorted).
    pub mechanisms: Vec<BlockingType>,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// All four cells.
    pub cells: Vec<Cell>,
}

/// Run the Table 1 measurement: several trials per (ISP, target), union
/// of observed mechanisms (ISP-B's DNS stage engages probabilistically,
/// so one trial may see only part of the multi-stage setup).
pub fn run(seed: u64) -> Table1 {
    let mut cells = Vec::new();
    let configs = [
        ("ISP-A", Asn(45595), csaw_censor::isp_a()),
        ("ISP-B", Asn(17557), csaw_censor::isp_b()),
    ];
    let targets = [
        ("YouTube", format!("http://{YOUTUBE}/")),
        (
            "Rest (Social, Porn, Political, ..)",
            format!("http://{PORN_PAGE}/"),
        ),
    ];
    for (isp, asn, policy) in configs {
        let world = single_isp_world(asn, isp, policy.clone());
        for (target, url_s) in &targets {
            let url = Url::parse(url_s).expect("static URL");
            let mut mechanisms: Vec<BlockingType> = Vec::new();
            let mut rng = DetRng::new(seed ^ asn.0 as u64);
            for trial in 0..20 {
                let provider = world.access.providers()[0].clone();
                let m = measure_direct(
                    &world,
                    &provider,
                    &url,
                    Some(360_000),
                    &DetectConfig::default(),
                    &mut rng,
                );
                if m.status == MeasuredStatus::Blocked {
                    for s in m.stages {
                        if !mechanisms.contains(&s) {
                            mechanisms.push(s);
                        }
                    }
                }
                let _ = trial;
            }
            // Probe the HTTPS side too (Table 1 distinguishes HTTP-only
            // from HTTP+HTTPS blocking).
            let https_url = Url::parse(&url_s.replace("http://", "https://")).expect("static");
            for _ in 0..10 {
                let provider = world.access.providers()[0].clone();
                let m = measure_direct(
                    &world,
                    &provider,
                    &https_url,
                    Some(360_000),
                    &DetectConfig::default(),
                    &mut rng,
                );
                if m.status == MeasuredStatus::Blocked {
                    for s in m.stages {
                        if s.stage() == Stage::Tls && !mechanisms.contains(&s) {
                            mechanisms.push(s);
                        }
                    }
                }
            }
            mechanisms.sort();
            cells.push(Cell {
                isp: isp.to_string(),
                target: target.to_string(),
                mechanisms,
            });
        }
    }
    Table1 { cells }
}

impl Table1 {
    /// A cell by (ISP, target prefix).
    pub fn cell(&self, isp: &str, target_prefix: &str) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.isp == isp && c.target.starts_with(target_prefix))
            .expect("cell exists")
    }

    /// Text rendering in the paper's layout.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Table 1: measured filtering mechanisms (client-side recovery)\n");
        for c in &self.cells {
            let mechs: Vec<String> = c.mechanisms.iter().map(|m| m.to_string()).collect();
            out.push_str(&format!(
                "  {:<6} | {:<36} | {}\n",
                c.isp,
                c.target,
                if mechs.is_empty() {
                    "no blocking observed".to_string()
                } else {
                    mechs.join(" + ")
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_the_paper_matrix() {
        let t = run(1);
        // ISP-A, YouTube: HTTP blocking -> block page, no DNS/TLS stages.
        let c = t.cell("ISP-A", "YouTube");
        assert!(c.mechanisms.contains(&BlockingType::HttpBlockPageRedirect));
        assert!(c.mechanisms.iter().all(|m| m.stage() == Stage::Http));
        // ISP-B, YouTube: multi-stage — DNS hijack + HTTP drop + SNI drop.
        let c = t.cell("ISP-B", "YouTube");
        assert!(
            c.mechanisms.contains(&BlockingType::DnsHijack),
            "{:?}",
            c.mechanisms
        );
        assert!(
            c.mechanisms.contains(&BlockingType::HttpDrop),
            "{:?}",
            c.mechanisms
        );
        assert!(
            c.mechanisms.contains(&BlockingType::SniDrop),
            "{:?}",
            c.mechanisms
        );
        // ISP-A rest: block page via redirect; ISP-B rest: inline page.
        let c = t.cell("ISP-A", "Rest");
        assert_eq!(c.mechanisms, vec![BlockingType::HttpBlockPageRedirect]);
        let c = t.cell("ISP-B", "Rest");
        assert!(
            c.mechanisms.contains(&BlockingType::HttpBlockPageInline),
            "{:?}",
            c.mechanisms
        );
        assert!(!c.mechanisms.iter().any(|m| m.stage() == Stage::Dns));
    }

    #[test]
    fn render_mentions_both_isps() {
        let t = run(2);
        let s = t.render();
        assert!(s.contains("ISP-A") && s.contains("ISP-B"));
    }
}
