//! Crowd propagation: how fast one user's discovery becomes everyone's
//! speedup.
//!
//! The paper's incentive loop (§1, §3) is a dynamics claim: "As more
//! users crowdsource, the measurement data gets richer … leading to even
//! better circumvention capabilities." This experiment quantifies the
//! loop's latency. A population of clients browses a censored URL; at
//! first everyone pays the measurement cost themselves, but as reports
//! reach the global DB and periodic syncs distribute the per-AS blocked
//! list, late-coming clients jump straight to the right local fix. We
//! track the population's first-visit PLT as a function of *when* the
//! client first visits.

use crate::stats::Summary;
use crate::worlds::{single_isp_world, FRONT, YOUTUBE};
use csaw::client::CsawClient;
use csaw::config::CsawConfig;
use csaw::global::ServerDb;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_webproto::url::Url;

/// One cohort's first-visit experience.
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    /// When the cohort's clients make their first visit (s after start).
    pub first_visit_s: u64,
    /// How many of them had the URL in their synced global view already.
    pub pre_warned: usize,
    /// Cohort size.
    pub size: usize,
    /// First-visit PLT summary.
    pub plt: Summary,
    /// How many needed a fresh redundant-measurement round.
    pub measured: usize,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Propagation {
    /// Cohorts in arrival order.
    pub cohorts: Vec<Cohort>,
}

/// Run the dynamics: cohorts of 12 clients arrive at t = 0 s, 120 s,
/// 600 s, 1800 s and 3600 s. All clients (from every cohort) tick on a
/// 5-minute cadence: reports flow up, blocked lists flow down.
pub fn run(seed: u64) -> Propagation {
    let world = single_isp_world(csaw_censor::ISP_B_ASN, "ISP-B", csaw_censor::isp_b());
    let url = Url::parse(&format!("http://{YOUTUBE}/")).expect("static URL");
    let server = ServerDb::builder(seed)
        .build()
        .expect("default store config is valid");
    let arrivals: [u64; 5] = [0, 120, 600, 1_800, 3_600];
    let cohort_size = 12usize;
    let tick_every = 300u64;
    let horizon = 5_400u64;

    // Clients are constructed up front but only *register* (install
    // C-Saw, which syncs the per-AS blocked list) when their cohort
    // arrives — a user who installs later installs into a richer
    // global DB; that is the whole dynamic under test.
    let mut clients: Vec<(u64, CsawClient, bool, Option<SimDuration>, bool)> = Vec::new();
    for (k, at) in arrivals.iter().enumerate() {
        for j in 0..cohort_size {
            let c = CsawClient::new(
                CsawConfig {
                    sync_interval: SimDuration::from_secs(tick_every),
                    report_interval: SimDuration::from_secs(tick_every),
                    ..CsawConfig::default()
                },
                Some(FRONT),
                seed ^ ((k as u64) << 8) ^ (j as u64),
            );
            clients.push((*at, c, false, None, false));
        }
    }

    let mut t = 0u64;
    while t <= horizon {
        let now = SimTime::from_secs(t);
        for (arrive_at, client, visited, plt, measured) in clients.iter_mut() {
            if !*visited && t >= *arrive_at {
                client
                    .register(&server, csaw_censor::ISP_B_ASN, now, 0.05)
                    .expect("registration passes");
                let r = client.request(&world, &url, now);
                *visited = true;
                *plt = r.plt;
                // Did the crowd spare this client the measurement round?
                *measured = r.measured;
            }
        }
        // Background workflow for everyone already arrived.
        for (arrive_at, client, ..) in clients.iter_mut() {
            if t >= *arrive_at && t.is_multiple_of(tick_every) {
                client.tick(&world, &server, now);
            }
        }
        t += 60;
    }

    let mut cohorts = Vec::new();
    for at in arrivals {
        let members: Vec<&(u64, CsawClient, bool, Option<SimDuration>, bool)> =
            clients.iter().filter(|(a, ..)| *a == at).collect();
        let plts: Vec<SimDuration> = members.iter().filter_map(|(_, _, _, p, _)| *p).collect();
        let measured = members.iter().filter(|(.., m)| *m).count();
        let pre_warned = members
            .iter()
            .filter(|(_, c, ..)| c.global_lookup(&url).is_some())
            .count();
        cohorts.push(Cohort {
            first_visit_s: at,
            pre_warned,
            size: members.len(),
            plt: Summary::of(&plts),
            measured,
        });
    }
    Propagation { cohorts }
}

impl Propagation {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Crowd propagation: first-visit cost vs arrival time (ISP-B, YouTube)\n");
        out.push_str(&format!(
            "  {:>12}{:>8}{:>12}{:>14}{:>14}\n",
            "arrival(s)", "size", "measured", "mean PLT(s)", "median PLT(s)"
        ));
        for c in &self.cohorts {
            out.push_str(&format!(
                "  {:>12}{:>8}{:>12}{:>14.2}{:>14.2}\n",
                c.first_visit_s, c.size, c.measured, c.plt.mean_s, c.plt.median_s
            ));
        }
        out.push_str(
            "  The incentive loop in numbers: cohorts after the pioneers skip the\n  measurement round; knowledge refines in waves (an early cohort may pay\n  once to discover a stage the pioneers' reports missed, then re-report).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_cohorts_skip_measurement_and_load_faster() {
        let p = run(7);
        assert_eq!(p.cohorts.len(), 5);
        let first = &p.cohorts[0];
        let last = p.cohorts.last().unwrap();
        // The pioneers all measure; the late cohort rides the crowd.
        assert!(first.measured >= first.size - 1, "{first:?}");
        assert!(
            last.measured <= last.size / 4,
            "late cohort still measuring: {last:?}"
        );
        // And their first visit is substantially faster.
        assert!(
            last.plt.median_s < first.plt.median_s * 0.6,
            "late median {:.2}s vs pioneer median {:.2}s",
            last.plt.median_s,
            first.plt.median_s
        );
    }

    #[test]
    fn measurement_need_is_monotone_down_the_cohorts() {
        let p = run(8);
        // Allow small wobble but the trend must be non-increasing from
        // the first to the last cohort.
        let first = p.cohorts.first().unwrap().measured;
        let last = p.cohorts.last().unwrap().measured;
        assert!(last < first, "no propagation benefit: {p:?}");
    }
}
