//! Table 2: ping latencies from the vantage point to the static proxies
//! (and to YouTube). Our topology pins these by construction; the
//! experiment *measures* them over the simulated paths and checks the
//! round trip matches the paper's numbers.

use crate::runner::{self, Experiment, TrialSpec};
use crate::worlds::{clean_world, static_proxies};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimDuration;

/// One measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct PingRow {
    /// Proxy label.
    pub label: String,
    /// Paper's reported average ping RTT (ms).
    pub paper_ms: u64,
    /// Measured average RTT over the simulated path (ms).
    pub measured_ms: u64,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// All rows, including the YouTube baseline.
    pub rows: Vec<PingRow>,
}

/// Paper values for the proxies it names (France rows are ours; the paper
/// plots France proxies in Fig. 1a without listing their pings).
fn paper_value(label: &str) -> Option<u64> {
    match label {
        "UK" => Some(228),
        "Netherlands" => Some(172),
        "Japan" => Some(387),
        "US-1" => Some(329),
        "US-2" => Some(429),
        "US-3" => Some(160),
        "Germany-1" => Some(309),
        "Germany-2" => Some(174),
        _ => None,
    }
}

/// Run the ping sweep: 50 echo samples per destination, WAN component
/// only (the paper pings from the measurement host, we exclude the local
/// access hop jitter by averaging).
pub fn run(seed: u64) -> Table2 {
    run_jobs(seed, 1)
}

/// Table 2 with one runner trial per ping destination.
pub fn run_jobs(seed: u64, jobs: usize) -> Table2 {
    runner::run(&Table2Exp { seed }, jobs)
}

/// Table 2 decomposed: one trial per destination (the ten proxies plus
/// the YouTube baseline), each drawing its RTT samples from a
/// runner-forked stream.
pub struct Table2Exp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for Table2Exp {
    type Trial = PingRow;
    type Output = Table2;

    fn name(&self) -> &'static str {
        "table2"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        let mut labels: Vec<String> = static_proxies().into_iter().map(|p| p.label).collect();
        labels.push("YouTube".to_string());
        labels
            .into_iter()
            .enumerate()
            .map(|(i, label)| TrialSpec::forked(self.name(), self.seed, i as u64, label))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> PingRow {
        let world = clean_world();
        let provider = world.access.providers()[0].clone();
        let mut rng = DetRng::new(spec.seed);
        let proxies = static_proxies();
        let (label, site, paper_ms) = if (spec.ordinal as usize) < proxies.len() {
            let p = proxies
                .into_iter()
                .nth(spec.ordinal as usize)
                .expect("proxy index in range");
            let paper = paper_value(&p.label).unwrap_or(0);
            (p.label, p.site, paper)
        } else {
            // YouTube baseline (paper: 186 ms).
            let yt = world.site(crate::worlds::YOUTUBE).expect("youtube exists");
            ("YouTube".to_string(), yt.location, 186)
        };
        let path = world.path_to_site(&provider, site);
        let n = 50;
        let total_us: u64 = (0..n).map(|_| path.sample_rtt(&mut rng).as_micros()).sum();
        // Remove the access hop (2 × 8 ms) the paper's ping excludes by
        // being measured from the campus border.
        let avg =
            SimDuration::from_micros(total_us / n).saturating_sub(SimDuration::from_millis(16));
        PingRow {
            label,
            paper_ms,
            measured_ms: avg.as_millis(),
        }
    }

    fn reduce(&self, trials: Vec<PingRow>) -> Table2 {
        Table2 { rows: trials }
    }
}

impl Table2 {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 2: avg ping RTT to static proxies (paper vs measured)\n");
        out.push_str(&format!(
            "  {:<14}{:>10}{:>12}\n",
            "proxy", "paper(ms)", "measured(ms)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<14}{:>10}{:>12}\n",
                r.label,
                if r.paper_ms == 0 {
                    "-".to_string()
                } else {
                    r.paper_ms.to_string()
                },
                r.measured_ms
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rtts_match_paper_within_10pct() {
        let t = run(7);
        for r in &t.rows {
            if r.paper_ms == 0 {
                continue;
            }
            let err = (r.measured_ms as f64 - r.paper_ms as f64).abs() / r.paper_ms as f64;
            assert!(
                err < 0.10,
                "{}: measured {} vs paper {} ({:.1}% off)",
                r.label,
                r.measured_ms,
                r.paper_ms,
                err * 100.0
            );
        }
    }

    #[test]
    fn includes_youtube_baseline() {
        let t = run(8);
        assert!(t
            .rows
            .iter()
            .any(|r| r.label == "YouTube" && r.paper_ms == 186));
        assert_eq!(t.rows.len(), 11);
    }
}
