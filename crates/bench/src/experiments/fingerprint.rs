//! Fingerprintability analysis — the §8 question the paper leaves to
//! future work: *can a censor identify C-Saw users from their traffic
//! patterns?*
//!
//! The censor's best handle is the **redundant request**: a direct-path
//! request for a URL followed, within a short window, by a flow to an
//! address outside the deployment's known-origin set (the circumvention
//! copy's first hop). We simulate a mixed population of plain browsers
//! and C-Saw clients, extract exactly that feature from the censor-side
//! flow log, sweep a detection threshold, and report true/false-positive
//! rates per redundancy mode.
//!
//! The paper's intuition — selective redundancy (only not-measured URLs
//! get copies) and staggered copies blunt the signature — falls out of
//! the numbers: the paired-flow rate of a C-Saw client decays as its
//! local DB warms up, and serial mode leaves almost no pairs at all.

use crate::runner::{self, Experiment, TrialSpec};
use csaw::config::RedundancyMode;
use csaw::measure::{fetch_with_redundancy, DetectConfig, ServedFrom};
use csaw_circumvent::tor::TorClient;
use csaw_circumvent::transports::{Direct, FetchCtx, Transport};
use csaw_circumvent::world::World;
use csaw_simnet::load::LoadModel;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimTime;
use csaw_webproto::url::Url;

/// The feature a censor extracts per client: the fraction of its direct
/// requests that are *paired* with an unknown-destination flow in the
/// same instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientTrace {
    /// Ground truth (never used by the "censor").
    pub is_csaw: bool,
    /// Paired-flow fraction the censor observes.
    pub paired_fraction: f64,
}

/// Detection quality at one threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roc {
    /// Classifier threshold on the paired-flow fraction.
    pub threshold: f64,
    /// True-positive rate (C-Saw clients flagged).
    pub tpr: f64,
    /// False-positive rate (plain browsers flagged).
    pub fpr: f64,
}

/// One redundancy mode's fingerprintability summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeResult {
    /// Mode label.
    pub mode: String,
    /// Mean paired fraction over C-Saw clients.
    pub csaw_mean: f64,
    /// Mean paired fraction over plain browsers.
    pub plain_mean: f64,
    /// ROC points across thresholds.
    pub roc: Vec<Roc>,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// One row per redundancy mode.
    pub modes: Vec<ModeResult>,
}

fn simulate_client(
    world: &World,
    mode: Option<RedundancyMode>, // None = plain browser
    urls: &[Url],
    seed: u64,
) -> ClientTrace {
    let provider = world.access.providers()[0].clone();
    let mut rng = DetRng::new(seed);
    let mut tor = TorClient::new();
    let mut measured: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut requests = 0u32;
    let mut paired = 0u32;
    for (i, url) in urls.iter().enumerate() {
        let ctx = FetchCtx {
            now: SimTime::from_secs(i as u64 * 45),
            provider: provider.clone(),
        };
        requests += 1;
        match mode {
            None => {
                // Plain browser: direct only, never paired. (Real plain
                // users occasionally open VPNs etc.; give them a small
                // base rate so the FPR axis is non-trivial.)
                let _ = Direct.fetch(world, &ctx, url, &mut rng);
                if rng.chance(0.02) {
                    paired += 1;
                }
            }
            Some(m) => {
                let key = url.base().to_string();
                if measured.contains(&key) {
                    // Warm cache: selective redundancy sends no copy.
                    let _ = Direct.fetch(world, &ctx, url, &mut rng);
                } else {
                    let out = fetch_with_redundancy(
                        world,
                        &ctx,
                        url,
                        m,
                        &mut tor,
                        &DetectConfig::default(),
                        &LoadModel::default(),
                        &mut rng,
                    );
                    measured.insert(key);
                    // The censor sees a pair only when the copy actually
                    // went out while the direct flow was alive: always in
                    // parallel mode, only on slow fetches in staggered,
                    // and effectively never in serial (the copy follows
                    // the direct attempt's conclusion).
                    let copy_sent = out.circumvention.is_some();
                    let overlapping = match m {
                        RedundancyMode::Parallel => copy_sent,
                        RedundancyMode::Staggered(_) => {
                            copy_sent && out.served_from != ServedFrom::Direct
                        }
                        RedundancyMode::Serial => false,
                    };
                    if overlapping {
                        paired += 1;
                    }
                }
            }
        }
    }
    ClientTrace {
        is_csaw: mode.is_some(),
        paired_fraction: paired as f64 / requests.max(1) as f64,
    }
}

/// The swept redundancy modes.
fn modes() -> Vec<(String, RedundancyMode)> {
    vec![
        ("parallel".into(), RedundancyMode::Parallel),
        (
            "staggered-2s".into(),
            RedundancyMode::Staggered(csaw_simnet::SimDuration::from_secs(2)),
        ),
        ("serial".into(), RedundancyMode::Serial),
    ]
}

/// The revisit-heavy browsing pool (the realistic case for selective
/// redundancy) — a pure function of the experiment seed, so every mode
/// trial recomputes the identical session.
fn browse_urls(seed: u64) -> Vec<Url> {
    let hosts = [
        crate::worlds::YOUTUBE,
        crate::worlds::SMALL_PAGE,
        crate::worlds::LARGE_PAGE,
        "twitter.com",
        "instagram.com",
        crate::worlds::PORN_PAGE,
    ];
    let mut rng = DetRng::new(seed);
    (0..30)
        .map(|i| {
            let h = hosts[rng.index(hosts.len())];
            Url::parse(&format!("http://{h}/page/{}", i % 4)).expect("static URL")
        })
        .collect()
}

/// Run the sweep: 40 plain browsers vs 40 C-Saw clients per mode, each
/// browsing 30 URLs from a 12-site universe (so later visits hit warm
/// local DBs).
pub fn run(seed: u64) -> Fingerprint {
    run_jobs(seed, 1)
}

/// The sweep with one runner trial per redundancy mode.
pub fn run_jobs(seed: u64, jobs: usize) -> Fingerprint {
    runner::run(&FingerprintExp { seed }, jobs)
}

/// The sweep decomposed: one trial per mode. Every trial carries the
/// experiment seed — the browse session and the per-client seeds are
/// fixed salts of it, preserving the paired population across modes.
pub struct FingerprintExp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for FingerprintExp {
    type Trial = ModeResult;
    type Output = Fingerprint;

    fn name(&self) -> &'static str {
        "fingerprint"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        modes()
            .into_iter()
            .enumerate()
            .map(|(i, (label, _))| TrialSpec::salted(self.seed, i as u64, label))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> ModeResult {
        let (label, mode) = modes()
            .into_iter()
            .nth(spec.ordinal as usize)
            .expect("mode index in range");
        let world = crate::worlds::clean_world();
        let urls = browse_urls(spec.seed);
        let seed = spec.seed;
        let mut traces = Vec::new();
        for c in 0..40u64 {
            traces.push(simulate_client(&world, None, &urls, seed ^ (c << 3)));
            traces.push(simulate_client(
                &world,
                Some(mode),
                &urls,
                seed ^ (c << 3) ^ 0xF00,
            ));
        }
        let csaw_mean = mean(
            traces
                .iter()
                .filter(|t| t.is_csaw)
                .map(|t| t.paired_fraction),
        );
        let plain_mean = mean(
            traces
                .iter()
                .filter(|t| !t.is_csaw)
                .map(|t| t.paired_fraction),
        );
        let roc = (0..=10)
            .map(|k| {
                let threshold = k as f64 * 0.05;
                let flagged = |t: &&ClientTrace| t.paired_fraction > threshold;
                let tpr = rate(
                    traces.iter().filter(|t| t.is_csaw).filter(flagged).count(),
                    40,
                );
                let fpr = rate(
                    traces.iter().filter(|t| !t.is_csaw).filter(flagged).count(),
                    40,
                );
                Roc {
                    threshold,
                    tpr,
                    fpr,
                }
            })
            .collect();
        ModeResult {
            mode: label,
            csaw_mean,
            plain_mean,
            roc,
        }
    }

    fn reduce(&self, trials: Vec<ModeResult>) -> Fingerprint {
        Fingerprint { modes: trials }
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn rate(n: usize, total: usize) -> f64 {
    n as f64 / total.max(1) as f64
}

impl Fingerprint {
    /// A mode's result by label.
    pub fn mode(&self, label: &str) -> &ModeResult {
        self.modes
            .iter()
            .find(|m| m.mode == label)
            .unwrap_or_else(|| panic!("mode {label} missing"))
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fingerprintability (extension of §8): censor-side paired-flow feature\n");
        out.push_str(&format!(
            "  {:<14}{:>12}{:>12}{:>26}\n",
            "mode", "csaw mean", "plain mean", "TPR@FPR=0 (threshold)"
        ));
        for m in &self.modes {
            let best = m
                .roc
                .iter()
                .filter(|r| r.fpr == 0.0)
                .max_by(|a, b| a.tpr.partial_cmp(&b.tpr).expect("finite"));
            out.push_str(&format!(
                "  {:<14}{:>12.3}{:>12.3}{:>26}\n",
                m.mode,
                m.csaw_mean,
                m.plain_mean,
                best.map(|r| format!("{:.2} (>{:.2})", r.tpr, r.threshold))
                    .unwrap_or_else(|| "-".into()),
            ));
        }
        out.push_str(
            "  Takeaway: selective redundancy keeps steady-state pairing low; serial\n  mode is near-unfingerprintable by this feature, parallel is the most visible.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_most_visible_serial_least() {
        let f = run(55);
        let par = f.mode("parallel").csaw_mean;
        let stag = f.mode("staggered-2s").csaw_mean;
        let ser = f.mode("serial").csaw_mean;
        assert!(par > stag, "parallel {par:.3} <= staggered {stag:.3}");
        assert!(stag >= ser, "staggered {stag:.3} < serial {ser:.3}");
        // Selective redundancy: even parallel mode pairs on well under
        // half of requests once local DBs warm up (6 hosts, 30 requests).
        assert!(par < 0.5, "parallel pairing {par:.3}");
    }

    #[test]
    fn serial_mode_hides_in_plain_traffic() {
        let f = run(56);
        let m = f.mode("serial");
        // Indistinguishable means no threshold separates the groups
        // cleanly: at every zero-FPR threshold the TPR stays low.
        for r in &m.roc {
            if r.fpr == 0.0 {
                assert!(r.tpr < 0.3, "serial should not be cleanly separable: {r:?}");
            }
        }
    }

    #[test]
    fn roc_is_monotone_in_threshold() {
        let f = run(57);
        for m in &f.modes {
            for w in m.roc.windows(2) {
                assert!(w[1].tpr <= w[0].tpr + 1e-9, "{}: {:?}", m.mode, w);
                assert!(w[1].fpr <= w[0].fpr + 1e-9, "{}: {:?}", m.mode, w);
            }
        }
    }
}
