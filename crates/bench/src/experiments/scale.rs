//! `exp_scale` — the million-client ingestion harness for the sharded
//! global store.
//!
//! The paper's server must absorb crowdsourced updates from an open
//! population (§5); this extension measures how the lock-striped
//! [`ShardedStore`](csaw::global::StorageBackend) behaves when that
//! population is driven hard: `--clients` synthetic clients (default
//! one million) each post one report batch, from 1..=8 concurrent
//! writer threads, against a fresh store per thread count.
//!
//! What is measured, per thread count:
//!
//! - sustained ingest throughput (reports/s, wall clock) while all
//!   threads hammer `ServerDb::ingest` concurrently;
//! - post-ingest `blocked_for_as` lookup latency (p50/p99 over
//!   `--lookups` calls), exercising the per-shard snapshot cache;
//! - parallel efficiency relative to the single-thread run.
//!
//! The workload is a *pure function of (seed, client index)*: every
//! client's batch is derived from its own forked RNG, so the final
//! store state is identical no matter how clients are partitioned
//! across threads — the concurrency tests in `crates/store` assert
//! exactly this, and [`run`] re-checks it via `record_count` across
//! thread counts. Every 16th client salts one garbage-URL report into
//! its batch to keep the sanitization/reject path on the hot loop.
//!
//! Throughput numbers are wall-clock and therefore machine-dependent;
//! EXPERIMENTS.md records the reference environment alongside the
//! numbers. Everything else (accepted/rejected counts, record counts,
//! lookup result sizes) is deterministic in the seed.

use crate::alloc_track::{self, AllocSnapshot};
use crate::scorecard::{LockProbe, LockTotals, Scorecard};
use csaw::global::{
    Batch, ConfidenceFilter, GlobalApi, RegistrarConfig, RemoteDb, Report, ServerDb, Uuid,
};
use csaw_censor::blocking::BlockingType;
use csaw_dbserver::{spawn_dbserver, DbServerConfig};
use csaw_obs::json::JsonValue;
use csaw_obs::PerfMode;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use std::sync::Arc;
use std::time::Instant;

/// Reports per client batch (the paper's clients post small batches).
const REPORTS_PER_CLIENT: usize = 4;

/// Every n-th client includes one garbage report (rejected path).
const GARBAGE_EVERY: usize = 16;

/// The `lock.<family>` metric sets the ingest phase is attributed
/// against — every timed lock the store takes on the write path.
pub const LOCK_FAMILIES: &[&str] = &[
    "store.shard.records.read",
    "store.shard.records.write",
    "store.ledger.clients.read",
    "store.ledger.clients.write",
    "store.ledger.keys.read",
    "store.ledger.keys.write",
    "store.wal.log",
];

/// Harness knobs (all settable from the `exp_scale` command line).
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Synthetic client population; each posts one batch.
    pub clients: usize,
    /// Writer-thread counts to sweep (a fresh store per entry).
    pub threads: Vec<usize>,
    /// Shard count for the store under test.
    pub shards: usize,
    /// URL pool size (keys collide across clients, as in deployment).
    pub urls: usize,
    /// Number of distinct ASes the population reports from.
    pub asns: u32,
    /// `blocked_for_as` calls in the lookup-latency phase.
    pub lookups: usize,
}

impl Default for ScaleConfig {
    fn default() -> ScaleConfig {
        ScaleConfig {
            clients: 1_000_000,
            threads: vec![1, 2, 4, 8],
            shards: 16,
            urls: 10_000,
            asns: 64,
            lookups: 10_000,
        }
    }
}

/// One row of the sweep: a thread count and what it achieved.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Writer threads used for the ingest phase.
    pub threads: usize,
    /// Wall-clock ingest time in seconds.
    pub ingest_secs: f64,
    /// Sustained ingest throughput, reports per second.
    pub reports_per_sec: f64,
    /// Reports accepted by the store (deterministic in the seed).
    pub accepted: u64,
    /// Reports rejected by sanitization (deterministic in the seed).
    pub rejected: u64,
    /// Records in the store after ingest (thread-count independent).
    pub records: usize,
    /// Median `blocked_for_as` latency, µs.
    pub lookup_p50_us: u64,
    /// 99th-percentile `blocked_for_as` latency, µs.
    pub lookup_p99_us: u64,
    /// Ingest-phase attribution, present when the run's observability
    /// scope has `PerfMode::Monotonic` enabled (`--perf wall`).
    pub perf: Option<RowPerf>,
}

/// Where one row's ingest wall time went: thread-seconds spent building
/// batches, inside `ingest` calls, and waiting on / holding each timed
/// lock family, plus allocator deltas when the counting allocator is
/// compiled in (`perf-telemetry` feature).
#[derive(Debug, Clone)]
pub struct RowPerf {
    /// Thread-seconds spent in `batch_for` (workload synthesis — harness
    /// cost, not store cost).
    pub build_s: f64,
    /// Thread-seconds spent inside `ServerDb::ingest` calls.
    pub call_s: f64,
    /// Ingest-phase delta per lock family, nonzero families only, in
    /// [`LOCK_FAMILIES`] order.
    pub locks: Vec<(String, LockTotals)>,
    /// Allocator events/bytes during ingest (None without the
    /// `perf-telemetry` feature — absence is distinct from zero).
    pub allocs: Option<AllocSnapshot>,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct Scale {
    /// The configuration that was run.
    pub cfg: ScaleConfig,
    /// One row per thread count, in sweep order.
    pub rows: Vec<ScaleRow>,
    /// Result of the socketed phase (`--transport tcp`), when run.
    pub socket: Option<SocketScale>,
}

/// What the socketed phase achieved: the same workload posted to a
/// real `csaw-dbserver` over loopback TCP through the [`RemoteDb`]
/// pool, with exact receipt reconciliation.
///
/// `accepted`/`rejected`/`records` are seed-pure (deferrals only delay
/// a report, they never change whether it is ultimately accepted) and
/// land in the scorecard's `deterministic` section; everything
/// wall-clock or scheduling-dependent (throughput, request latency,
/// deferral retries, reactor coalescing) is `timing`.
#[derive(Debug, Clone)]
pub struct SocketScale {
    /// Posting threads sharing the connection pool.
    pub threads: usize,
    /// Reports submitted (clients × reports-per-client).
    pub posted_reports: u64,
    /// Reports the server accepted (deterministic in the seed).
    pub accepted: u64,
    /// Reports rejected by sanitization (deterministic in the seed).
    pub rejected: u64,
    /// Records in the store after the run (deterministic in the seed).
    pub records: usize,
    /// Batch resubmissions triggered by deferred receipts (backpressure
    /// is bounded and explicit — every deferral is retried, so this
    /// counts extra round trips, not losses). Timing-dependent.
    pub deferred_retries: u64,
    /// Wall-clock posting time, seconds (registration excluded).
    pub ingest_secs: f64,
    /// Sustained socketed ingest throughput, reports per second.
    pub reports_per_sec: f64,
    /// Median request round-trip latency, µs.
    pub req_p50_us: u64,
    /// 99th-percentile request round-trip latency, µs.
    pub req_p99_us: u64,
    /// Batches the reactor handed to `ingest` (posts + deferral
    /// retries). Timing-dependent via the retry count.
    pub batches_ingested: u64,
    /// Mean requests decoded per busy reactor pass (batch coalescing).
    pub coalesce_mean: f64,
    /// Peak requests decoded in one reactor pass.
    pub coalesce_max: u64,
}

/// The batch client `idx` posts — a pure function of `(seed, idx)`, so
/// the aggregate workload is independent of thread partitioning.
fn batch_for(seed: u64, idx: usize, uuid: Uuid, cfg: &ScaleConfig) -> Batch {
    let mut rng = DetRng::new(seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let stages = [
        BlockingType::DnsNxdomain,
        BlockingType::IpDrop,
        BlockingType::HttpDrop,
        BlockingType::HttpBlockPageRedirect,
    ];
    let mut reports = Vec::with_capacity(REPORTS_PER_CLIENT);
    let asn = rng.range_u64(0, cfg.asns as u64) as u32;
    for r in 0..REPORTS_PER_CLIENT {
        let garbage = idx.is_multiple_of(GARBAGE_EVERY) && r == 0;
        let url = if garbage {
            // Fails `Url::parse` in the store's sanitizer.
            "not a url at all".to_string()
        } else {
            format!("http://blocked{}.example.net/", rng.index(cfg.urls))
        };
        reports.push(Report {
            url,
            asn,
            measured_at_us: (idx as u64) * 1_000 + r as u64,
            stages: vec![stages[rng.index(stages.len())]],
        });
    }
    Batch::new(uuid, reports, SimTime::from_secs(1_000 + idx as u64))
}

/// Run the sweep. `seed` fixes the workload; `cfg` sizes it.
pub fn run_with(seed: u64, cfg: ScaleConfig) -> Scale {
    let mut rows = Vec::with_capacity(cfg.threads.len());
    for &threads in &cfg.threads {
        csaw_obs::event::progress(&format!(
            "exp_scale: ingesting {} clients on {} thread(s)",
            cfg.clients, threads
        ));
        rows.push(run_one(seed, &cfg, threads));
    }
    // The store's final state must not depend on how the writers were
    // scheduled: same seed, same records, whatever the thread count.
    if let Some(first) = rows.first() {
        for r in &rows {
            assert_eq!(
                r.records, first.records,
                "store state diverged across thread counts"
            );
            assert_eq!(r.accepted, first.accepted);
            assert_eq!(r.rejected, first.rejected);
        }
    }
    Scale {
        cfg,
        rows,
        socket: None,
    }
}

/// The socketed phase: spawn a real `csaw-dbserver` on loopback, post
/// the same seed-pure workload through the [`RemoteDb`] connection
/// pool from `threads` posting threads, reconcile every receipt
/// exactly (accepted + rejected must cover every submitted report —
/// deferred indices are resubmitted until they land), then gracefully
/// drain the server and cross-check its counters against the client
/// side. Panics on any silent loss.
pub fn run_socketed(
    seed: u64,
    cfg: &ScaleConfig,
    threads: usize,
    server_cfg: DbServerConfig,
) -> SocketScale {
    let server = Arc::new(
        ServerDb::builder(seed)
            .shards(cfg.shards)
            .registrar(RegistrarConfig {
                max_risk: 1.0,
                max_per_window: usize::MAX,
                window: SimDuration::from_secs(60),
            })
            .build()
            .expect("scale harness store config is valid"),
    );
    let handle = spawn_dbserver(Arc::clone(&server), server_cfg).expect("loopback bind");
    let remote = RemoteDb::new(handle.addr());

    // Registration stays sequential (and untimed): UUID assignment is
    // order-dependent, and identical ordering keeps the socketed store
    // state byte-comparable with the in-process phase's.
    csaw_obs::event::progress(&format!(
        "exp_scale: registering {} clients over tcp",
        cfg.clients
    ));
    let uuids: Vec<Uuid> = (0..cfg.clients)
        .map(|i| {
            remote
                .register(SimTime::from_secs(i as u64), 0.0)
                .expect("open registrar accepts the population")
        })
        .collect();

    csaw_obs::event::progress(&format!(
        "exp_scale: posting over tcp on {threads} thread(s)"
    ));
    let lat = csaw_obs::metrics::Histogram::default();
    let chunk = cfg.clients.div_ceil(threads.max(1));
    let started = Instant::now();
    let (accepted, rejected, retries) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let remote = &remote;
                let uuids = &uuids;
                let lat = &lat;
                s.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(cfg.clients);
                    let (mut acc, mut rej, mut retries) = (0u64, 0u64, 0u64);
                    for (idx, &uuid) in uuids.iter().enumerate().take(hi).skip(lo) {
                        let template = batch_for(seed, idx, uuid, cfg);
                        let posted_at = template.posted_at;
                        let mut reports = template.reports().to_vec();
                        loop {
                            let t0 = Instant::now();
                            let receipt = remote
                                .ingest(Batch::new(uuid, reports.clone(), posted_at))
                                .expect("socketed post");
                            lat.observe_us(t0.elapsed().as_micros() as u64);
                            assert_eq!(
                                receipt.accepted + receipt.rejected + receipt.deferred(),
                                reports.len(),
                                "receipt must cover every index"
                            );
                            acc += receipt.accepted as u64;
                            rej += receipt.rejected as u64;
                            if receipt.deferred_indices.is_empty() {
                                break;
                            }
                            // Resubmit exactly the deferred reports —
                            // accepted/rejected ones must not repeat.
                            retries += 1;
                            reports = receipt
                                .deferred_indices
                                .iter()
                                .map(|&i| reports[i].clone())
                                .collect();
                        }
                    }
                    (acc, rej, retries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("posting thread panicked"))
            .fold((0u64, 0u64, 0u64), |(a, r, d), (da, dr, dd)| {
                (a + da, r + dr, d + dd)
            })
    });
    let ingest_secs = started.elapsed().as_secs_f64();
    csaw_obs::observe_secs("exp.scale.socket_ingest", ingest_secs);

    // Graceful drain, then reconcile: client-side receipt totals, the
    // server's own counters, and the store must all agree exactly.
    let stats = handle.drain();
    let posted_reports = (cfg.clients * REPORTS_PER_CLIENT) as u64;
    assert_eq!(
        accepted + rejected,
        posted_reports,
        "receipt reconciliation: every submitted report must be \
         accepted or rejected exactly once (deferred = resubmitted)"
    );
    assert_eq!(
        stats.reports_accepted, accepted,
        "server-side accept counter must match client receipts"
    );
    assert_eq!(
        stats.reports_rejected, rejected,
        "server-side reject counter must match client receipts"
    );
    assert_eq!(
        stats.protocol_errors, 0,
        "clean runs have no protocol errors"
    );

    SocketScale {
        threads,
        posted_reports,
        accepted,
        rejected,
        records: server.store().record_count(),
        deferred_retries: retries,
        ingest_secs,
        reports_per_sec: posted_reports as f64 / ingest_secs.max(1e-9),
        req_p50_us: lat.p50_us().unwrap_or(0),
        req_p99_us: lat.p99_us().unwrap_or(0),
        batches_ingested: stats.batches_ingested,
        coalesce_mean: stats.mean_requests_per_busy_pass(),
        coalesce_max: stats.max_requests_per_pass,
    }
}

/// One sweep point: a fresh store, `threads` concurrent writers.
fn run_one(seed: u64, cfg: &ScaleConfig, threads: usize) -> ScaleRow {
    let server = ServerDb::builder(seed)
        .shards(cfg.shards)
        .registrar(RegistrarConfig {
            max_risk: 1.0,
            max_per_window: usize::MAX,
            window: SimDuration::from_secs(60),
        })
        .build()
        .expect("scale harness store config is valid");

    // Registration is untimed setup: the harness measures ingest.
    let uuids: Vec<Uuid> = (0..cfg.clients)
        .map(|i| {
            server
                .register(SimTime::from_secs(i as u64), 0.0)
                .expect("open registrar accepts the population")
        })
        .collect();

    // Perf attribution (only under `--perf wall`): bracket the ingest
    // phase with lock-family and allocator readings, and have each
    // writer sum its own batch-build and ingest-call time. Probes read
    // the scope registry the store's TimedMutex/TimedRwLock stats were
    // resolved against at construction just above.
    let perf = csaw_obs::current().perf_mode() == PerfMode::Monotonic;
    let probes: Vec<LockProbe> = if perf {
        let ctx = csaw_obs::current();
        LOCK_FAMILIES
            .iter()
            .map(|f| LockProbe::new(&ctx.registry, f))
            .collect()
    } else {
        Vec::new()
    };
    let lock_before: Vec<LockTotals> = probes.iter().map(LockProbe::totals).collect();
    let alloc_before = alloc_track::snapshot();

    let chunk = cfg.clients.div_ceil(threads.max(1));
    let started = Instant::now();
    let (accepted, rejected, build_ns, call_ns) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let server = &server;
                let uuids = &uuids;
                s.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(cfg.clients);
                    let (mut acc, mut rej) = (0u64, 0u64);
                    let (mut build, mut call) = (0u64, 0u64);
                    for (idx, &uuid) in uuids.iter().enumerate().take(hi).skip(lo) {
                        if perf {
                            let t0 = Instant::now();
                            let batch = batch_for(seed, idx, uuid, cfg);
                            let t1 = Instant::now();
                            let receipt = server.ingest(batch).expect("registered client");
                            call += t1.elapsed().as_nanos() as u64;
                            build += (t1 - t0).as_nanos() as u64;
                            acc += receipt.accepted as u64;
                            rej += receipt.rejected as u64;
                        } else {
                            let batch = batch_for(seed, idx, uuid, cfg);
                            let receipt = server.ingest(batch).expect("registered client");
                            acc += receipt.accepted as u64;
                            rej += receipt.rejected as u64;
                        }
                    }
                    (acc, rej, build, call)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer thread panicked"))
            .fold(
                (0u64, 0u64, 0u64, 0u64),
                |(a, r, b, c), (da, dr, db, dc)| (a + da, r + dr, b + db, c + dc),
            )
    });
    let ingest_secs = started.elapsed().as_secs_f64();
    let row_perf = perf.then(|| RowPerf {
        build_s: build_ns as f64 / 1e9,
        call_s: call_ns as f64 / 1e9,
        locks: probes
            .iter()
            .zip(&lock_before)
            .map(|(p, before)| (p.name.clone(), p.totals().delta_since(before)))
            .filter(|(_, t)| !t.is_zero())
            .collect(),
        allocs: alloc_track::enabled().then(|| alloc_track::snapshot().delta_since(&alloc_before)),
    });
    let total_reports = (cfg.clients * REPORTS_PER_CLIENT) as f64;
    csaw_obs::observe_secs("exp.scale.ingest", ingest_secs);

    // Lookup phase: hammer the per-AS snapshot path. Alternate between
    // repeat lookups (cache hits) and a rotating confidence filter
    // (forcing recomputes) so both ends of the cache show up in p50/p99.
    let filter = ConfidenceFilter::default();
    let strict = ConfidenceFilter::strict(2, 0.0);
    // Row-local histogram (not the scope registry's — that one keeps
    // accumulating across sweep rows): the shared log-bucketed quantile
    // sketch replaces the old hand-rolled nearest-rank percentile.
    let lat = csaw_obs::metrics::Histogram::default();
    let mut served = 0usize;
    for i in 0..cfg.lookups {
        let asn = Asn((i as u32) % cfg.asns);
        let f = if i % 8 == 0 { &strict } else { &filter };
        let t0 = Instant::now();
        let records = server.blocked_for_as_infallible(asn, f);
        let us = t0.elapsed().as_micros() as u64;
        lat.observe_us(us);
        csaw_obs::observe_us("exp.scale.lookup", us);
        served += records.len();
    }
    assert!(served > 0, "lookup phase must return records");

    ScaleRow {
        threads,
        ingest_secs,
        reports_per_sec: total_reports / ingest_secs.max(1e-9),
        accepted,
        rejected,
        records: server.store().record_count(),
        lookup_p50_us: lat.p50_us().unwrap_or(0),
        lookup_p99_us: lat.p99_us().unwrap_or(0),
        perf: row_perf,
    }
}

/// Run with defaults sized down only by the caller's flags.
pub fn run(seed: u64) -> Scale {
    run_with(seed, ScaleConfig::default())
}

impl Scale {
    /// Text rendering: one row per thread count plus efficiency.
    pub fn render(&self) -> String {
        let mut out = format!(
            "exp_scale: {} clients x {} reports, {} shards, {} URLs, {} ASes\n\
             {:>7}  {:>10}  {:>12}  {:>10}  {:>9}  {:>9}  {:>8}  {:>8}\n",
            self.cfg.clients,
            REPORTS_PER_CLIENT,
            self.cfg.shards,
            self.cfg.urls,
            self.cfg.asns,
            "threads",
            "ingest_s",
            "reports/s",
            "accepted",
            "rejected",
            "records",
            "p50_us",
            "p99_us",
        );
        let base = self.rows.first().map(|r| r.reports_per_sec);
        for r in &self.rows {
            out.push_str(&format!(
                "{:>7}  {:>10.3}  {:>12.0}  {:>10}  {:>9}  {:>9}  {:>8}  {:>8}\n",
                r.threads,
                r.ingest_secs,
                r.reports_per_sec,
                r.accepted,
                r.rejected,
                r.records,
                r.lookup_p50_us,
                r.lookup_p99_us,
            ));
        }
        if let Some(base) = base {
            let eff: Vec<String> = self
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "{}T={:.2}",
                        r.threads,
                        r.reports_per_sec / (base * r.threads as f64)
                    )
                })
                .collect();
            out.push_str(&format!(
                "parallel efficiency vs 1 thread: {}\n",
                eff.join("  ")
            ));
        }
        if let Some(sck) = &self.socket {
            out.push_str(&format!(
                "socketed (tcp loopback, {} threads): {:.0} reports/s, \
                 req p50 {}µs p99 {}µs, {} accepted + {} rejected = {} posted, \
                 {} deferral retries, coalescing mean {:.2} / max {}\n",
                sck.threads,
                sck.reports_per_sec,
                sck.req_p50_us,
                sck.req_p99_us,
                sck.accepted,
                sck.rejected,
                sck.posted_reports,
                sck.deferred_retries,
                sck.coalesce_mean,
                sck.coalesce_max,
            ));
        }
        out
    }

    /// The machine-readable scorecard for this sweep (`BENCH_<seed>.json`).
    ///
    /// Seed-pure counts (config echo, accepted/rejected/records,
    /// per-family lock acquisitions, allocs/report) go in the
    /// `deterministic` section — two same-seed runs of the same build
    /// must agree byte-for-byte there. Wall-clock measurements
    /// (throughput, latency percentiles, wait/hold sums) go in `timing`.
    pub fn scorecard(&self, seed: u64) -> Scorecard {
        let mut card = Scorecard::new("exp_scale", seed);
        let mut config = JsonValue::obj();
        config.set("clients", self.cfg.clients);
        config.set("reports_per_client", REPORTS_PER_CLIENT);
        config.set("shards", self.cfg.shards);
        config.set("urls", self.cfg.urls);
        config.set("asns", self.cfg.asns);
        config.set("lookups", self.cfg.lookups);
        let mut det_rows: Vec<JsonValue> = Vec::with_capacity(self.rows.len());
        let mut timing_rows: Vec<JsonValue> = Vec::with_capacity(self.rows.len());
        for r in &self.rows {
            let mut d = JsonValue::obj();
            d.set("threads", r.threads);
            d.set("accepted", r.accepted);
            d.set("rejected", r.rejected);
            d.set("records", r.records);
            let mut t = JsonValue::obj();
            t.set("threads", r.threads);
            t.set("ingest_secs", r.ingest_secs);
            t.set("reports_per_sec", r.reports_per_sec);
            t.set("lookup_p50_us", r.lookup_p50_us);
            t.set("lookup_p99_us", r.lookup_p99_us);
            if let Some(p) = &r.perf {
                let mut acquires = JsonValue::obj();
                let mut locks = JsonValue::obj();
                for (name, tot) in &p.locks {
                    acquires.set(name, tot.acquires);
                    let mut l = JsonValue::obj();
                    l.set("contended", tot.contended);
                    l.set("wait_us", tot.wait_us);
                    l.set("hold_us", tot.hold_us);
                    locks.set(name, l);
                }
                d.set("lock_acquires", acquires);
                t.set("build_s", p.build_s);
                t.set("call_s", p.call_s);
                t.set("locks", locks);
                if let Some(a) = &p.allocs {
                    let reports = (r.accepted + r.rejected).max(1);
                    d.set("allocs_per_report", a.allocs / reports);
                    t.set("allocs", a.allocs);
                    t.set("alloc_bytes", a.bytes);
                }
            }
            det_rows.push(d);
            timing_rows.push(t);
        }
        card.deterministic.set("config", config);
        card.deterministic.set("rows", det_rows);
        if let Some(sck) = &self.socket {
            // Socketed section, split on the same rule: receipt totals
            // and store state are seed-pure; latency, throughput,
            // deferrals, and coalescing depend on real scheduling.
            let mut d = JsonValue::obj();
            d.set("threads", sck.threads);
            d.set("posted_reports", sck.posted_reports);
            d.set("accepted", sck.accepted);
            d.set("rejected", sck.rejected);
            d.set("records", sck.records);
            card.deterministic.set("socket", d);
            let mut t = JsonValue::obj();
            t.set("ingest_secs", sck.ingest_secs);
            t.set("reports_per_sec", sck.reports_per_sec);
            t.set("req_p50_us", sck.req_p50_us);
            t.set("req_p99_us", sck.req_p99_us);
            t.set("deferred_retries", sck.deferred_retries);
            t.set("batches_ingested", sck.batches_ingested);
            t.set("coalesce_mean", sck.coalesce_mean);
            t.set("coalesce_max", sck.coalesce_max);
            card.timing.set("socket", t);
        }
        // Machine identity for the health gate: parallel-scaling checks
        // are only meaningful when the host had the cores to express
        // them, so the card records how many it saw. Timing section —
        // it describes the machine, not the seed.
        card.timing.set(
            "host_threads",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        );
        card.timing.set("rows", timing_rows);
        card
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            clients: 400,
            threads: vec![1, 2],
            shards: 4,
            urls: 64,
            asns: 8,
            lookups: 40,
        }
    }

    #[test]
    fn deterministic_counts_and_thread_invariance() {
        let s = run_with(9, tiny());
        assert_eq!(s.rows.len(), 2);
        let total = (400 * REPORTS_PER_CLIENT) as u64;
        for r in &s.rows {
            assert_eq!(r.accepted + r.rejected, total);
            // Every 16th client contributes exactly one garbage report.
            assert_eq!(r.rejected, 400 / GARBAGE_EVERY as u64);
            assert!(r.records > 0);
            assert!(r.reports_per_sec > 0.0);
        }
        // run_with itself asserts cross-thread-count equality; re-run
        // with the same seed and check run-to-run determinism too.
        let s2 = run_with(9, tiny());
        assert_eq!(s.rows[0].accepted, s2.rows[0].accepted);
        assert_eq!(s.rows[0].records, s2.rows[0].records);
    }

    #[test]
    fn perf_capture_off_by_default_and_scorecard_still_valid() {
        let s = run_with(9, tiny());
        assert!(
            s.rows.iter().all(|r| r.perf.is_none()),
            "no attribution without an explicit perf mode"
        );
        let card = s.scorecard(9);
        assert_eq!(card.experiment, "exp_scale");
        assert!(!card.fingerprint().contains("lock_acquires"));
    }

    #[test]
    fn perf_capture_and_scorecard_fingerprint_are_seed_pure() {
        use csaw_obs::{install, ObsCtx, PerfMode};
        use std::sync::Arc;
        let run = || {
            let ctx = Arc::new(ObsCtx::new().with_perf(PerfMode::Monotonic));
            let _g = install(ctx);
            let s = run_with(11, tiny());
            let p = s.rows[0].perf.as_ref().expect("perf rows under wall mode");
            assert!(p.build_s >= 0.0 && p.call_s >= 0.0);
            assert!(
                p.locks
                    .iter()
                    .any(|(n, t)| n == "store.shard.records.write" && t.acquires > 0),
                "ingest must acquire the shard write lock: {:?}",
                p.locks
            );
            s.scorecard(11)
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "deterministic section must be byte-stable across same-seed runs"
        );
        assert!(a.fingerprint().contains("lock_acquires"));
        assert!(
            !a.fingerprint().contains("reports_per_sec"),
            "wall-clock numbers must stay out of the fingerprint"
        );
    }

    #[test]
    fn socketed_phase_reconciles_and_is_seed_pure() {
        // max_batches_per_pass: 1 forces the backpressure path under
        // concurrent posters — deferrals must resubmit, never lose.
        let run = || {
            let cfg = tiny();
            let sck = run_socketed(
                13,
                &cfg,
                4,
                DbServerConfig {
                    max_batches_per_pass: 1,
                    ..DbServerConfig::default()
                },
            );
            assert_eq!(
                sck.accepted + sck.rejected,
                (cfg.clients * REPORTS_PER_CLIENT) as u64
            );
            assert_eq!(sck.rejected, (cfg.clients / GARBAGE_EVERY) as u64);
            assert!(sck.records > 0);
            let mut scale = run_with(
                13,
                ScaleConfig {
                    threads: vec![1],
                    ..cfg
                },
            );
            let in_process_records = scale.rows[0].records;
            assert_eq!(
                sck.records, in_process_records,
                "socketed store state must match the in-process store state"
            );
            scale.socket = Some(sck);
            assert!(scale.render().contains("socketed (tcp loopback"));
            scale.scorecard(13)
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "socket deterministic section must be seed-pure"
        );
        assert!(a.fingerprint().contains("socket"));
        assert!(
            !a.fingerprint().contains("req_p99_us"),
            "socket latency stays out of the fingerprint"
        );
    }

    #[test]
    fn render_has_a_row_per_thread_count() {
        let s = run_with(5, tiny());
        let text = s.render();
        assert!(text.contains("reports/s"));
        assert!(text.contains("parallel efficiency"));
        assert_eq!(text.lines().count(), 2 + s.rows.len() + 1);
    }
}
