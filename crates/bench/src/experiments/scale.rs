//! `exp_scale` — the million-client ingestion harness for the sharded
//! global store.
//!
//! The paper's server must absorb crowdsourced updates from an open
//! population (§5); this extension measures how the lock-striped
//! [`ShardedStore`](csaw::global::StorageBackend) behaves when that
//! population is driven hard: `--clients` synthetic clients (default
//! one million) each post one report batch, from 1..=8 concurrent
//! writer threads, against a fresh store per thread count.
//!
//! What is measured, per thread count:
//!
//! - sustained ingest throughput (reports/s, wall clock) while all
//!   threads hammer `ServerDb::ingest` concurrently;
//! - post-ingest `blocked_for_as` lookup latency (p50/p99 over
//!   `--lookups` calls), exercising the per-shard snapshot cache;
//! - parallel efficiency relative to the single-thread run.
//!
//! The workload is a *pure function of (seed, client index)*: every
//! client's batch is derived from its own forked RNG, so the final
//! store state is identical no matter how clients are partitioned
//! across threads — the concurrency tests in `crates/store` assert
//! exactly this, and [`run`] re-checks it via `record_count` across
//! thread counts. Every 16th client salts one garbage-URL report into
//! its batch to keep the sanitization/reject path on the hot loop.
//!
//! Throughput numbers are wall-clock and therefore machine-dependent;
//! EXPERIMENTS.md records the reference environment alongside the
//! numbers. Everything else (accepted/rejected counts, record counts,
//! lookup result sizes) is deterministic in the seed.

use csaw::global::{Batch, ConfidenceFilter, RegistrarConfig, Report, ServerDb, Uuid};
use csaw_censor::blocking::BlockingType;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use std::time::Instant;

/// Reports per client batch (the paper's clients post small batches).
const REPORTS_PER_CLIENT: usize = 4;

/// Every n-th client includes one garbage report (rejected path).
const GARBAGE_EVERY: usize = 16;

/// Harness knobs (all settable from the `exp_scale` command line).
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Synthetic client population; each posts one batch.
    pub clients: usize,
    /// Writer-thread counts to sweep (a fresh store per entry).
    pub threads: Vec<usize>,
    /// Shard count for the store under test.
    pub shards: usize,
    /// URL pool size (keys collide across clients, as in deployment).
    pub urls: usize,
    /// Number of distinct ASes the population reports from.
    pub asns: u32,
    /// `blocked_for_as` calls in the lookup-latency phase.
    pub lookups: usize,
}

impl Default for ScaleConfig {
    fn default() -> ScaleConfig {
        ScaleConfig {
            clients: 1_000_000,
            threads: vec![1, 2, 4, 8],
            shards: 16,
            urls: 10_000,
            asns: 64,
            lookups: 10_000,
        }
    }
}

/// One row of the sweep: a thread count and what it achieved.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Writer threads used for the ingest phase.
    pub threads: usize,
    /// Wall-clock ingest time in seconds.
    pub ingest_secs: f64,
    /// Sustained ingest throughput, reports per second.
    pub reports_per_sec: f64,
    /// Reports accepted by the store (deterministic in the seed).
    pub accepted: u64,
    /// Reports rejected by sanitization (deterministic in the seed).
    pub rejected: u64,
    /// Records in the store after ingest (thread-count independent).
    pub records: usize,
    /// Median `blocked_for_as` latency, µs.
    pub lookup_p50_us: u64,
    /// 99th-percentile `blocked_for_as` latency, µs.
    pub lookup_p99_us: u64,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct Scale {
    /// The configuration that was run.
    pub cfg: ScaleConfig,
    /// One row per thread count, in sweep order.
    pub rows: Vec<ScaleRow>,
}

/// The batch client `idx` posts — a pure function of `(seed, idx)`, so
/// the aggregate workload is independent of thread partitioning.
fn batch_for(seed: u64, idx: usize, uuid: Uuid, cfg: &ScaleConfig) -> Batch {
    let mut rng = DetRng::new(seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let stages = [
        BlockingType::DnsNxdomain,
        BlockingType::IpDrop,
        BlockingType::HttpDrop,
        BlockingType::HttpBlockPageRedirect,
    ];
    let mut reports = Vec::with_capacity(REPORTS_PER_CLIENT);
    let asn = rng.range_u64(0, cfg.asns as u64) as u32;
    for r in 0..REPORTS_PER_CLIENT {
        let garbage = idx.is_multiple_of(GARBAGE_EVERY) && r == 0;
        let url = if garbage {
            // Fails `Url::parse` in the store's sanitizer.
            "not a url at all".to_string()
        } else {
            format!("http://blocked{}.example.net/", rng.index(cfg.urls))
        };
        reports.push(Report {
            url,
            asn,
            measured_at_us: (idx as u64) * 1_000 + r as u64,
            stages: vec![stages[rng.index(stages.len())]],
        });
    }
    Batch::new(uuid, reports, SimTime::from_secs(1_000 + idx as u64))
}

/// Run the sweep. `seed` fixes the workload; `cfg` sizes it.
pub fn run_with(seed: u64, cfg: ScaleConfig) -> Scale {
    let mut rows = Vec::with_capacity(cfg.threads.len());
    for &threads in &cfg.threads {
        csaw_obs::event::progress(&format!(
            "exp_scale: ingesting {} clients on {} thread(s)",
            cfg.clients, threads
        ));
        rows.push(run_one(seed, &cfg, threads));
    }
    // The store's final state must not depend on how the writers were
    // scheduled: same seed, same records, whatever the thread count.
    if let Some(first) = rows.first() {
        for r in &rows {
            assert_eq!(
                r.records, first.records,
                "store state diverged across thread counts"
            );
            assert_eq!(r.accepted, first.accepted);
            assert_eq!(r.rejected, first.rejected);
        }
    }
    Scale { cfg, rows }
}

/// One sweep point: a fresh store, `threads` concurrent writers.
fn run_one(seed: u64, cfg: &ScaleConfig, threads: usize) -> ScaleRow {
    let server = ServerDb::builder(seed)
        .shards(cfg.shards)
        .registrar(RegistrarConfig {
            max_risk: 1.0,
            max_per_window: usize::MAX,
            window: SimDuration::from_secs(60),
        })
        .build()
        .expect("scale harness store config is valid");

    // Registration is untimed setup: the harness measures ingest.
    let uuids: Vec<Uuid> = (0..cfg.clients)
        .map(|i| {
            server
                .register(SimTime::from_secs(i as u64), 0.0)
                .expect("open registrar accepts the population")
        })
        .collect();

    let chunk = cfg.clients.div_ceil(threads.max(1));
    let started = Instant::now();
    let (accepted, rejected) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let server = &server;
                let uuids = &uuids;
                s.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(cfg.clients);
                    let (mut acc, mut rej) = (0u64, 0u64);
                    for (idx, &uuid) in uuids.iter().enumerate().take(hi).skip(lo) {
                        let batch = batch_for(seed, idx, uuid, cfg);
                        let receipt = server.ingest(batch).expect("registered client");
                        acc += receipt.accepted as u64;
                        rej += receipt.rejected as u64;
                    }
                    (acc, rej)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer thread panicked"))
            .fold((0u64, 0u64), |(a, r), (da, dr)| (a + da, r + dr))
    });
    let ingest_secs = started.elapsed().as_secs_f64();
    let total_reports = (cfg.clients * REPORTS_PER_CLIENT) as f64;
    csaw_obs::observe_secs("exp.scale.ingest", ingest_secs);

    // Lookup phase: hammer the per-AS snapshot path. Alternate between
    // repeat lookups (cache hits) and a rotating confidence filter
    // (forcing recomputes) so both ends of the cache show up in p50/p99.
    let filter = ConfidenceFilter::default();
    let strict = ConfidenceFilter::strict(2, 0.0);
    let mut lat: Vec<u64> = Vec::with_capacity(cfg.lookups);
    let mut served = 0usize;
    for i in 0..cfg.lookups {
        let asn = Asn((i as u32) % cfg.asns);
        let f = if i % 8 == 0 { &strict } else { &filter };
        let t0 = Instant::now();
        let records = server.blocked_for_as(asn, f);
        let us = t0.elapsed().as_micros() as u64;
        lat.push(us);
        csaw_obs::observe_us("exp.scale.lookup", us);
        served += records.len();
    }
    assert!(served > 0, "lookup phase must return records");
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let i = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[i]
    };

    ScaleRow {
        threads,
        ingest_secs,
        reports_per_sec: total_reports / ingest_secs.max(1e-9),
        accepted,
        rejected,
        records: server.store().record_count(),
        lookup_p50_us: pct(0.50),
        lookup_p99_us: pct(0.99),
    }
}

/// Run with defaults sized down only by the caller's flags.
pub fn run(seed: u64) -> Scale {
    run_with(seed, ScaleConfig::default())
}

impl Scale {
    /// Text rendering: one row per thread count plus efficiency.
    pub fn render(&self) -> String {
        let mut out = format!(
            "exp_scale: {} clients x {} reports, {} shards, {} URLs, {} ASes\n\
             {:>7}  {:>10}  {:>12}  {:>10}  {:>9}  {:>9}  {:>8}  {:>8}\n",
            self.cfg.clients,
            REPORTS_PER_CLIENT,
            self.cfg.shards,
            self.cfg.urls,
            self.cfg.asns,
            "threads",
            "ingest_s",
            "reports/s",
            "accepted",
            "rejected",
            "records",
            "p50_us",
            "p99_us",
        );
        let base = self.rows.first().map(|r| r.reports_per_sec);
        for r in &self.rows {
            out.push_str(&format!(
                "{:>7}  {:>10.3}  {:>12.0}  {:>10}  {:>9}  {:>9}  {:>8}  {:>8}\n",
                r.threads,
                r.ingest_secs,
                r.reports_per_sec,
                r.accepted,
                r.rejected,
                r.records,
                r.lookup_p50_us,
                r.lookup_p99_us,
            ));
        }
        if let Some(base) = base {
            let eff: Vec<String> = self
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "{}T={:.2}",
                        r.threads,
                        r.reports_per_sec / (base * r.threads as f64)
                    )
                })
                .collect();
            out.push_str(&format!(
                "parallel efficiency vs 1 thread: {}\n",
                eff.join("  ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            clients: 400,
            threads: vec![1, 2],
            shards: 4,
            urls: 64,
            asns: 8,
            lookups: 40,
        }
    }

    #[test]
    fn deterministic_counts_and_thread_invariance() {
        let s = run_with(9, tiny());
        assert_eq!(s.rows.len(), 2);
        let total = (400 * REPORTS_PER_CLIENT) as u64;
        for r in &s.rows {
            assert_eq!(r.accepted + r.rejected, total);
            // Every 16th client contributes exactly one garbage report.
            assert_eq!(r.rejected, 400 / GARBAGE_EVERY as u64);
            assert!(r.records > 0);
            assert!(r.reports_per_sec > 0.0);
        }
        // run_with itself asserts cross-thread-count equality; re-run
        // with the same seed and check run-to-run determinism too.
        let s2 = run_with(9, tiny());
        assert_eq!(s.rows[0].accepted, s2.rows[0].accepted);
        assert_eq!(s.rows[0].records, s2.rows[0].records);
    }

    #[test]
    fn render_has_a_row_per_thread_count() {
        let s = run_with(5, tiny());
        let text = s.render();
        assert!(text.contains("reports/s"));
        assert!(text.contains("parallel efficiency"));
        assert_eq!(text.lines().count(), 2 + s.rows.len() + 1);
    }
}
