//! `exp_chaos --split-brain`: replica convergence through a partition.
//!
//! The replicated global DB (`csaw-replica`) claims that a leader and
//! its per-region read replicas converge to byte-identical states no
//! matter how the WAL shipping links fail, because the shipped state is
//! a join-semilattice and the shipping protocol is idempotent. This
//! experiment puts that claim under a deterministic split-brain:
//!
//! - a leader [`ReplicatedStore`] serves the full ingest pipeline —
//!   C-Saw clients browsing a censored world plus an Encore-style
//!   cross-origin probe population (~10× the client count, single
//!   reachability reports) posting through the *same*
//!   `GlobalApi::ingest` path;
//! - N per-region replicas, each a real `csaw-dbserver` reactor over
//!   its own `ShardedStore` (deliberately different shard counts),
//!   receive the leader's WAL over SHIP/ACK frames every
//!   `ship_every_s` virtual seconds;
//! - in the `split` scenario an [`OutageSchedule`] partitions the
//!   leader from region `r0` mid-ingest; posts keep landing at the
//!   leader, `r0`'s lag and staleness gauges climb, and the
//!   `replica.staleness` SLO must fire;
//! - on heal, shipping resumes from the last acked position and every
//!   replica must reach the leader's exact fingerprint — which also
//!   equals the fingerprint of the `baseline` scenario that never
//!   partitioned, since both scenarios ingest the identical workload.
//!
//! Zero silent loss is machine-checked exactly as in the chaos sweep:
//! every client's accounting identity, every Encore receipt
//! reconciling to one accepted report, and the leader's record count
//! equalling the number of distinct `(url, asn)` keys ever posted.

use crate::runner::{self, Experiment, TrialSpec};
use crate::scorecard::Scorecard;
use csaw::client::CsawClient;
use csaw::config::CsawConfig;
use csaw::encore::{EncoreConfig, EncoreSource};
use csaw::global::{ConfidenceFilter, GlobalApi, RemoteDb, ServerDb};
use csaw::global::server::RegistrarConfig;
use csaw_censor::profiles;
use csaw_dbserver::{spawn_dbserver, DbServerConfig, DbServerHandle};
use csaw_faults::OutageSchedule;
use csaw_obs::json::JsonValue;
use csaw_obs::slo::{SloKind, SloRule, SloSet};
use csaw_replica::{ReplicatedStore, StoreState, WalShipper};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_store::ShardedStore;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Experiment shape.
#[derive(Debug, Clone)]
pub struct SplitBrainConfig {
    /// Full C-Saw clients browsing the censored world.
    pub clients: usize,
    /// Unique blocked URLs each full client accesses.
    pub urls_per_client: usize,
    /// Read-replica regions (region `r0` is the partitioned one).
    pub regions: usize,
    /// Encore probe identities per full client (the ~10× modality).
    pub encore_factor: usize,
    /// Reports each Encore probe posts over the horizon.
    pub encore_rounds: usize,
    /// Virtual seconds between WAL shipping rounds.
    pub ship_every_s: u64,
    /// Ingest horizon after the browse burst, virtual seconds.
    pub horizon_s: u64,
    /// Partition window for the `split` scenario, virtual seconds
    /// (absolute, leader ↔ region `r0` only).
    pub partition_s: (u64, u64),
}

impl Default for SplitBrainConfig {
    fn default() -> SplitBrainConfig {
        SplitBrainConfig {
            clients: 4,
            urls_per_client: 5,
            regions: 2,
            encore_factor: 10,
            encore_rounds: 2,
            ship_every_s: 1_800,
            horizon_s: 12 * 3_600,
            partition_s: (3 * 3_600, 9 * 3_600),
        }
    }
}

/// One scenario's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitBrainRow {
    /// `baseline` (no partition) or `split`.
    pub scenario: String,
    /// Reports queued across all full clients.
    pub queued: u64,
    /// Reports the leader durably accepted from full clients.
    pub posted: u64,
    /// Reports accepted from the Encore probe population.
    pub encore_posted: u64,
    /// WAL lines the leader journalled (== what replicas must apply).
    pub leader_seq: u64,
    /// Distinct records in the leader store at quiescence.
    pub store_records: usize,
    /// Worst per-link lag seen at any shipping round, WAL lines.
    pub peak_lag: u64,
    /// Worst per-link staleness seen at any shipping round, seconds.
    pub peak_staleness_s: u64,
    /// Shipping rounds needed after the horizon until every replica
    /// was fully synced.
    pub heal_rounds: u64,
    /// Records served from region `r0` through the socketed
    /// `GlobalApi` read path after heal.
    pub replica_records: usize,
    /// Did every replica reach the leader's exact fingerprint (and
    /// their fold-merge equal the leader's state, and the replica
    /// read path serve the leader's blocked set)?
    pub converged: bool,
    /// The converged state fingerprint (leader == every replica).
    pub fingerprint: String,
    /// Zero-silent-loss accounting: client identities, Encore receipt
    /// reconciliation, and the distinct-key record count all exact.
    pub accounted: bool,
}

/// The experiment result: one row per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitBrain {
    /// `baseline` then `split`.
    pub rows: Vec<SplitBrainRow>,
}

/// The SLO set the split-brain run is gated on: the full C-Saw
/// pipeline rules plus a replication-staleness ceiling — no replica
/// may close a window more than four virtual hours behind its last
/// full sync. The partition scenario must fire it; baseline must not.
pub fn slo_set() -> SloSet {
    let mut set = SloSet::csaw_default();
    set.rules.push(SloRule {
        name: "replica.staleness".into(),
        windows: 1,
        kind: SloKind::GaugeLastMax {
            family: "replica.staleness_us".into(),
            max: 4 * 3_600 * 1_000_000,
        },
    });
    set
}

/// A replica region: the backing store (kept for state capture) and
/// the live dbserver in front of it.
struct RegionHandle {
    store: Arc<ShardedStore>,
    server: DbServerHandle,
}

fn run_scenario(seed: u64, cfg: &SplitBrainConfig, partitioned: bool) -> SplitBrainRow {
    let scenario = if partitioned { "split" } else { "baseline" };
    csaw_obs::current()
        .timeline
        .set_run(&format!("scenario={scenario}"));
    let world = super::chaos::chaos_world();
    let asn = profiles::ISP_A_ASN;

    // Leader: journal-before-apply wrapper over the sharded store,
    // fronted by the full server (registration gate + receipts). The
    // registrar is permissive because the Encore population registers
    // ~10× more identities than the default per-window cap allows.
    let leader = Arc::new(ReplicatedStore::new(Arc::new(
        ShardedStore::new(8).expect("shard count"),
    )));
    let server = ServerDb::builder(seed)
        .backend(leader.clone())
        .registrar(RegistrarConfig {
            max_risk: 1.0,
            max_per_window: usize::MAX,
            window: SimDuration::from_secs(3_600),
        })
        .build()
        .expect("store config");

    // Replicas: one real dbserver per region, each over its own store
    // with a different shard count — convergence must not depend on
    // physical layout. The shipper gates region r0 on the partition.
    let regions: Vec<RegionHandle> = (0..cfg.regions)
        .map(|r| {
            let store = Arc::new(ShardedStore::new(4 + r).expect("shard count"));
            let rdb = ServerDb::builder(seed ^ (r as u64 + 1))
                .backend(store.clone())
                .build()
                .expect("replica store config");
            let server = spawn_dbserver(Arc::new(rdb), DbServerConfig::default())
                .expect("replica server spawn");
            RegionHandle { store, server }
        })
        .collect();
    let mut shipper = WalShipper::new(leader.clone());
    for (r, region) in regions.iter().enumerate() {
        shipper.add_region(&format!("r{r}"), region.server.addr(), SimTime::ZERO);
    }
    let partition = OutageSchedule::from_windows(if partitioned {
        vec![(
            SimTime::from_secs(cfg.partition_s.0),
            SimTime::from_secs(cfg.partition_s.1),
        )]
    } else {
        Vec::new()
    });

    // Every distinct (url, asn) key ever accepted — the store must
    // hold exactly this many records at quiescence.
    let mut expected: BTreeSet<(String, u32)> = BTreeSet::new();
    let mut accounted = true;

    // Phase 1: registrations — full clients one per virtual second,
    // then the Encore probe population right after.
    let mut clients: Vec<CsawClient> = (0..cfg.clients)
        .map(|idx| {
            let mut c = CsawClient::new(
                CsawConfig::default(),
                Some("cdn-front.example"),
                seed ^ ((idx as u64 + 1) << 8),
            );
            let t = SimTime::from_secs(idx as u64);
            csaw_obs::advance_clock_us(t.as_micros());
            c.register(&server, asn, t, 0.0).expect("registration");
            c
        })
        .collect();

    // Encore targets overlap the full-client URL space (probe votes
    // corroborate and overwrite client records) plus probe-only URLs.
    let mut targets: Vec<String> = Vec::new();
    for idx in 0..cfg.clients.min(2) {
        for u in 0..cfg.urls_per_client.min(2) {
            targets.push(format!("http://www.youtube.com/c{idx}/u{u}"));
        }
    }
    for e in 0..4 {
        targets.push(format!("http://encore-{e}.example/"));
    }
    let encore = EncoreSource::new(
        seed ^ 0xE7C0,
        EncoreConfig {
            probes: cfg.clients * cfg.encore_factor,
            probes_per_client: cfg.encore_rounds,
            targets,
            asn: asn.0,
        },
    );
    let probe_uuids: Vec<csaw_store::Uuid> = (0..encore.probe_count())
        .map(|p| {
            let t = SimTime::from_secs((cfg.clients + p) as u64);
            csaw_obs::advance_clock_us(t.as_micros());
            encore.register(&server, p, t).expect("probe registration")
        })
        .collect();

    // Phase 2: browse sessions in global virtual-time order (the chaos
    // sweep's cadence: client idx starts at 100 + 7·idx, revisits every
    // 30 s). Every URL is censored, so each browse queues one report.
    let mut browse: Vec<(u64, usize, usize)> = Vec::new();
    for idx in 0..cfg.clients {
        for u in 0..cfg.urls_per_client {
            browse.push((100 + 7 * idx as u64 + 30 * u as u64, idx, u));
        }
    }
    browse.sort_unstable();
    let mut browse_end = SimTime::ZERO;
    for (t_secs, idx, u) in browse {
        let now = SimTime::from_secs(t_secs);
        browse_end = browse_end.max(now);
        csaw_obs::advance_clock_us(now.as_micros());
        let url = csaw_webproto::url::Url::parse(&format!("http://www.youtube.com/c{idx}/u{u}"))
            .expect("static url");
        clients[idx].request(&world, &url, now);
        expected.insert((format!("http://www.youtube.com/c{idx}/u{u}"), asn.0));
    }

    // Phase 3: the ingest horizon. Every `ship_every_s` step drains
    // full-client queues, posts the step's slice of Encore probes, and
    // runs a shipping round — with region r0 gated on the partition.
    let steps = (cfg.horizon_s / cfg.ship_every_s).max(1);
    let mut encore_posted = 0u64;
    let mut peak_lag = 0u64;
    let mut peak_staleness_us = 0u64;
    let mut track = |statuses: &[csaw_replica::LinkStatus]| {
        for s in statuses {
            peak_lag = peak_lag.max(s.lag);
            peak_staleness_us = peak_staleness_us.max(s.staleness_us);
        }
    };
    for step in 1..=steps {
        let now = browse_end + SimDuration::from_secs(cfg.ship_every_s * step);
        csaw_obs::advance_clock_us(now.as_micros());
        for c in clients.iter_mut() {
            if c.pending_reports() > 0 {
                c.post_reports(&server, now);
            }
        }
        for p in 0..encore.probe_count() {
            for round in 0..cfg.encore_rounds {
                if 1 + ((p + round * encore.probe_count()) as u64) % steps != step {
                    continue;
                }
                let batch = encore.probe_batch(p, round, probe_uuids[p], now);
                let url = batch.reports()[0].url.clone();
                let receipt = server.ingest(batch).expect("probe post");
                accounted &= receipt.accepted == 1;
                encore_posted += receipt.accepted as u64;
                expected.insert((url, asn.0));
            }
        }
        let statuses = shipper.ship_round(now, |i| !(i == 0 && partition.is_down(now)));
        track(&statuses);
    }

    // Phase 4: heal — keep shipping until every replica acks the full
    // log. A handful of rounds must suffice; a scenario that cannot
    // converge within the cap reports `converged: false` below.
    let mut heal_rounds = 0u64;
    for round in 1..=64u64 {
        let now = browse_end + SimDuration::from_secs(cfg.ship_every_s * (steps + round));
        csaw_obs::advance_clock_us(now.as_micros());
        let statuses = shipper.ship_round(now, |_| true);
        track(&statuses);
        heal_rounds = round;
        if statuses.iter().all(|s| s.synced) {
            break;
        }
    }

    // Accounting: the chaos invariants, extended with the Encore
    // receipts (already folded in above) and the distinct-key count.
    let mut queued = 0u64;
    let mut posted = 0u64;
    for c in &clients {
        queued += c.stats.reports_queued;
        posted += c.stats.reports_posted;
        accounted &= c.stats.reports_queued
            == c.stats.reports_posted
                + c.stats.reports_dropped
                + c.stats.reports_quarantined
                + c.pending_reports() as u64;
        accounted &= c.pending_reports() == 0;
    }
    accounted &= queued == (cfg.clients * cfg.urls_per_client) as u64;
    accounted &= posted == queued;
    accounted &= encore_posted == encore.total_reports() as u64;
    let store_records = leader.inner().record_count();
    accounted &= store_records == expected.len();

    // Convergence: every replica must hold the leader's exact
    // fingerprint, their fold-merge must equal the leader's state, and
    // the socketed read path from region r0 must serve the leader's
    // blocked set.
    let leader_state = StoreState::capture(leader.inner());
    let fingerprint = leader_state.fingerprint();
    let mut fold = StoreState::default();
    let mut converged = true;
    for region in &regions {
        let state = StoreState::capture(&*region.store);
        converged &= state.fingerprint() == fingerprint;
        fold.merge(&state);
    }
    converged &= fold == leader_state;

    let blocked_keys = |recs: &[csaw_store::GlobalRecord]| -> Vec<(String, u32)> {
        let mut keys: Vec<(String, u32)> = recs.iter().map(|r| (r.url.clone(), r.asn.0)).collect();
        keys.sort();
        keys
    };
    let remote = RemoteDb::new(regions[0].server.addr());
    let served = remote
        .blocked_for_as(asn, &ConfidenceFilter::default())
        .expect("replica read path");
    let local = leader
        .inner()
        .blocked_for_as(asn, &ConfidenceFilter::default())
        .expect("the in-memory backend cannot fail");
    converged &= blocked_keys(&served) == blocked_keys(&local);
    let replica_records = served.len();
    for region in regions {
        region.server.drain();
    }

    SplitBrainRow {
        scenario: scenario.to_string(),
        queued,
        posted,
        encore_posted,
        leader_seq: leader.leader_seq(),
        store_records,
        peak_lag,
        peak_staleness_s: peak_staleness_us / 1_000_000,
        heal_rounds,
        replica_records,
        converged,
        fingerprint,
        accounted,
    }
}

/// Run both scenarios serially.
pub fn run(seed: u64, cfg: &SplitBrainConfig) -> SplitBrain {
    run_jobs(seed, cfg, 1)
}

/// Run both scenarios with one runner trial each. Both trials use the
/// raw experiment seed so they ingest the identical workload — the
/// partitioned scenario must converge to the baseline's fingerprint.
pub fn run_jobs(seed: u64, cfg: &SplitBrainConfig, jobs: usize) -> SplitBrain {
    runner::run(
        &SplitBrainExp {
            seed,
            cfg: cfg.clone(),
        },
        jobs,
    )
}

/// The experiment decomposed: one trial per scenario.
pub struct SplitBrainExp {
    /// Experiment seed (shared by both scenarios on purpose).
    pub seed: u64,
    /// Experiment shape.
    pub cfg: SplitBrainConfig,
}

impl Experiment for SplitBrainExp {
    type Trial = SplitBrainRow;
    type Output = SplitBrain;

    fn name(&self) -> &'static str {
        "chaos-splitbrain"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        ["baseline", "split"]
            .iter()
            .enumerate()
            .map(|(i, s)| TrialSpec::salted(self.seed, i as u64, format!("scenario={s}")))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> SplitBrainRow {
        run_scenario(self.seed, &self.cfg, spec.ordinal == 1)
    }

    fn reduce(&self, trials: Vec<SplitBrainRow>) -> SplitBrain {
        SplitBrain { rows: trials }
    }
}

impl SplitBrain {
    /// True when any scenario lost a report (accounting identity,
    /// receipt reconciliation, or the distinct-key count broken).
    pub fn silent_loss(&self) -> bool {
        self.rows.iter().any(|r| !r.accounted)
    }

    /// True when any scenario failed to converge after heal.
    pub fn not_converged(&self) -> bool {
        self.rows.iter().any(|r| !r.converged)
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "exp_chaos --split-brain: replica convergence through a partition\n\
             (leader WAL shipped to per-region dbservers over SHIP/ACK; the split\n\
             scenario cuts region r0 mid-ingest, then heals and must converge)\n\n\
             scenario  queued  posted  encore  wal  records  lag^  stale^(s)  heal  served  converged  accounted  fingerprint\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8} {:>7}  {:>6}  {:>6}  {:>4}  {:>7}  {:>4}  {:>9}  {:>4}  {:>6}  {:>9}  {:>9}  {}\n",
                r.scenario,
                r.queued,
                r.posted,
                r.encore_posted,
                r.leader_seq,
                r.store_records,
                r.peak_lag,
                r.peak_staleness_s,
                r.heal_rounds,
                r.replica_records,
                if r.converged { "yes" } else { "NO" },
                if r.accounted { "yes" } else { "NO" },
                r.fingerprint,
            ));
        }
        out
    }

    /// The machine-readable scorecard: config, both scenario rows, and
    /// the Encore modality summary, all in the deterministic
    /// (fingerprinted) section.
    pub fn scorecard(&self, cfg: &SplitBrainConfig, seed: u64) -> Scorecard {
        let mut card = Scorecard::new("chaos-splitbrain", seed);
        let mut det = JsonValue::obj();
        let mut config = JsonValue::obj();
        config.set("clients", cfg.clients);
        config.set("urls_per_client", cfg.urls_per_client);
        config.set("regions", cfg.regions);
        config.set("ship_every_s", cfg.ship_every_s);
        config.set("horizon_s", cfg.horizon_s);
        config.set("partition_start_s", cfg.partition_s.0);
        config.set("partition_end_s", cfg.partition_s.1);
        det.set("config", config);
        let mut encore = JsonValue::obj();
        encore.set("probes", cfg.clients * cfg.encore_factor);
        encore.set("rounds", cfg.encore_rounds);
        encore.set(
            "posted",
            self.rows.first().map(|r| r.encore_posted).unwrap_or(0),
        );
        det.set("encore", encore);
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = JsonValue::obj();
                row.set("scenario", r.scenario.as_str());
                row.set("queued", r.queued);
                row.set("posted", r.posted);
                row.set("encore_posted", r.encore_posted);
                row.set("leader_seq", r.leader_seq);
                row.set("records", r.store_records);
                row.set("peak_lag", r.peak_lag);
                row.set("peak_staleness_s", r.peak_staleness_s);
                row.set("heal_rounds", r.heal_rounds);
                row.set("replica_records", r.replica_records);
                row.set("converged", r.converged);
                row.set("accounted", r.accounted);
                row.set("fingerprint", r.fingerprint.as_str());
                row
            })
            .collect();
        det.set("rows", rows);
        card.deterministic = det;
        card
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SplitBrainConfig {
        SplitBrainConfig {
            clients: 3,
            urls_per_client: 4,
            encore_factor: 4,
            ..SplitBrainConfig::default()
        }
    }

    #[test]
    fn both_scenarios_converge_to_the_same_fingerprint() {
        let result = run(1, &quick_cfg());
        assert!(!result.silent_loss(), "{}", result.render());
        assert!(!result.not_converged(), "{}", result.render());
        let [baseline, split] = &result.rows[..] else {
            panic!("expected two rows");
        };
        // Identical workload, so healing must erase the partition
        // entirely — down to the exact same state fingerprint.
        assert_eq!(baseline.fingerprint, split.fingerprint);
        // The partition actually bit: region r0 fell hours behind.
        assert!(split.peak_staleness_s > baseline.peak_staleness_s);
        assert!(split.peak_lag > baseline.peak_lag);
        assert!(split.peak_staleness_s as u64 > 4 * 3_600);
    }

    #[test]
    fn same_seed_same_render() {
        let a = run(7, &quick_cfg()).render();
        let b = run(7, &quick_cfg()).render();
        assert_eq!(a, b);
    }

    /// Run under hour windows + the split-brain SLO set (the binary's
    /// configuration) and return the frame and violation JSONL streams.
    fn windowed_run(seed: u64, cfg: &SplitBrainConfig, jobs: usize) -> (String, Vec<String>) {
        use csaw_obs::slo::VIOLATION_EVENT;
        use csaw_obs::{ManualClock, ObsCtx, RingSink, WindowCfg, FRAME_EVENT};

        let ring = Arc::new(RingSink::new(1 << 16));
        let ctx = Arc::new(
            ObsCtx::new()
                .with_clock(Arc::new(ManualClock::new()))
                .with_sink(ring.clone()),
        );
        ctx.timeline
            .configure(WindowCfg::from_secs(3_600.0, Arc::new(slo_set())));
        let _guard = csaw_obs::install(ctx.clone());
        let _ = run_jobs(seed, cfg, jobs);
        ctx.flush_timeline();
        let mut frames = Vec::new();
        let mut viols = Vec::new();
        for e in ring.drain() {
            let line = e.to_json().to_string_compact();
            if e.name == FRAME_EVENT {
                frames.push(line);
            } else if e.name == VIOLATION_EVENT {
                viols.push(line);
            }
        }
        (frames.join("\n"), viols)
    }

    #[test]
    fn frames_and_verdicts_are_jobs_invariant() {
        let (frames_1, viols_1) = windowed_run(11, &quick_cfg(), 1);
        let (frames_2, viols_2) = windowed_run(11, &quick_cfg(), 2);
        assert!(!frames_1.is_empty(), "windowed run must emit frames");
        assert_eq!(frames_1, frames_2, "frames must not depend on --jobs");
        assert_eq!(viols_1, viols_2, "verdicts must not depend on --jobs");
    }

    #[test]
    fn the_partition_fires_the_staleness_slo_and_baseline_does_not() {
        let (_, viols) = windowed_run(1, &quick_cfg(), 1);
        let staleness: Vec<&String> = viols
            .iter()
            .filter(|v| v.contains("replica.staleness"))
            .collect();
        assert!(
            !staleness.is_empty(),
            "the partition must fire the staleness SLO: {viols:?}"
        );
        assert!(
            staleness.iter().all(|v| v.contains("scenario=split")),
            "only the split scenario may breach staleness: {staleness:?}"
        );
        assert!(
            staleness.iter().all(|v| v.contains("r0")),
            "only the partitioned region may breach: {staleness:?}"
        );
    }
}
