//! One module per table/figure of the paper's evaluation.
//!
//! | module | artifact |
//! |---|---|
//! | [`table1`] | Table 1 — ISP-A vs ISP-B mechanisms |
//! | [`fig1`] | Figure 1a/1b/1c — case-study PLT comparisons |
//! | [`table2`] | Table 2 — static-proxy ping latencies |
//! | [`fig2`] | Figure 2 — ONI blocking-type mixtures |
//! | [`table5`] | Table 5 — detection times |
//! | [`fig5`] | Figure 5a/5b/5c — redundancy impact |
//! | [`fig6`] | Figure 6a/6b — redundancy count, aggregation |
//! | [`table6`] | Table 6 — revalidation probability p |
//! | [`fig7`] | Figure 7a/7b/7c — C-Saw vs Lantern vs Tor |
//! | [`table7`] | Table 7 — pilot deployment study |
//! | [`wild`] | §7.5 — the Nov 2017 event |
//!
//! Extensions beyond the paper's evaluation (its §8 future-work items):
//!
//! | module | question |
//! |---|---|
//! | [`fingerprint`] | can a censor fingerprint C-Saw users from paired flows? |
//! | [`datausage`] | what do redundancy and `p` cost in bytes? |
//! | [`ablation_explore`] | what does n-th-access exploration buy? |
//! | [`nonweb`] | non-web (UDP/messaging) filtering detection |
//! | [`propagation`] | how fast one discovery benefits the crowd |
//! | [`scale`] | sharded-store ingest throughput at a million clients |
//! | [`chaos`] | report delivery under injected store/wire faults |
//! | [`splitbrain`] | replica convergence through a WAL-shipping partition |

pub mod ablation_explore;
pub mod chaos;
pub mod datausage;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fingerprint;
pub mod nonweb;
pub mod propagation;
pub mod scale;
pub mod splitbrain;
pub mod table1;
pub mod table2;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod wild;
