//! Figure 1: the case-study comparisons motivating data-driven
//! circumvention (§2.3). Three panels, 200 back-to-back runs each:
//!
//! - **(a)** HTTPS/Domain-Fronting vs ten static proxies, YouTube
//!   homepage (~360 KB) on ISP-B;
//! - **(b)** direct HTTPS vs Tor (grouped by exit-relay location),
//!   YouTube homepage on ISP-A;
//! - **(c)** Lantern vs "IP as hostname" for a keyword-filtered porn page
//!   (~50 KB) — Lantern ≈1.5× slower.

use crate::stats::Cdf;
use crate::worlds::{single_isp_world, static_proxies, FRONT, PORN_PAGE, YOUTUBE};
use csaw_circumvent::lantern::LanternClient;
use csaw_circumvent::tor::TorClient;
use csaw_circumvent::transports::{
    DomainFronting, FetchCtx, HttpsUpgrade, IpAsHostname, Transport,
};
use csaw_circumvent::world::World;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{Asn, Region};
use csaw_webproto::url::Url;
use std::collections::HashMap;

/// Number of back-to-back runs per series (the paper uses 200).
pub const RUNS: usize = 200;

/// One panel's series set.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Panel label.
    pub title: String,
    /// PLT CDFs per series.
    pub series: Vec<Cdf>,
}

impl Panel {
    /// A series by label.
    pub fn series(&self, label: &str) -> &Cdf {
        self.series
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("series {label} missing"))
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.title, Cdf::render_table(&self.series))
    }
}

fn ctx(world: &World) -> FetchCtx {
    FetchCtx {
        now: SimTime::ZERO,
        provider: world.access.providers()[0].clone(),
    }
}

fn sample_plts(
    world: &World,
    transport: &mut dyn Transport,
    url: &Url,
    runs: usize,
    rng: &mut DetRng,
    advance_clock: bool,
) -> Vec<SimDuration> {
    let mut out = Vec::with_capacity(runs);
    let mut c = ctx(world);
    for i in 0..runs {
        if advance_clock {
            // Back-to-back runs over ~2 hours: Tor rotates circuits.
            c.now = SimTime::from_secs((i as u64) * 35);
        }
        let r = transport.fetch(world, &c, url, rng);
        if let Some(plt) = r.fetch().genuine_plt() {
            out.push(plt);
        }
    }
    out
}

/// Figure 1a: HTTPS/DF vs static proxies on ISP-B.
pub fn run_1a(seed: u64) -> Panel {
    let world = single_isp_world(csaw_censor::ISP_B_ASN, "ISP-B", csaw_censor::isp_b());
    let url = Url::parse(&format!("https://{YOUTUBE}/")).expect("static URL");
    let mut rng = DetRng::new(seed);
    let mut series = Vec::new();
    let mut df = DomainFronting::via(FRONT);
    series.push(Cdf::of(
        "HTTPS/DF",
        &sample_plts(&world, &mut df, &url, RUNS, &mut rng, false),
    ));
    for mut proxy in static_proxies() {
        let label = proxy.label.clone();
        let plts = sample_plts(&world, &mut proxy, &url, RUNS, &mut rng, false);
        series.push(Cdf::of(&label, &plts));
    }
    Panel {
        title: "Figure 1a: HTTPS/DF vs static proxies (YouTube ~360KB, ISP-B)".into(),
        series,
    }
}

/// Figure 1b: direct HTTPS vs Tor, grouped by exit region.
pub fn run_1b(seed: u64) -> Panel {
    let world = single_isp_world(csaw_censor::ISP_A_ASN, "ISP-A", csaw_censor::isp_a());
    let url = Url::parse(&format!("http://{YOUTUBE}/")).expect("static URL");
    let mut rng = DetRng::new(seed);
    let mut series = Vec::new();
    let mut https = HttpsUpgrade::default();
    series.push(Cdf::of(
        "HTTPS",
        &sample_plts(&world, &mut https, &url, RUNS, &mut rng, false),
    ));
    // Tor, isolating runs per unique circuit's exit location.
    let mut tor = TorClient::new();
    let mut by_exit: HashMap<Region, Vec<SimDuration>> = HashMap::new();
    let c0 = ctx(&world);
    for i in 0..RUNS {
        let c = FetchCtx {
            now: SimTime::from_secs((i as u64) * 35),
            provider: c0.provider.clone(),
        };
        let r = tor.fetch(&world, &c, &url, &mut rng);
        let exit = tor.exit_region().expect("circuit open after fetch");
        if let Some(plt) = r.fetch().genuine_plt() {
            by_exit.entry(exit).or_default().push(plt);
        }
    }
    let mut exits: Vec<(Region, Vec<SimDuration>)> = by_exit.into_iter().collect();
    exits.sort_by_key(|(r, _)| format!("{r:?}"));
    for (region, plts) in exits {
        if plts.len() >= 5 {
            series.push(Cdf::of(&format!("Tor exit {region:?}"), &plts));
        }
    }
    Panel {
        title: "Figure 1b: HTTPS vs Tor by exit location (YouTube, ISP-A)".into(),
        series,
    }
}

/// Figure 1c: Lantern vs "IP as hostname" on a keyword filter.
pub fn run_1c(seed: u64) -> Panel {
    let world = single_isp_world(Asn(6500), "ISP-KW", csaw_censor::keyword_filter(&["adult"]));
    let url = Url::parse(&format!("http://{PORN_PAGE}/")).expect("static URL");
    let mut rng = DetRng::new(seed);
    let mut series = Vec::new();
    let mut iph = IpAsHostname::default();
    series.push(Cdf::of(
        "IP as hostname",
        &sample_plts(&world, &mut iph, &url, RUNS, &mut rng, false),
    ));
    let mut lantern = LanternClient::new();
    series.push(Cdf::of(
        "Lantern",
        &sample_plts(&world, &mut lantern, &url, RUNS, &mut rng, false),
    ));
    Panel {
        title: "Figure 1c: Lantern vs IP-as-hostname (porn page ~50KB, keyword filter)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_df_beats_every_proxy_median() {
        let p = run_1a(1);
        let df = p.series("HTTPS/DF").median();
        for s in &p.series {
            if s.label == "HTTPS/DF" {
                continue;
            }
            assert!(
                df < s.median(),
                "DF median {df:.2}s not better than {} ({:.2}s)",
                s.label,
                s.median()
            );
        }
        // Flaky proxies show wide spread: p95 ≫ median for Germany-1.
        let g1 = p.series("Germany-1");
        assert!(
            g1.pct(95.0) > g1.median() * 1.6,
            "Germany-1 spread too tight"
        );
    }

    #[test]
    fn fig1b_https_beats_every_tor_exit() {
        let p = run_1b(2);
        let https = p.series("HTTPS").median();
        let tor_series: Vec<&Cdf> = p
            .series
            .iter()
            .filter(|s| s.label.starts_with("Tor exit"))
            .collect();
        assert!(
            tor_series.len() >= 3,
            "want several exit groups, got {}",
            tor_series.len()
        );
        for s in tor_series {
            assert!(
                https < s.median() * 0.8,
                "HTTPS {https:.2}s vs {} {:.2}s",
                s.label,
                s.median()
            );
        }
    }

    #[test]
    fn fig1c_lantern_about_1_5x_slower() {
        let p = run_1c(3);
        let iph = p.series("IP as hostname").median();
        let lantern = p.series("Lantern").median();
        let ratio = lantern / iph;
        assert!(
            (1.3..=3.5).contains(&ratio),
            "Lantern/IPH ratio {ratio:.2} (iph {iph:.2}s, lantern {lantern:.2}s)"
        );
    }

    #[test]
    fn panels_render() {
        let p = run_1c(4);
        let s = p.render();
        assert!(s.contains("Lantern") && s.contains("IP as hostname"));
    }
}
