//! Figure 1: the case-study comparisons motivating data-driven
//! circumvention (§2.3). Three panels, 200 back-to-back runs each:
//!
//! - **(a)** HTTPS/Domain-Fronting vs ten static proxies, YouTube
//!   homepage (~360 KB) on ISP-B;
//! - **(b)** direct HTTPS vs Tor (grouped by exit-relay location),
//!   YouTube homepage on ISP-A;
//! - **(c)** Lantern vs "IP as hostname" for a keyword-filtered porn page
//!   (~50 KB) — Lantern ≈1.5× slower.

use crate::runner::{self, Experiment, TrialSpec};
use crate::stats::Cdf;
use crate::worlds::{single_isp_world, static_proxies, FRONT, PORN_PAGE, YOUTUBE};
use csaw_circumvent::lantern::LanternClient;
use csaw_circumvent::tor::TorClient;
use csaw_circumvent::transports::{
    DomainFronting, FetchCtx, HttpsUpgrade, IpAsHostname, Transport,
};
use csaw_circumvent::world::World;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{Asn, Region};
use csaw_webproto::url::Url;
use std::collections::HashMap;

/// Number of back-to-back runs per series (the paper uses 200).
pub const RUNS: usize = 200;

/// One panel's series set.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Panel label.
    pub title: String,
    /// PLT CDFs per series.
    pub series: Vec<Cdf>,
}

impl Panel {
    /// A series by label.
    pub fn series(&self, label: &str) -> &Cdf {
        self.series
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("series {label} missing"))
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.title, Cdf::render_table(&self.series))
    }
}

fn ctx(world: &World) -> FetchCtx {
    FetchCtx {
        now: SimTime::ZERO,
        provider: world.access.providers()[0].clone(),
    }
}

fn sample_plts(
    world: &World,
    transport: &mut dyn Transport,
    url: &Url,
    runs: usize,
    rng: &mut DetRng,
    advance_clock: bool,
) -> Vec<SimDuration> {
    let mut out = Vec::with_capacity(runs);
    let mut c = ctx(world);
    for i in 0..runs {
        if advance_clock {
            // Back-to-back runs over ~2 hours: Tor rotates circuits.
            c.now = SimTime::from_secs((i as u64) * 35);
        }
        let r = transport.fetch(world, &c, url, rng);
        if let Some(plt) = r.fetch().genuine_plt() {
            out.push(plt);
        }
    }
    out
}

/// The three case-study panels, each decomposed into one trial per
/// tool/proxy series with runner-forked RNG streams. A trial returns a
/// *list* of CDFs because the Tor series of panel (b) splits by exit
/// region only after its runs complete.
enum PanelExp {
    /// (a): HTTPS/DF vs static proxies on ISP-B.
    A,
    /// (b): direct HTTPS vs Tor by exit region on ISP-A.
    B,
    /// (c): Lantern vs "IP as hostname" on a keyword filter.
    C,
}

impl PanelExp {
    fn name(&self) -> &'static str {
        match self {
            PanelExp::A => "fig1a",
            PanelExp::B => "fig1b",
            PanelExp::C => "fig1c",
        }
    }

    fn series_labels(&self) -> Vec<String> {
        match self {
            PanelExp::A => {
                let mut labels = vec!["HTTPS/DF".to_string()];
                labels.extend(static_proxies().into_iter().map(|p| p.label));
                labels
            }
            PanelExp::B => vec!["HTTPS".to_string(), "Tor".to_string()],
            PanelExp::C => vec!["IP as hostname".to_string(), "Lantern".to_string()],
        }
    }
}

/// One Fig. 1 panel as a runner experiment: `which` picks the panel,
/// and each series runs as its own trial.
pub struct Fig1Exp {
    which: PanelExp,
    seed: u64,
}

impl Fig1Exp {
    /// Panel (a).
    pub fn a(seed: u64) -> Fig1Exp {
        Fig1Exp {
            which: PanelExp::A,
            seed,
        }
    }

    /// Panel (b).
    pub fn b(seed: u64) -> Fig1Exp {
        Fig1Exp {
            which: PanelExp::B,
            seed,
        }
    }

    /// Panel (c).
    pub fn c(seed: u64) -> Fig1Exp {
        Fig1Exp {
            which: PanelExp::C,
            seed,
        }
    }

    fn world(&self) -> World {
        match self.which {
            PanelExp::A => single_isp_world(csaw_censor::ISP_B_ASN, "ISP-B", csaw_censor::isp_b()),
            PanelExp::B => single_isp_world(csaw_censor::ISP_A_ASN, "ISP-A", csaw_censor::isp_a()),
            PanelExp::C => {
                single_isp_world(Asn(6500), "ISP-KW", csaw_censor::keyword_filter(&["adult"]))
            }
        }
    }

    fn url(&self) -> Url {
        let raw = match self.which {
            PanelExp::A => format!("https://{YOUTUBE}/"),
            PanelExp::B => format!("http://{YOUTUBE}/"),
            PanelExp::C => format!("http://{PORN_PAGE}/"),
        };
        Url::parse(&raw).expect("static URL")
    }
}

impl Experiment for Fig1Exp {
    type Trial = Vec<Cdf>;
    type Output = Panel;

    fn name(&self) -> &'static str {
        self.which.name()
    }

    fn trials(&self) -> Vec<TrialSpec> {
        self.which
            .series_labels()
            .into_iter()
            .enumerate()
            .map(|(i, label)| TrialSpec::forked(self.name(), self.seed, i as u64, label))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> Vec<Cdf> {
        let world = self.world();
        let url = self.url();
        let mut rng = DetRng::new(spec.seed);
        match (&self.which, spec.ordinal) {
            (PanelExp::A, 0) => {
                let mut df = DomainFronting::via(FRONT);
                vec![Cdf::of(
                    "HTTPS/DF",
                    &sample_plts(&world, &mut df, &url, RUNS, &mut rng, false),
                )]
            }
            (PanelExp::A, i) => {
                let mut proxy = static_proxies()
                    .into_iter()
                    .nth(i as usize - 1)
                    .expect("proxy index in range");
                let label = proxy.label.clone();
                vec![Cdf::of(
                    &label,
                    &sample_plts(&world, &mut proxy, &url, RUNS, &mut rng, false),
                )]
            }
            (PanelExp::B, 0) => {
                let mut https = HttpsUpgrade::default();
                vec![Cdf::of(
                    "HTTPS",
                    &sample_plts(&world, &mut https, &url, RUNS, &mut rng, false),
                )]
            }
            (PanelExp::B, _) => {
                // Tor, isolating runs per unique circuit's exit location.
                let mut tor = TorClient::new();
                let mut by_exit: HashMap<Region, Vec<SimDuration>> = HashMap::new();
                let c0 = ctx(&world);
                for i in 0..RUNS {
                    let c = FetchCtx {
                        now: SimTime::from_secs((i as u64) * 35),
                        provider: c0.provider.clone(),
                    };
                    let r = tor.fetch(&world, &c, &url, &mut rng);
                    let exit = tor.exit_region().expect("circuit open after fetch");
                    if let Some(plt) = r.fetch().genuine_plt() {
                        by_exit.entry(exit).or_default().push(plt);
                    }
                }
                let mut exits: Vec<(Region, Vec<SimDuration>)> = by_exit.into_iter().collect();
                exits.sort_by_key(|(r, _)| format!("{r:?}"));
                exits
                    .into_iter()
                    .filter(|(_, plts)| plts.len() >= 5)
                    .map(|(region, plts)| Cdf::of(&format!("Tor exit {region:?}"), &plts))
                    .collect()
            }
            (PanelExp::C, 0) => {
                let mut iph = IpAsHostname::default();
                vec![Cdf::of(
                    "IP as hostname",
                    &sample_plts(&world, &mut iph, &url, RUNS, &mut rng, false),
                )]
            }
            (PanelExp::C, _) => {
                let mut lantern = LanternClient::new();
                vec![Cdf::of(
                    "Lantern",
                    &sample_plts(&world, &mut lantern, &url, RUNS, &mut rng, false),
                )]
            }
        }
    }

    fn reduce(&self, trials: Vec<Vec<Cdf>>) -> Panel {
        let title = match self.which {
            PanelExp::A => "Figure 1a: HTTPS/DF vs static proxies (YouTube ~360KB, ISP-B)",
            PanelExp::B => "Figure 1b: HTTPS vs Tor by exit location (YouTube, ISP-A)",
            PanelExp::C => "Figure 1c: Lantern vs IP-as-hostname (porn page ~50KB, keyword filter)",
        };
        Panel {
            title: title.into(),
            series: trials.into_iter().flatten().collect(),
        }
    }
}

/// Figure 1a: HTTPS/DF vs static proxies on ISP-B.
pub fn run_1a(seed: u64) -> Panel {
    run_1a_jobs(seed, 1)
}

/// Fig. 1a across `jobs` workers.
pub fn run_1a_jobs(seed: u64, jobs: usize) -> Panel {
    runner::run(&Fig1Exp::a(seed), jobs)
}

/// Figure 1b: direct HTTPS vs Tor, grouped by exit region.
pub fn run_1b(seed: u64) -> Panel {
    run_1b_jobs(seed, 1)
}

/// Fig. 1b across `jobs` workers.
pub fn run_1b_jobs(seed: u64, jobs: usize) -> Panel {
    runner::run(&Fig1Exp::b(seed), jobs)
}

/// Figure 1c: Lantern vs "IP as hostname" on a keyword filter.
pub fn run_1c(seed: u64) -> Panel {
    run_1c_jobs(seed, 1)
}

/// Fig. 1c across `jobs` workers.
pub fn run_1c_jobs(seed: u64, jobs: usize) -> Panel {
    runner::run(&Fig1Exp::c(seed), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_df_beats_every_proxy_median() {
        let p = run_1a(1);
        let df = p.series("HTTPS/DF").median();
        for s in &p.series {
            if s.label == "HTTPS/DF" {
                continue;
            }
            assert!(
                df < s.median(),
                "DF median {df:.2}s not better than {} ({:.2}s)",
                s.label,
                s.median()
            );
        }
        // Flaky proxies show wide spread: p95 ≫ median for Germany-1.
        let g1 = p.series("Germany-1");
        assert!(
            g1.pct(95.0) > g1.median() * 1.6,
            "Germany-1 spread too tight"
        );
    }

    #[test]
    fn fig1b_https_beats_every_tor_exit() {
        let p = run_1b(2);
        let https = p.series("HTTPS").median();
        let tor_series: Vec<&Cdf> = p
            .series
            .iter()
            .filter(|s| s.label.starts_with("Tor exit"))
            .collect();
        assert!(
            tor_series.len() >= 3,
            "want several exit groups, got {}",
            tor_series.len()
        );
        for s in tor_series {
            assert!(
                https < s.median() * 0.8,
                "HTTPS {https:.2}s vs {} {:.2}s",
                s.label,
                s.median()
            );
        }
    }

    #[test]
    fn fig1c_lantern_about_1_5x_slower() {
        let p = run_1c(3);
        let iph = p.series("IP as hostname").median();
        let lantern = p.series("Lantern").median();
        let ratio = lantern / iph;
        assert!(
            (1.3..=3.5).contains(&ratio),
            "Lantern/IPH ratio {ratio:.2} (iph {iph:.2}s, lantern {lantern:.2}s)"
        );
    }

    #[test]
    fn panels_render() {
        let p = run_1c(4);
        let s = p.render();
        assert!(s.contains("Lantern") && s.contains("IP as hostname"));
    }
}
