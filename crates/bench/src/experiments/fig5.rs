//! Figure 5: the impact of redundant requests on PLTs (§7.1).
//!
//! - **(a)** blocked pages, serial vs parallel redundancy, across four
//!   blocking types — the paper reports 45.8–64.1% PLT reduction;
//! - **(b)** small unblocked page (95 KB): 1 copy vs 2 copies vs
//!   2 copies with a 2 s stagger, 100 requests with U(1 s, 5 s)
//!   inter-arrivals;
//! - **(c)** the same on a larger page (316 KB), where staggering clearly
//!   beats blind duplication.

use crate::runner::{self, Experiment, TrialSpec};
use crate::stats::{reduction_pct, Cdf, Summary};
use crate::workload::uniform_arrivals;
use crate::worlds::{single_isp_world, LARGE_PAGE, SMALL_PAGE};
use csaw::config::RedundancyMode;
use csaw::measure::{fetch_with_redundancy, DetectConfig};
use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
use csaw_circumvent::tor::TorClient;
use csaw_circumvent::transports::{Direct, FetchCtx, Transport};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::load::{InFlightTracker, LoadModel};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_simnet::topology::{AccessNetwork, Provider, Region, Site};
use csaw_webproto::url::Url;

/// One blocking type's serial-vs-parallel bars (Fig. 5a).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedBar {
    /// Blocking-type label (paper's x-axis).
    pub label: String,
    /// Mean PLT under the serial approach (s).
    pub serial_s: f64,
    /// Mean PLT under the parallel approach (s).
    pub parallel_s: f64,
    /// Reduction (%).
    pub reduction_pct: f64,
}

/// The Fig. 5a result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5a {
    /// One bar group per blocking type.
    pub bars: Vec<BlockedBar>,
}

/// The figure's four blocking types with their annotated page sizes
/// (1469 KB, 340 KB, 1342 KB, 85 KB).
fn cases_5a() -> Vec<(&'static str, u64, DnsTamper, IpAction, HttpAction)> {
    vec![
        (
            "TCP/IP",
            1_469_000,
            DnsTamper::None,
            IpAction::Drop,
            HttpAction::None,
        ),
        (
            "DNS SERVER FAIL",
            340_000,
            DnsTamper::Servfail,
            IpAction::None,
            HttpAction::None,
        ),
        (
            "DNS NXDOMAIN + TCP/IP",
            1_342_000,
            DnsTamper::Nxdomain,
            IpAction::Drop,
            HttpAction::None,
        ),
        (
            "BlockPage",
            85_000,
            DnsTamper::None,
            IpAction::None,
            HttpAction::BlockPageRedirect,
        ),
    ]
}

/// One (blocking type × redundancy mode) trial: the mean PLT over 30
/// independent fetches. `trial_seed` is the historical `seed ^ salt`
/// stream (salt 1 = serial, 2 = parallel), carried in the
/// [`TrialSpec`].
fn run_5a_trial(trial_seed: u64, case_idx: usize, mode: RedundancyMode) -> f64 {
    let (label, page_bytes, dns, ip, http) = cases_5a()
        .into_iter()
        .nth(case_idx)
        .expect("case index in range");
    let target = "target.example";
    let url = Url::parse(&format!("http://{target}/")).expect("static URL");
    let tracing = csaw_obs::scope::current().sink.enabled();
    let policy = csaw_censor::single_mechanism(label, target, dns, ip, http, TlsAction::None);
    let provider = Provider::new(Asn(5100), "F5A-ISP");
    let world = World::builder(AccessNetwork::single(provider))
        .site(
            SiteSpec::new(target, Site::at_vantage_rtt(Region::UsEast, 186))
                .default_page(page_bytes, (page_bytes / 60_000).max(2) as usize),
        )
        .censor(Asn(5100), policy)
        .build();
    let provider = world.access.providers()[0].clone();
    let mut rng = DetRng::new(trial_seed);
    let mut tor = TorClient::new();
    let mut plts = Vec::new();
    for i in 0..30 {
        tor.drop_circuit(); // independent runs
        let c = FetchCtx {
            now: SimTime::from_secs(i * 30),
            provider: provider.clone(),
        };
        // One trace per fetch, ordinals disjoint across the four
        // blocking-type cases; the redundancy engine emits the
        // span tree under this root.
        let _root = tracing.then(|| {
            csaw_obs::trace::fetch_root(trial_seed, case_idx as u64 * 64 + i, c.now.as_micros())
        });
        let out = fetch_with_redundancy(
            &world,
            &c,
            &url,
            mode,
            &mut tor,
            &DetectConfig::default(),
            &LoadModel::default(),
            &mut rng,
        );
        if let Some(plt) = out.user_plt {
            plts.push(plt);
        }
    }
    Summary::of(&plts).mean_s
}

/// Fig. 5a decomposed for the parallel runner: one trial per
/// (blocking type × redundancy mode), eight in total.
pub struct Fig5aExp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for Fig5aExp {
    type Trial = f64;
    type Output = Fig5a;

    fn name(&self) -> &'static str {
        "fig5a"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        let mut specs = Vec::new();
        for (case_idx, (label, ..)) in cases_5a().into_iter().enumerate() {
            for (mode_idx, (mode, salt)) in
                [("serial", 1u64), ("parallel", 2)].into_iter().enumerate()
            {
                specs.push(TrialSpec::salted(
                    self.seed ^ salt,
                    (case_idx * 2 + mode_idx) as u64,
                    format!("{label} × {mode}"),
                ));
            }
        }
        specs
    }

    fn run_trial(&self, spec: &TrialSpec) -> f64 {
        let case_idx = (spec.ordinal / 2) as usize;
        let mode = if spec.ordinal.is_multiple_of(2) {
            RedundancyMode::Serial
        } else {
            RedundancyMode::Parallel
        };
        run_5a_trial(spec.seed, case_idx, mode)
    }

    fn reduce(&self, trials: Vec<f64>) -> Fig5a {
        let bars = cases_5a()
            .into_iter()
            .enumerate()
            .map(|(case_idx, (label, ..))| {
                let serial_s = trials[case_idx * 2];
                let parallel_s = trials[case_idx * 2 + 1];
                BlockedBar {
                    label: label.to_string(),
                    serial_s,
                    parallel_s,
                    reduction_pct: reduction_pct(serial_s, parallel_s),
                }
            })
            .collect();
        Fig5a { bars }
    }
}

/// Run Fig. 5a serially: 30 runs per (type, mode). Page sizes per
/// blocking type follow the figure's annotations.
pub fn run_5a(seed: u64) -> Fig5a {
    run_5a_jobs(seed, 1)
}

/// Run Fig. 5a with its eight trials fanned across `jobs` workers.
pub fn run_5a_jobs(seed: u64, jobs: usize) -> Fig5a {
    runner::run(&Fig5aExp { seed }, jobs)
}

impl Fig5a {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 5a: blocked pages, serial vs parallel redundancy\n");
        out.push_str(&format!(
            "  {:<24}{:>12}{:>12}{:>12}\n",
            "blocking type", "serial(s)", "parallel(s)", "reduction"
        ));
        for b in &self.bars {
            out.push_str(&format!(
                "  {:<24}{:>12.2}{:>12.2}{:>11.1}%\n",
                b.label, b.serial_s, b.parallel_s, b.reduction_pct
            ));
        }
        out
    }
}

/// The Fig. 5b/c result: PLT CDFs for the three redundancy shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5bc {
    /// Panel title.
    pub title: String,
    /// "1 copy", "2 copies", "2 copies (with delay)".
    pub series: Vec<Cdf>,
}

/// Run the unblocked-page workload for one page.
///
/// 100 requests, U(1 s, 5 s) inter-arrivals. Redundant copies ride Tor;
/// on an unblocked page the user always takes the direct copy, so the
/// redundant copy contributes only *load*: full overlap for "2 copies",
/// partial overlap (after the 2 s stagger) for "2 copies (with delay)".
pub fn run_5bc(page_host: &str, title: &str, seed: u64) -> Fig5bc {
    run_5bc_jobs(page_host, title, seed, 1)
}

/// [`run_5bc`] with the three redundancy-shape series as parallel
/// trials.
pub fn run_5bc_jobs(page_host: &str, title: &str, seed: u64, jobs: usize) -> Fig5bc {
    runner::run(
        &Fig5bcExp {
            page_host: page_host.to_string(),
            title: title.to_string(),
            seed,
        },
        jobs,
    )
}

const SHAPES_5BC: [(&str, usize, bool); 3] = [
    ("1 copy", 1usize, false),
    ("2 copies", 2, false),
    ("2 copies (with delay)", 2, true),
];

/// Fig. 5b/c decomposed: one trial per redundancy shape
/// (1 copy / 2 copies / 2 copies staggered), each with its historical
/// per-series RNG stream.
pub struct Fig5bcExp {
    /// The page to fetch.
    pub page_host: String,
    /// Panel title for the rendered output.
    pub title: String,
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for Fig5bcExp {
    type Trial = Cdf;
    type Output = Fig5bc;

    fn name(&self) -> &'static str {
        "fig5bc"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        SHAPES_5BC
            .iter()
            .enumerate()
            .map(|(i, (label, copies, staggered))| {
                TrialSpec::salted(
                    self.seed ^ *copies as u64 ^ (*staggered as u64) << 7,
                    i as u64,
                    *label,
                )
            })
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> Cdf {
        let (label, copies, staggered) = SHAPES_5BC[spec.ordinal as usize];
        let world = single_isp_world(Asn(5200), "F5BC-ISP", csaw_censor::clean());
        let url = Url::parse(&format!("http://{}/", self.page_host)).expect("static URL");
        let provider = world.access.providers()[0].clone();
        let load = LoadModel::default();
        let delay = SimDuration::from_secs(2);
        let mut rng = DetRng::new(spec.seed);
        let arrivals = uniform_arrivals(
            100,
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
            &mut rng,
        );
        let mut tracker = InFlightTracker::new();
        let mut plts = Vec::new();
        for t in arrivals {
            let mut direct = Direct;
            let ctx = FetchCtx {
                now: t,
                provider: provider.clone(),
            };
            let base = direct.fetch(&world, &ctx, &url, &mut rng);
            let Some(base_plt) = base.fetch().genuine_plt() else {
                continue;
            };
            // Load: overlapping *other* requests plus this request's own
            // redundant copies.
            let background = tracker.in_flight_at(t.as_micros());
            let own_copies = if copies == 1 {
                1.0
            } else if !staggered {
                2.0
            } else if base_plt <= delay {
                // Direct finished before the stagger fired: no copy sent.
                1.0
            } else {
                // The copy overlaps only the post-delay fraction.
                1.0 + (1.0 - delay.as_secs_f64() / base_plt.as_secs_f64())
            };
            // Effective concurrency is fractional for staggered copies;
            // interpolate the load model between floor and ceil.
            let conc = background as f64 + own_copies;
            let lo = load.inflate(base_plt, conc.floor() as usize, &mut rng);
            let hi = load.inflate(base_plt, conc.ceil() as usize, &mut rng);
            let frac = conc - conc.floor();
            let plt = SimDuration::from_secs_f64(
                lo.as_secs_f64() * (1.0 - frac) + hi.as_secs_f64() * frac,
            );
            tracker.record(t.as_micros(), (t + plt).as_micros());
            plts.push(plt);
        }
        Cdf::of(label, &plts)
    }

    fn reduce(&self, trials: Vec<Cdf>) -> Fig5bc {
        Fig5bc {
            title: self.title.clone(),
            series: trials,
        }
    }
}

/// Fig. 5b: the small (95 KB) page.
pub fn run_5b(seed: u64) -> Fig5bc {
    run_5b_jobs(seed, 1)
}

/// Fig. 5b across `jobs` workers.
pub fn run_5b_jobs(seed: u64, jobs: usize) -> Fig5bc {
    run_5bc_jobs(
        SMALL_PAGE,
        "Figure 5b: small unblocked page (95KB)",
        seed,
        jobs,
    )
}

/// Fig. 5c: the larger (316 KB) page.
pub fn run_5c(seed: u64) -> Fig5bc {
    run_5c_jobs(seed, 1)
}

/// Fig. 5c across `jobs` workers.
pub fn run_5c_jobs(seed: u64, jobs: usize) -> Fig5bc {
    run_5bc_jobs(
        LARGE_PAGE,
        "Figure 5c: larger unblocked page (316KB)",
        seed,
        jobs,
    )
}

impl Fig5bc {
    /// A series by label.
    pub fn series(&self, label: &str) -> &Cdf {
        self.series
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("series {label} missing"))
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.title, Cdf::render_table(&self.series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_parallel_cuts_plt_forty_to_ninety_pct() {
        let f = run_5a(21);
        assert_eq!(f.bars.len(), 4);
        for b in &f.bars {
            assert!(
                b.parallel_s < b.serial_s,
                "{}: parallel {} >= serial {}",
                b.label,
                b.parallel_s,
                b.serial_s
            );
            // Detection-dominated mechanisms reduce massively; the
            // block-page bar is capped by its fast (1.8 s) detection —
            // structurally detect/(detect+relay), so only ~10% here.
            let floor = if b.label == "BlockPage" { 8.0 } else { 30.0 };
            assert!(
                (floor..=95.0).contains(&b.reduction_pct),
                "{}: reduction {:.1}%",
                b.label,
                b.reduction_pct
            );
        }
        // The paper's 45.8–64.1% average band should cover the mean.
        let avg: f64 = f.bars.iter().map(|b| b.reduction_pct).sum::<f64>() / f.bars.len() as f64;
        assert!((40.0..=90.0).contains(&avg), "avg reduction {avg:.1}%");
        // Detection dominated cases (TCP/IP) reduce the most.
        let tcp = f.bars.iter().find(|b| b.label == "TCP/IP").unwrap();
        let bp = f.bars.iter().find(|b| b.label == "BlockPage").unwrap();
        assert!(tcp.reduction_pct > bp.reduction_pct);
    }

    #[test]
    fn fig5b_staggered_matches_single_copy_median() {
        let f = run_5b(22);
        let one = f.series("1 copy").median();
        let two = f.series("2 copies").median();
        let staggered = f.series("2 copies (with delay)").median();
        // Small page: the stagger rarely fires, so the median is close to
        // 1 copy and better than blind duplication.
        assert!(
            (staggered - one).abs() / one < 0.25,
            "staggered {staggered:.2} vs one {one:.2}"
        );
        assert!(two > one, "two {two:.2} <= one {one:.2}");
        assert!(staggered <= two, "staggered {staggered:.2} > two {two:.2}");
    }

    #[test]
    fn fig5c_staggering_beats_blind_duplication() {
        let f = run_5c(23);
        let two = f.series("2 copies").median();
        let staggered = f.series("2 copies (with delay)").median();
        assert!(
            staggered < two,
            "staggered {staggered:.2} not better than two {two:.2}"
        );
    }
}
