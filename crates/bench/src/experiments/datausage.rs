//! Data-usage accounting — the §8 "C-Saw's data usage" discussion,
//! quantified.
//!
//! Redundant requests and revalidation probes cost bytes, which matters
//! on metered connections in developing regions. This ablation measures
//! the *byte overhead* of C-Saw relative to a plain browser over the same
//! browse session, as a function of the revalidation probability `p` and
//! the redundancy mode — backing the paper's advice that selective
//! redundancy keeps the common case cheap and that `p` can be lowered in
//! developing regions.

use crate::runner::{self, Experiment, TrialSpec};
use csaw::config::RedundancyMode;
use csaw::measure::{fetch_with_redundancy, measure_direct, DetectConfig};
use csaw_circumvent::tor::TorClient;
use csaw_circumvent::transports::{Direct, FetchCtx, Transport};
use csaw_circumvent::world::World;
use csaw_simnet::load::LoadModel;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimTime;
use csaw_webproto::url::Url;

/// One configuration's byte accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageRow {
    /// Configuration label.
    pub label: String,
    /// Bytes a plain browser would have moved.
    pub baseline_bytes: u64,
    /// Bytes this configuration moved (user traffic + copies + probes).
    pub total_bytes: u64,
}

impl UsageRow {
    /// Overhead relative to the baseline, percent.
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline_bytes == 0 {
            0.0
        } else {
            (self.total_bytes as f64 / self.baseline_bytes as f64 - 1.0) * 100.0
        }
    }
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct DataUsage {
    /// One row per configuration.
    pub rows: Vec<UsageRow>,
}

/// Simulate a 60-request browse session over 6 hosts (4 pages each) and
/// account bytes. Returns (baseline, total).
///
/// Paired design: the URL sequence and the per-visit probe coin flips are
/// drawn from their own seeds, shared across every configuration, so the
/// rows differ only in what the configuration itself costs.
fn session_bytes(world: &World, mode: RedundancyMode, revalidate_p: f64, seed: u64) -> (u64, u64) {
    let provider = world.access.providers()[0].clone();
    let mut url_rng = DetRng::new(seed ^ 0x0a11);
    let hosts = [
        crate::worlds::YOUTUBE,
        crate::worlds::SMALL_PAGE,
        crate::worlds::LARGE_PAGE,
        "twitter.com",
        "instagram.com",
        crate::worlds::PORN_PAGE,
    ];
    let urls: Vec<Url> = (0..60)
        .map(|i| {
            let h = hosts[url_rng.index(hosts.len())];
            Url::parse(&format!("http://{h}/page/{}", i % 4)).expect("static URL")
        })
        .collect();
    // Shared probe schedule: flip a p=1 coin per visit, probe when the
    // shared draw falls under this row's p.
    let mut probe_rng = DetRng::new(seed ^ 0x0b22);
    let probe_draws: Vec<f64> = (0..urls.len()).map(|_| probe_rng.f64()).collect();
    let mut rng = DetRng::new(seed);
    let mut tor = TorClient::new();
    let mut measured: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut baseline = 0u64;
    let mut total = 0u64;
    for (i, url) in urls.iter().enumerate() {
        let ctx = FetchCtx {
            now: SimTime::from_secs(i as u64 * 45),
            provider: provider.clone(),
        };
        // Baseline: what a plain browser moves for this URL.
        let plain = Direct.fetch(world, &ctx, url, &mut rng);
        let page_bytes = plain.outcome.page().map(|p| p.bytes).unwrap_or(0);
        baseline += page_bytes;
        // C-Saw: first contact measures with a redundant copy; later
        // visits go direct, with probability-p probes.
        let key = url.base().to_string();
        if measured.insert(key) {
            let out = fetch_with_redundancy(
                world,
                &ctx,
                url,
                mode,
                &mut tor,
                &DetectConfig::default(),
                &LoadModel::default(),
                &mut rng,
            );
            total += out.measurement.page_bytes.unwrap_or(0);
            total += out
                .circumvention
                .as_ref()
                .and_then(|c| c.outcome.page().map(|p| p.bytes))
                .unwrap_or(0);
        } else {
            total += page_bytes;
            if probe_draws[i] < revalidate_p {
                let m = measure_direct(
                    world,
                    &provider,
                    url,
                    Some(page_bytes),
                    &DetectConfig::default(),
                    &mut rng,
                );
                total += m.page_bytes.unwrap_or(0);
            }
        }
    }
    (baseline, total)
}

/// The swept configurations.
fn configs() -> [(&'static str, RedundancyMode, f64); 5] {
    [
        ("parallel, p=0.00", RedundancyMode::Parallel, 0.0),
        ("parallel, p=0.25", RedundancyMode::Parallel, 0.25),
        ("parallel, p=0.75", RedundancyMode::Parallel, 0.75),
        (
            "staggered-2s, p=0.25",
            RedundancyMode::Staggered(csaw_simnet::SimDuration::from_secs(2)),
            0.25,
        ),
        ("serial, p=0.25", RedundancyMode::Serial, 0.25),
    ]
}

/// Run the ablation across redundancy modes and p values.
pub fn run(seed: u64) -> DataUsage {
    run_jobs(seed, 1)
}

/// The ablation with one runner trial per configuration.
pub fn run_jobs(seed: u64, jobs: usize) -> DataUsage {
    runner::run(&DataUsageExp { seed }, jobs)
}

/// The ablation decomposed: one trial per configuration. Every trial
/// carries the *same* seed — `session_bytes` derives its URL and
/// probe-schedule streams from fixed salts of it, which is exactly the
/// paired design the serial sweep used.
pub struct DataUsageExp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for DataUsageExp {
    type Trial = UsageRow;
    type Output = DataUsage;

    fn name(&self) -> &'static str {
        "datausage"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        configs()
            .into_iter()
            .enumerate()
            .map(|(i, (label, ..))| TrialSpec::salted(self.seed, i as u64, label))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> UsageRow {
        let (label, mode, p) = configs()[spec.ordinal as usize];
        let world = crate::worlds::clean_world();
        let (baseline, total) = session_bytes(&world, mode, p, spec.seed);
        UsageRow {
            label: label.to_string(),
            baseline_bytes: baseline,
            total_bytes: total,
        }
    }

    fn reduce(&self, trials: Vec<UsageRow>) -> DataUsage {
        DataUsage { rows: trials }
    }
}

impl DataUsage {
    /// A row by label.
    pub fn row(&self, label: &str) -> &UsageRow {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("row {label} missing"))
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Data usage (extension of §8): bytes vs a plain browser\n");
        out.push_str(&format!(
            "  {:<22}{:>14}{:>14}{:>12}\n",
            "config", "baseline(KB)", "csaw(KB)", "overhead"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<22}{:>14}{:>14}{:>11.1}%\n",
                r.label,
                r.baseline_bytes / 1000,
                r.total_bytes / 1000,
                r.overhead_pct()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_p() {
        let d = run(71);
        let p00 = d.row("parallel, p=0.00").overhead_pct();
        let p25 = d.row("parallel, p=0.25").overhead_pct();
        let p75 = d.row("parallel, p=0.75").overhead_pct();
        assert!(p00 < p25 && p25 < p75, "{p00:.1} / {p25:.1} / {p75:.1}");
    }

    #[test]
    fn selective_redundancy_keeps_overhead_modest() {
        let d = run(72);
        // 6 distinct hosts in 60 requests: only ~10% of requests are
        // first contacts, so even parallel mode with p=0.25 stays well
        // under a blanket-duplication 100%.
        let r = d.row("parallel, p=0.25");
        assert!(r.overhead_pct() < 60.0, "overhead {:.1}%", r.overhead_pct());
        assert!(r.overhead_pct() > 3.0, "overhead suspiciously low");
    }

    #[test]
    fn serial_and_staggered_cheaper_or_equal_to_parallel() {
        let d = run(73);
        let par = d.row("parallel, p=0.25").total_bytes;
        let ser = d.row("serial, p=0.25").total_bytes;
        // Serial only fetches the copy when blocking was detected — in a
        // clean world, never.
        assert!(ser <= par, "serial {ser} > parallel {par}");
    }
}
