//! Figure 7: C-Saw vs Lantern vs Tor (§7.3).
//!
//! - **(a)** a DNS-blocked page: C-Saw detects the mechanism and applies
//!   the public-DNS local fix; Lantern and Tor pay relay costs on every
//!   fetch;
//! - **(b)** an unblocked page: C-Saw simply goes direct;
//! - **(c)** multi-stage (IP + DNS) blocking, where no local fix works:
//!   "C-Saw (w/ Lantern)" vs "C-Saw (w/ Tor)" isolates the relay choice —
//!   Lantern's single hop beats Tor's three.

use crate::runner::{self, Experiment, TrialSpec};
use crate::stats::Cdf;
use crate::worlds::{single_isp_world, YOUTUBE};
use csaw::client::CsawClient;
use csaw::config::CsawConfig;
use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
use csaw_circumvent::lantern::LanternClient;
use csaw_circumvent::tor::TorClient;
use csaw_circumvent::transports::{FetchCtx, Transport};
use csaw_circumvent::world::World;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;

/// Accesses per series.
pub const RUNS: usize = 200;

/// A Fig. 7 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Panel title.
    pub title: String,
    /// PLT CDFs.
    pub series: Vec<Cdf>,
}

impl Panel {
    /// A series by label.
    pub fn series(&self, label: &str) -> &Cdf {
        self.series
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("series {label} missing"))
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.title, Cdf::render_table(&self.series))
    }
}

/// PLTs for a raw transport (Lantern/Tor baselines).
fn transport_plts(
    world: &World,
    transport: &mut dyn Transport,
    url: &Url,
    rng: &mut DetRng,
) -> Vec<SimDuration> {
    let provider = world.access.providers()[0].clone();
    let mut out = Vec::new();
    for i in 0..RUNS {
        let ctx = FetchCtx {
            now: SimTime::from_secs(i as u64 * 20),
            provider: provider.clone(),
        };
        let r = transport.fetch(world, &ctx, url, rng);
        if let Some(plt) = r.fetch().genuine_plt() {
            out.push(plt);
        }
    }
    out
}

/// PLTs through a full C-Saw client (its first access measures; steady
/// state uses whatever strategy it learned).
fn csaw_plts(world: &World, client: &mut CsawClient, url: &Url) -> Vec<SimDuration> {
    let mut out = Vec::new();
    for i in 0..RUNS {
        let now = SimTime::from_secs(i as u64 * 20);
        let r = client.request(world, url, now);
        if let Some(plt) = r.plt {
            out.push(plt);
        }
    }
    out
}

/// Which Fig. 7 comparison panel to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PanelKind {
    /// 7a: DNS-blocked page.
    Dns,
    /// 7b: unblocked page.
    Clean,
}

impl PanelKind {
    fn world(self) -> World {
        match self {
            PanelKind::Dns => {
                let policy = csaw_censor::single_mechanism(
                    "F7A",
                    YOUTUBE,
                    DnsTamper::Nxdomain,
                    IpAction::None,
                    HttpAction::None,
                    TlsAction::None,
                );
                single_isp_world(Asn(5500), "F7A-ISP", policy)
            }
            PanelKind::Clean => crate::worlds::clean_world(),
        }
    }

    fn title(self) -> &'static str {
        match self {
            PanelKind::Dns => "Figure 7a: blocked page (DNS blocking)",
            PanelKind::Clean => "Figure 7b: unblocked page",
        }
    }

    fn name(self) -> &'static str {
        match self {
            PanelKind::Dns => "fig7a",
            PanelKind::Clean => "fig7b",
        }
    }
}

/// Fig. 7a/7b decomposed: one trial per tool series (C-Saw, Lantern,
/// Tor), each with a runner-forked RNG stream.
struct Fig7PanelExp {
    kind: PanelKind,
    seed: u64,
}

impl Experiment for Fig7PanelExp {
    type Trial = Cdf;
    type Output = Panel;

    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn trials(&self) -> Vec<TrialSpec> {
        ["C-Saw", "Lantern", "Tor"]
            .into_iter()
            .enumerate()
            .map(|(i, label)| TrialSpec::forked(self.name(), self.seed, i as u64, label))
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> Cdf {
        let world = self.kind.world();
        let url = Url::parse(&format!("http://{YOUTUBE}/")).expect("static URL");
        let plts = match spec.ordinal {
            0 => {
                let mut client = CsawClient::new(CsawConfig::default(), None, spec.seed);
                csaw_plts(&world, &mut client, &url)
            }
            1 => {
                let mut rng = DetRng::new(spec.seed);
                transport_plts(&world, &mut LanternClient::new(), &url, &mut rng)
            }
            _ => {
                let mut rng = DetRng::new(spec.seed);
                transport_plts(&world, &mut TorClient::new(), &url, &mut rng)
            }
        };
        Cdf::of(&spec.label, &plts)
    }

    fn reduce(&self, trials: Vec<Cdf>) -> Panel {
        Panel {
            title: self.kind.title().into(),
            series: trials,
        }
    }
}

/// Fig. 7a: DNS-blocked page.
pub fn run_7a(seed: u64) -> Panel {
    run_7a_jobs(seed, 1)
}

/// Fig. 7a across `jobs` workers.
pub fn run_7a_jobs(seed: u64, jobs: usize) -> Panel {
    runner::run(
        &Fig7PanelExp {
            kind: PanelKind::Dns,
            seed,
        },
        jobs,
    )
}

/// Fig. 7b: unblocked page.
pub fn run_7b(seed: u64) -> Panel {
    run_7b_jobs(seed, 1)
}

/// Fig. 7b across `jobs` workers.
pub fn run_7b_jobs(seed: u64, jobs: usize) -> Panel {
    runner::run(
        &Fig7PanelExp {
            kind: PanelKind::Clean,
            seed,
        },
        jobs,
    )
}

/// Fig. 7c decomposed: one trial per relay restriction, with the
/// historical `seed ^ 1` / `seed ^ 2` client seeds.
pub struct Fig7cExp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for Fig7cExp {
    type Trial = Cdf;
    type Output = Panel;

    fn name(&self) -> &'static str {
        "fig7c"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        vec![
            TrialSpec::salted(self.seed ^ 1, 0, "C-Saw (w/ Lantern)"),
            TrialSpec::salted(self.seed ^ 2, 1, "C-Saw (w/ Tor)"),
        ]
    }

    fn run_trial(&self, spec: &TrialSpec) -> Cdf {
        let policy = csaw_censor::single_mechanism(
            "F7C",
            YOUTUBE,
            DnsTamper::HijackTo("10.66.66.66".parse().expect("static")),
            IpAction::Drop,
            HttpAction::None,
            TlsAction::None,
        );
        let world = single_isp_world(Asn(5600), "F7C-ISP", policy);
        let url = Url::parse(&format!("http://{YOUTUBE}/")).expect("static URL");
        let relay: Box<dyn Transport + Send> = if spec.ordinal == 0 {
            Box::new(LanternClient::new())
        } else {
            Box::new(TorClient::new())
        };
        let mut client =
            CsawClient::new(CsawConfig::default(), None, spec.seed).with_transports(vec![
                Box::new(csaw_circumvent::transports::PublicDns),
                Box::new(csaw_circumvent::transports::HttpsUpgrade { public_dns: true }),
                relay,
            ]);
        Cdf::of(&spec.label, &csaw_plts(&world, &mut client, &url))
    }

    fn reduce(&self, trials: Vec<Cdf>) -> Panel {
        Panel {
            title: "Figure 7c: multi-stage blocking (IP + DNS), relay choice".into(),
            series: trials,
        }
    }
}

/// Fig. 7c: multi-stage blocking; C-Saw's relay restricted to Lantern vs
/// to Tor.
pub fn run_7c(seed: u64) -> Panel {
    run_7c_jobs(seed, 1)
}

/// Fig. 7c across `jobs` workers.
pub fn run_7c_jobs(seed: u64, jobs: usize) -> Panel {
    runner::run(&Fig7cExp { seed }, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_csaw_beats_lantern_beats_tor() {
        let p = run_7a(71);
        let csaw = p.series("C-Saw").median();
        let lantern = p.series("Lantern").median();
        let tor = p.series("Tor").median();
        assert!(csaw < lantern, "csaw {csaw:.2} vs lantern {lantern:.2}");
        assert!(lantern < tor, "lantern {lantern:.2} vs tor {tor:.2}");
        // Headline: C-Saw improves average PLT by up to 48% over Lantern
        // and 63% over Tor — check we're in that ballpark or better.
        let vs_lantern = crate::stats::reduction_pct(lantern, csaw);
        let vs_tor = crate::stats::reduction_pct(tor, csaw);
        assert!(vs_lantern >= 30.0, "vs lantern {vs_lantern:.1}%");
        assert!(vs_tor >= 40.0, "vs tor {vs_tor:.1}%");
    }

    #[test]
    fn fig7b_direct_wins_unblocked() {
        let p = run_7b(72);
        let csaw = p.series("C-Saw").median();
        let lantern = p.series("Lantern").median();
        let tor = p.series("Tor").median();
        assert!(csaw < lantern && csaw < tor);
    }

    #[test]
    fn fig7c_lantern_relay_beats_tor_relay() {
        let p = run_7c(73);
        let l = p.series("C-Saw (w/ Lantern)").median();
        let t = p.series("C-Saw (w/ Tor)").median();
        assert!(l < t, "lantern-relay {l:.2} vs tor-relay {t:.2}");
    }
}
