//! Table 7: the pilot deployment study (§7.4).
//!
//! 123 consenting users behind 16 ASes browse their natural mix of
//! clean and censored sites for three months; the global DB accumulates
//! crowdsourced measurements. Paper's aggregates:
//!
//! | metric | paper |
//! |---|---|
//! | users | 123 |
//! | unique blocked URLs accessed | 997 |
//! | unique blocked domains | 420 |
//! | unique ASes | 16 |
//! | distinct blocking types | 5 |
//! | URLs with DNS blocking | 376 |
//! | URLs with TCP connect timeout | 114 |
//! | URLs with block page | 475 |
//! | unique updates | 1787 |
//!
//! The universe is constructed to the paper's published totals (420
//! domains / 997 URLs / mechanism proportions); what the experiment
//! *validates* is that the full pipeline — browsing, detection,
//! aggregation, reporting, voting, per-AS downloads — recovers those
//! numbers at the server.

use crate::workload::{pilot_universe, Zipf};
use crate::worlds::pilot_asns;
use csaw::client::CsawClient;
use csaw::config::{CsawConfig, RedundancyMode};
use csaw::global::{DeploymentStats, ServerDb};
use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction};
use csaw_censor::policy::{CensorPolicy, CensorRule, TargetMatcher};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{AccessNetwork, Asn, Provider, Region, Site};

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7 {
    /// Server-side aggregates after the study.
    pub stats: DeploymentStats,
}

/// Mechanism classes assigned across blocked domains, tuned to the
/// paper's URL-level proportions (376 DNS / 114 TCP / 475 block page of
/// 997, remainder HTTP-drop).
fn mechanism_for(domain_idx: usize, n_domains: usize) -> (DnsTamper, IpAction, HttpAction) {
    // Permute the index first: the URL universe gives low-index domains
    // more URLs (round-robin spill), and mechanism shares are specified
    // over *URLs*, so assignment must be independent of index order.
    let j = (domain_idx * 17 + 5) % n_domains;
    let u = (j as f64 + 0.5) / n_domains as f64;
    let domain_idx = j;
    if u < 0.377 {
        (DnsTamper::Nxdomain, IpAction::None, HttpAction::None)
    } else if u < 0.377 + 0.114 {
        (DnsTamper::None, IpAction::Drop, HttpAction::None)
    } else if u < 0.377 + 0.114 + 0.477 {
        if domain_idx.is_multiple_of(2) {
            (
                DnsTamper::None,
                IpAction::None,
                HttpAction::BlockPageRedirect,
            )
        } else {
            (DnsTamper::None, IpAction::None, HttpAction::BlockPageInline)
        }
    } else {
        (DnsTamper::None, IpAction::None, HttpAction::Drop)
    }
}

/// Build the pilot world: every blocked/clean domain as a site, one
/// censor policy shared by all 16 ASes (nation-wide blacklist, per-AS
/// enforcement), multihomed access across all ASes so each client's
/// flows stay within its own AS via single-provider sub-worlds.
fn pilot_world(asn: Asn, universe: &crate::workload::PilotUniverse) -> World {
    let provider = Provider::new(asn, format!("pilot-{asn}"));
    let mut builder = World::builder(AccessNetwork::single(provider));
    for d in &universe.blocked_domains {
        builder =
            builder.site(SiteSpec::new(d, Site::in_region(Region::UsEast)).default_page(90_000, 5));
    }
    for d in &universe.clean_domains {
        builder =
            builder.site(SiteSpec::new(d, Site::in_region(Region::UsEast)).default_page(70_000, 4));
    }
    let mut policy = CensorPolicy::new(format!("censor-{asn}"));
    for (i, d) in universe.blocked_domains.iter().enumerate() {
        let (dns, ip, http) = mechanism_for(i, universe.blocked_domains.len());
        policy = policy.with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix(d.clone()))
                .dns(dns)
                .ip(ip)
                .http(http),
        );
    }
    builder.censor(asn, policy).build()
}

/// Run the pilot study. `users` defaults to the paper's 123; smaller
/// values are used by the quick integration tests.
pub fn run(seed: u64, users: usize) -> Table7 {
    let universe = pilot_universe(420, 997, 60);
    let asns = pilot_asns();
    let server = ServerDb::builder(seed)
        .registrar(csaw::global::RegistrarConfig {
            max_risk: 0.7,
            max_per_window: usize::MAX,
            window: SimDuration::from_secs(60),
        })
        .build()
        .expect("default store config is valid");
    // One world per AS (clients in the same AS share it).
    let worlds: Vec<World> = asns.iter().map(|a| pilot_world(*a, &universe)).collect();
    let zipf_blocked = Zipf::new(universe.blocked_urls.len(), 0.9);
    let zipf_clean = Zipf::new(universe.clean_urls.len(), 0.9);

    // Fast client config: serial redundancy keeps the hot loop cheap and
    // the measurement outcomes identical.
    let cfg = CsawConfig {
        redundancy: RedundancyMode::Serial,
        revalidate_p: 0.05,
        ..CsawConfig::default()
    };

    let per_client = universe.blocked_urls.len().div_ceil(users);
    let mut rng = DetRng::new(seed ^ 0x717);
    for u in 0..users {
        let asn = asns[u % asns.len()];
        let world = &worlds[u % asns.len()];
        let mut client = CsawClient::new(cfg, None, seed ^ (u as u64) << 4);
        client
            .register(&server, asn, SimTime::from_secs(u as u64), 0.1)
            .expect("registration passes the gate");
        let mut now = SimTime::from_secs(1_000 + u as u64 * 10);
        // Deterministic slice: guarantees full coverage of the 997 URLs
        // across the population (the paper's users *did* visit them).
        let lo = u * per_client;
        let hi = ((u + 1) * per_client).min(universe.blocked_urls.len());
        for idx in lo..hi {
            now += SimDuration::from_secs(40);
            client.request(world, &universe.blocked_urls[idx], now);
        }
        // Plus natural Zipf browsing over the whole mix.
        for _ in 0..20 {
            now += SimDuration::from_secs(30);
            let url = if rng.chance(0.4) {
                &universe.blocked_urls[zipf_blocked.sample(&mut rng)]
            } else {
                &universe.clean_urls[zipf_clean.sample(&mut rng)]
            };
            client.request(world, url, now);
        }
        client.post_reports(&server, now);
    }
    Table7 {
        stats: server.stats(),
    }
}

impl Table7 {
    /// Text rendering in the paper's layout.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let rows = [
            ("No. of users", s.clients.to_string(), "123"),
            (
                "No. of unique blocked URLs accessed",
                s.unique_blocked_urls.to_string(),
                "997",
            ),
            (
                "No. of unique blocked domains accessed",
                s.unique_blocked_domains.to_string(),
                "420",
            ),
            ("No. of unique ASes", s.unique_ases.to_string(), "16"),
            (
                "Distinct types of blocking observed",
                s.distinct_blocking_types.to_string(),
                "5",
            ),
            (
                "No. of URLs experiencing DNS blocking",
                s.urls_dns_blocked.to_string(),
                "376",
            ),
            (
                "No. of URLs experiencing TCP connection timeout",
                s.urls_tcp_timeout.to_string(),
                "114",
            ),
            (
                "No. of URLs for which a block page was returned",
                s.urls_block_page.to_string(),
                "475",
            ),
            (
                "No. of unique updates",
                s.unique_updates.to_string(),
                "1787",
            ),
        ];
        let mut out = String::from("Table 7: deployment study (measured vs paper)\n");
        for (label, got, paper) in rows {
            out.push_str(&format!("  {label:<50}{got:>8}  (paper: {paper})\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down pilot (24 users) exercising the full pipeline; the
    /// 123-user run happens in `exp_table7` / integration tests.
    #[test]
    fn mini_pilot_recovers_structure() {
        let t = run(77, 24);
        let s = &t.stats;
        assert_eq!(s.clients, 24);
        assert_eq!(s.unique_ases, 16);
        assert_eq!(s.distinct_blocking_types, 5, "paper reports exactly 5");
        // Full URL coverage via the deterministic slices.
        assert!(
            s.unique_blocked_urls >= 950,
            "unique blocked URLs {}",
            s.unique_blocked_urls
        );
        assert!(
            s.unique_blocked_domains >= 400,
            "domains {}",
            s.unique_blocked_domains
        );
        // Mechanism proportions in the paper's ballpark.
        let total = s.unique_blocked_urls as f64;
        let dns = s.urls_dns_blocked as f64 / total;
        let tcp = s.urls_tcp_timeout as f64 / total;
        let bp = s.urls_block_page as f64 / total;
        assert!((0.30..=0.45).contains(&dns), "dns {dns:.2}");
        assert!((0.06..=0.18).contains(&tcp), "tcp {tcp:.2}");
        assert!((0.40..=0.55).contains(&bp), "bp {bp:.2}");
        assert!(s.unique_updates >= 997);
    }

    #[test]
    fn mechanism_assignment_proportions() {
        let n = 420;
        let mut dns = 0;
        let mut tcp = 0;
        let mut bp = 0;
        for i in 0..n {
            let (d, ip, http) = mechanism_for(i, n);
            if d.is_active() {
                dns += 1;
            } else if ip.is_active() {
                tcp += 1;
            } else if http.serves_block_page() {
                bp += 1;
            }
        }
        assert!((dns as f64 / n as f64 - 0.377).abs() < 0.02);
        assert!((tcp as f64 / n as f64 - 0.114).abs() < 0.02);
        assert!((bp as f64 / n as f64 - 0.477).abs() < 0.02);
    }
}
