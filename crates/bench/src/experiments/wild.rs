//! §7.5 "C-Saw in the Wild": the November 2017 blocking event.
//!
//! During protests, Twitter and Instagram were blocked between Nov 25–28
//! 2017; the paper's snapshot shows *different ASes blocking the same
//! service differently*. We replay the event: clients in five ASes browse
//! both services; at the event time each AS's censor switches on per the
//! paper's matrix; C-Saw's in-line detection catches the change and the
//! experiment logs the first detection per (AS, service) with its
//! failure signature.

use crate::runner::{self, Experiment, TrialSpec};
use csaw::client::CsawClient;
use csaw::config::{CsawConfig, RedundancyMode};
use csaw::local::Status;
use csaw_censor::blocking::{BlockingType, Stage};
use csaw_censor::profiles::{event_blocking_2017, event_matrix_2017};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_simnet::time::SimTime;
use csaw_simnet::topology::{AccessNetwork, Asn, Provider, Region, Site};
use csaw_webproto::url::Url;

/// One detection event in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Which AS observed it.
    pub asn: u32,
    /// The blocked service domain.
    pub service: String,
    /// Virtual detection time (seconds since scenario start).
    pub at_s: u64,
    /// Observed mechanisms.
    pub stages: Vec<BlockingType>,
    /// Paper-style response label.
    pub response: String,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Wild {
    /// When the censors switched on (s).
    pub event_at_s: u64,
    /// First detection per (AS, service).
    pub detections: Vec<Detection>,
}

fn response_label(stages: &[BlockingType]) -> String {
    if stages.iter().any(|s| {
        matches!(
            s,
            BlockingType::HttpBlockPageInline | BlockingType::HttpBlockPageRedirect
        )
    }) {
        "HTTP_GET_BLOCKPAGE".into()
    } else if stages.contains(&BlockingType::HttpDrop) {
        "HTTP_GET_TIMEOUT".into()
    } else if stages.iter().any(|s| s.stage() == Stage::Dns) {
        "DNS blocking".into()
    } else {
        format!("{stages:?}")
    }
}

fn service_world(asn: Asn) -> World {
    let provider = Provider::new(asn, format!("wild-{asn}"));
    World::builder(AccessNetwork::single(provider))
        .site(
            SiteSpec::new("twitter.com", Site::in_region(Region::UsEast))
                .category(csaw_censor::Category::Social)
                .default_page(250_000, 16),
        )
        .site(
            SiteSpec::new("instagram.com", Site::in_region(Region::UsEast))
                .category(csaw_censor::Category::Social)
                .default_page(300_000, 18),
        )
        .build()
}

/// When the censors switch on (s): one hour in.
const EVENT_AT_S: u64 = 3_600;

/// The event's ASes, sorted and deduplicated.
fn event_ases() -> Vec<Asn> {
    let mut v: Vec<Asn> = event_matrix_2017().iter().map(|(a, _, _)| *a).collect();
    v.sort_by_key(|a| a.0);
    v.dedup();
    v
}

/// Replay the event. Clients poll both services every `poll_s` seconds;
/// the censors switch on at `event_at_s`.
pub fn run(seed: u64) -> Wild {
    run_jobs(seed, 1)
}

/// The wild replay with one runner trial per AS.
pub fn run_jobs(seed: u64, jobs: usize) -> Wild {
    runner::run(&WildExp { seed }, jobs)
}

/// The event replay decomposed: one trial per AS (each AS's client and
/// censor are fully independent), with the historical `seed ^ asn`
/// client seeds. The reduction re-sorts detections by (time, AS), so
/// the merged log matches the serial one exactly.
pub struct WildExp {
    /// Experiment seed.
    pub seed: u64,
}

impl Experiment for WildExp {
    type Trial = Vec<Detection>;
    type Output = Wild;

    fn name(&self) -> &'static str {
        "wild"
    }

    fn trials(&self) -> Vec<TrialSpec> {
        event_ases()
            .into_iter()
            .enumerate()
            .map(|(i, asn)| {
                TrialSpec::salted(self.seed ^ asn.0 as u64, i as u64, format!("AS{}", asn.0))
            })
            .collect()
    }

    fn run_trial(&self, spec: &TrialSpec) -> Vec<Detection> {
        let asn = event_ases()[spec.ordinal as usize];
        let poll_s: u64 = 600; // users check their feeds every 10 min
        let horizon_s: u64 = 3 * 3_600;
        let services = ["twitter.com", "instagram.com"];
        let mut detections = Vec::new();
        let mut world = service_world(asn);
        let cfg = CsawConfig {
            redundancy: RedundancyMode::Serial,
            ..CsawConfig::default()
        };
        let mut client = CsawClient::new(cfg, None, spec.seed);
        let mut installed = false;
        let mut found: Vec<&str> = Vec::new();
        let mut t = 0u64;
        while t <= horizon_s {
            if !installed && t >= EVENT_AT_S {
                world.install_censor(asn, event_blocking_2017(asn, csaw_censor::clean()));
                installed = true;
            }
            for service in services {
                if found.contains(&service) {
                    continue;
                }
                let url = Url::parse(&format!("http://{service}/")).expect("static URL");
                let now = SimTime::from_secs(t);
                let r = client.request(&world, &url, now);
                if r.status_after == Status::Blocked {
                    let stages = client
                        .local_db
                        .lookup(&url, now)
                        .record
                        .map(|rec| rec.stages)
                        .unwrap_or_default();
                    detections.push(Detection {
                        asn: asn.0,
                        service: service.to_string(),
                        at_s: t,
                        response: response_label(&stages),
                        stages,
                    });
                    found.push(service);
                }
            }
            t += poll_s;
        }
        detections
    }

    fn reduce(&self, trials: Vec<Vec<Detection>>) -> Wild {
        let mut detections: Vec<Detection> = trials.into_iter().flatten().collect();
        detections.sort_by_key(|d| (d.at_s, d.asn));
        Wild {
            event_at_s: EVENT_AT_S,
            detections,
        }
    }
}

impl Wild {
    /// The detection for one (AS, service), if any.
    pub fn detection(&self, asn: u32, service: &str) -> Option<&Detection> {
        self.detections
            .iter()
            .find(|d| d.asn == asn && d.service == service)
    }

    /// Paper-style snapshot rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "C-Saw in the wild: blocking event at t={}s; measurements collected:\n",
            self.event_at_s
        );
        for d in &self.detections {
            out.push_str(&format!(
                "  * {} was found blocked at t={}s from AS {} (Response: {})\n",
                d.service, d.at_s, d.asn, d.response
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_matrix_recovered_per_as() {
        let w = run(99);
        // Twitter: HTTP GET timeout on AS 38193, block page on AS 17557.
        let d = w.detection(38193, "twitter.com").expect("detected");
        assert_eq!(d.response, "HTTP_GET_TIMEOUT");
        let d = w.detection(17557, "twitter.com").expect("detected");
        assert_eq!(d.response, "HTTP_GET_BLOCKPAGE");
        // Instagram: DNS blocking on AS 38193, 59257, 45773.
        for asn in [38193, 59257, 45773] {
            let d = w.detection(asn, "instagram.com").expect("detected");
            assert_eq!(d.response, "DNS blocking", "AS{asn}: {:?}", d.stages);
        }
        // Nobody detects blocking before the event.
        for d in &w.detections {
            assert!(d.at_s >= w.event_at_s, "{d:?}");
        }
        // And detection is prompt: within two poll rounds of the event.
        for d in &w.detections {
            assert!(d.at_s <= w.event_at_s + 1_800, "{d:?}");
        }
    }

    #[test]
    fn no_cross_service_false_positives() {
        let w = run(100);
        // AS 17557 blocks only Twitter; Instagram must stay clean there.
        assert!(w.detection(17557, "instagram.com").is_none());
        // AS 59257 and 45773 block only Instagram.
        assert!(w.detection(59257, "twitter.com").is_none());
        assert!(w.detection(45773, "twitter.com").is_none());
    }

    #[test]
    fn render_matches_paper_phrasing() {
        let w = run(101);
        let s = w.render();
        assert!(s.contains("was found blocked at"));
        assert!(s.contains("Response:"));
    }
}
