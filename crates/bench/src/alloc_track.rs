//! Allocation accounting for the perf scorecard.
//!
//! Thin façade over `csaw-perf-alloc`: with the `perf-telemetry`
//! feature the counting global allocator is installed and
//! [`snapshot`] reads live totals; without it everything here is a
//! zero-cost stub that reads zeros and reports itself disabled. Callers
//! bracket a phase with two snapshots and subtract — scorecards record
//! the delta only when [`enabled`] is true, so a stock build never
//! writes misleading zeros as if they were measurements.

/// Allocator totals at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (alloc + alloc_zeroed + realloc).
    pub allocs: u64,
    /// Bytes requested across those events.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// The growth from `earlier` to `self` (saturating: snapshots from
    /// different process runs make no sense and clamp to zero).
    pub fn delta_since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Whether this build counts allocations (`perf-telemetry` feature).
pub fn enabled() -> bool {
    #[cfg(feature = "perf-telemetry")]
    {
        csaw_perf_alloc::counting()
    }
    #[cfg(not(feature = "perf-telemetry"))]
    {
        false
    }
}

/// Process-wide allocator totals since start (zeros when disabled).
pub fn snapshot() -> AllocSnapshot {
    #[cfg(feature = "perf-telemetry")]
    {
        let (allocs, bytes) = csaw_perf_alloc::snapshot();
        AllocSnapshot { allocs, bytes }
    }
    #[cfg(not(feature = "perf-telemetry"))]
    {
        AllocSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_saturating_and_zero_when_disabled() {
        let a = AllocSnapshot {
            allocs: 10,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocs: 4,
            bytes: 40,
        };
        assert_eq!(
            a.delta_since(&b),
            AllocSnapshot {
                allocs: 6,
                bytes: 60
            }
        );
        assert_eq!(b.delta_since(&a), AllocSnapshot::default());
        if !enabled() {
            assert_eq!(snapshot(), AllocSnapshot::default());
        }
    }

    #[test]
    fn enabled_tracks_feature() {
        assert_eq!(enabled(), cfg!(feature = "perf-telemetry"));
    }
}
