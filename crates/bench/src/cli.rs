//! Shared command-line plumbing for the `exp_*` binaries.
//!
//! Every experiment binary accepts the same flags (`--seed`, `--jobs`,
//! `--metrics-out`, `--trace-out`, `-v`); the single source of truth for
//! their help text is [`COMMON_HELP`], which every binary's `--help`
//! prints verbatim — fix wording there, never in a binary.
//!
//! [`ExpCli::parse`] installs a process-wide [`csaw_obs`] context — a
//! fresh registry, a [`ManualClock`] driven by the simnet virtual clock,
//! and a sink chosen by the flags (null by default, so the hot paths pay
//! nothing). [`ExpCli::finish`] dumps the snapshot. The snapshot is a
//! pure function of the seed: two runs with the same seed write
//! byte-identical JSON, *regardless of `--jobs`* — the parallel runner
//! merges per-trial telemetry in trial order behind a barrier.

use csaw_obs::chrome::ChromeTraceSink;
use csaw_obs::clock::ManualClock;
use csaw_obs::contention::PerfMode;
use csaw_obs::scope::{self, ObsCtx, ScopeGuard};
use csaw_obs::sink::{FilterSink, JsonlSink, NullSink, Sink, StderrSink, TeeSink};
use csaw_obs::slo::{SloSet, VIOLATION_EVENT};
use csaw_obs::timeseries::{WindowCfg, FRAME_EVENT};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Help text for the flags shared by every `exp_*` binary — the single
/// source of truth; `usage()` splices it into every binary's `--help`.
pub const COMMON_HELP: &str = "\
  --seed N            experiment seed (default 1, the EXPERIMENTS.md seed)
  --jobs N            worker threads for independent trials (default 1;
                      0 = all available cores); output is byte-identical
                      for every N
  --metrics-out PATH  write a JSON metrics snapshot on exit
  --trace-out PATH    write trace events; `.json` selects Chrome-trace
                      format (chrome://tracing, Perfetto), anything else
                      streams raw JSONL events
  --perf MODE         perf-attribution telemetry: off | virtual | wall
                      (off unless the binary documents another default;
                      wall records real lock wait/hold time and so makes
                      snapshots machine-dependent)
  --window SECS       telemetry window length, virtual seconds (0 = off);
                      overrides the binary's documented default
  --frames-out PATH   write `ts.frame`/`slo.violation` events as JSONL,
                      the input format of the health-report binary
  -v, --verbose       progress events to stderr (stdout stays parseable)";

/// Parsed telemetry flags plus the installed observability scope.
pub struct ExpCli {
    /// The experiment seed (`--seed`, default 1).
    pub seed: u64,
    /// Worker threads for independent trials (`--jobs`, default 1;
    /// `--jobs 0` resolves to the number of available cores).
    pub jobs: usize,
    /// Perf-attribution mode from `--perf`, `None` when the flag was
    /// absent (so a binary can apply its own default via
    /// [`ExpCli::default_perf`]).
    pub perf: Option<PerfMode>,
    /// Telemetry window length in virtual seconds from `--window`,
    /// `None` when absent (the binary's [`ExpCli::default_window`]
    /// applies then). `Some(0.0)` explicitly disables windowing.
    pub window: Option<f64>,
    metrics_out: Option<PathBuf>,
    frames_out: Option<PathBuf>,
    ctx: Arc<ObsCtx>,
    // Keeps the thread-local scope alive for the binary's lifetime.
    _guard: ScopeGuard,
}

/// Full `--help`/usage text: the [`COMMON_HELP`] flags plus one line per
/// experiment-specific `(flag, help)` pair.
fn usage(bin: &str, extra_flags: &[(&str, &str)]) -> String {
    let mut u = format!("usage: {bin} [flags]\n\ncommon flags:\n{COMMON_HELP}");
    if !extra_flags.is_empty() {
        u.push_str("\n\nexperiment flags:");
        for (flag, help) in extra_flags {
            u.push_str(&format!("\n  {:<20}{help}", format!("{flag} VALUE")));
        }
    }
    u
}

impl ExpCli {
    /// Parse `std::env::args`, install the observability scope, and
    /// return the handle. Exits the process on `--help` or bad flags.
    pub fn parse() -> ExpCli {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args)
    }

    /// Like [`ExpCli::parse`], but also accepts the experiment-specific
    /// value flags listed in `extra_flags` as `(flag, help)` pairs (e.g.
    /// `&[("--clients", "worker clients to simulate")]`); the help text
    /// lands in `--help` under "experiment flags". The collected values
    /// come back keyed by flag name; a flag given twice keeps the last
    /// value.
    pub fn parse_with_extras(extra_flags: &[(&str, &str)]) -> (ExpCli, HashMap<String, String>) {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args_with_extras(&args, extra_flags)
    }

    /// Testable parser over an explicit argv (`args[0]` is the binary).
    pub fn from_args(args: &[String]) -> ExpCli {
        Self::from_args_with_extras(args, &[]).0
    }

    /// Testable variant of [`ExpCli::parse_with_extras`].
    pub fn from_args_with_extras(
        args: &[String],
        extra_flags: &[(&str, &str)],
    ) -> (ExpCli, HashMap<String, String>) {
        let bin = args
            .first()
            .map(|s| s.rsplit('/').next().unwrap_or(s).to_string())
            .unwrap_or_else(|| "exp".into());
        let mut seed = 1u64;
        let mut jobs = 1usize;
        let mut perf: Option<PerfMode> = None;
        let mut window: Option<f64> = None;
        let mut metrics_out = None;
        let mut trace_out: Option<PathBuf> = None;
        let mut frames_out: Option<PathBuf> = None;
        let mut verbosity = 0u8;
        let mut extras = HashMap::new();
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            let mut value = |flag: &str| {
                it.next().map(String::to_string).unwrap_or_else(|| {
                    eprintln!("{bin}: {flag} needs a value\n{}", usage(&bin, extra_flags));
                    std::process::exit(2);
                })
            };
            match a.as_str() {
                "--seed" => {
                    let v = value("--seed");
                    seed = v.parse().unwrap_or_else(|_| {
                        eprintln!("{bin}: bad --seed {v:?}\n{}", usage(&bin, extra_flags));
                        std::process::exit(2);
                    });
                }
                "--jobs" => {
                    let v = value("--jobs");
                    jobs = v.parse().unwrap_or_else(|_| {
                        eprintln!("{bin}: bad --jobs {v:?}\n{}", usage(&bin, extra_flags));
                        std::process::exit(2);
                    });
                    if jobs == 0 {
                        jobs = std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1);
                    }
                }
                "--perf" => {
                    let v = value("--perf");
                    perf = Some(PerfMode::parse(&v).unwrap_or_else(|| {
                        eprintln!("{bin}: bad --perf {v:?} (off | virtual | wall)");
                        std::process::exit(2);
                    }));
                }
                "--window" => {
                    let v = value("--window");
                    window = Some(v.parse::<f64>().ok().filter(|w| *w >= 0.0).unwrap_or_else(
                        || {
                            eprintln!("{bin}: bad --window {v:?}\n{}", usage(&bin, extra_flags));
                            std::process::exit(2);
                        },
                    ));
                }
                "--metrics-out" => metrics_out = Some(PathBuf::from(value("--metrics-out"))),
                "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out"))),
                "--frames-out" => frames_out = Some(PathBuf::from(value("--frames-out"))),
                "-v" | "--verbose" => verbosity += 1,
                "-h" | "--help" => {
                    println!("{}", usage(&bin, extra_flags));
                    std::process::exit(0);
                }
                other if extra_flags.iter().any(|(f, _)| *f == other) => {
                    let v = value(other);
                    extras.insert(other.to_string(), v);
                }
                other => {
                    eprintln!(
                        "{bin}: unknown flag {other:?}\n{}",
                        usage(&bin, extra_flags)
                    );
                    std::process::exit(2);
                }
            }
        }
        let sink: Arc<dyn Sink> = match &trace_out {
            // `.json` means a self-contained Chrome-trace file (open it in
            // chrome://tracing or Perfetto); any other extension streams
            // raw JSONL events, one per line, as they happen.
            Some(path) if path.extension().and_then(|e| e.to_str()) == Some("json") => {
                Arc::new(ChromeTraceSink::create(path).unwrap_or_else(|e| {
                    eprintln!("{bin}: cannot open {}: {e}", path.display());
                    std::process::exit(2);
                }))
            }
            Some(path) => Arc::new(JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("{bin}: cannot open {}: {e}", path.display());
                std::process::exit(2);
            })),
            None if verbosity >= 2 => Arc::new(StderrSink),
            None => Arc::new(NullSink),
        };
        // `--frames-out` tees a filtered JSONL stream of frame and
        // violation events off whatever the main sink is (including the
        // null sink: the tee's enabled() gate turns event emission on).
        let sink: Arc<dyn Sink> = match &frames_out {
            Some(path) => {
                let frames = JsonlSink::create(path).unwrap_or_else(|e| {
                    eprintln!("{bin}: cannot open {}: {e}", path.display());
                    std::process::exit(2);
                });
                Arc::new(TeeSink::new(vec![
                    sink,
                    Arc::new(FilterSink::new(
                        Arc::new(frames),
                        &[FRAME_EVENT, VIOLATION_EVENT],
                    )),
                ]))
            }
            None => sink,
        };
        let ctx = Arc::new(
            ObsCtx::new()
                .with_clock(Arc::new(ManualClock::new()))
                .with_sink(sink)
                .with_verbosity(verbosity),
        );
        if let Some(mode) = perf {
            ctx.set_perf_mode(mode);
        }
        // Thread-local for this (main) thread, global fallback for any
        // worker threads the experiment spawns.
        scope::set_global(ctx.clone());
        let guard = scope::install(ctx.clone());
        let cli = ExpCli {
            seed,
            jobs,
            perf,
            window,
            metrics_out,
            frames_out,
            ctx,
            _guard: guard,
        };
        (cli, extras)
    }

    /// Apply a binary-specific default perf mode when `--perf` was not
    /// given (exp_scale defaults to `wall` so every run yields an
    /// attributable scorecard; everything else stays `off`).
    pub fn default_perf(&self, mode: PerfMode) {
        if self.perf.is_none() {
            self.ctx.set_perf_mode(mode);
        }
    }

    /// Configure windowed telemetry: `--window` when given, else the
    /// binary's `default_secs`; zero (from either source) leaves the
    /// timeline disabled. `slos` is the binary's rule set, evaluated at
    /// every window close. Call once, before running the experiment.
    pub fn default_window(&self, default_secs: f64, slos: Arc<SloSet>) {
        let secs = self.window.unwrap_or(default_secs);
        if secs > 0.0 {
            self.ctx
                .timeline
                .configure(WindowCfg::from_secs(secs, slos));
        }
    }

    /// The installed observability context.
    pub fn ctx(&self) -> &Arc<ObsCtx> {
        &self.ctx
    }

    /// Deterministic JSON snapshot of the metrics registry.
    pub fn snapshot_json(&self) -> String {
        let mut snap = self.ctx.registry.snapshot();
        snap.set("seed", self.seed);
        snap.to_string_pretty()
    }

    /// Flush the trace sink and write the metrics snapshot if
    /// `--metrics-out` was given. Call last, after the experiment has
    /// rendered its output.
    pub fn finish(self) {
        // Close the top-level timeline's open window (trial timelines
        // were flushed by the runner; this one carries only caller-side
        // series like `runner.trials.merged` and stays silent when no
        // series registered).
        self.ctx.flush_timeline();
        // Chrome-trace sinks buffer everything and only write a complete
        // file on flush; JSONL sinks flush their line buffer.
        self.ctx.sink.flush();
        if let Some(path) = &self.metrics_out {
            let json = self.snapshot_json();
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            csaw_obs::event::progress(&format!("metrics snapshot -> {}", path.display()));
        }
        if let Some(path) = &self.frames_out {
            csaw_obs::event::progress(&format!("telemetry frames -> {}", path.display()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(rest: &[&str]) -> Vec<String> {
        std::iter::once("exp_test")
            .chain(rest.iter().copied())
            .map(String::from)
            .collect()
    }

    #[test]
    fn defaults() {
        let cli = ExpCli::from_args(&argv(&[]));
        assert_eq!(cli.seed, 1);
        assert_eq!(cli.jobs, 1, "serial by default");
        assert!(cli.metrics_out.is_none());
        assert!(!cli.ctx.sink.enabled(), "default sink is null");
    }

    #[test]
    fn jobs_parses_and_zero_means_all_cores() {
        let cli = ExpCli::from_args(&argv(&["--jobs", "8"]));
        assert_eq!(cli.jobs, 8);
        let cli = ExpCli::from_args(&argv(&["--jobs", "0"]));
        assert!(cli.jobs >= 1, "0 resolves to available cores");
    }

    #[test]
    fn usage_lists_common_and_extra_flags() {
        let u = usage("exp_x", &[("--clients", "worker clients")]);
        assert!(u.contains(COMMON_HELP), "common help embedded verbatim");
        assert!(u.contains("--jobs N"), "jobs documented");
        assert!(u.contains("--clients VALUE"));
        assert!(u.contains("worker clients"));
    }

    #[test]
    fn perf_flag_sets_scope_mode_and_default_perf_defers_to_it() {
        let cli = ExpCli::from_args(&argv(&[]));
        assert_eq!(cli.perf, None);
        assert_eq!(cli.ctx.perf_mode(), PerfMode::Off);
        cli.default_perf(PerfMode::Monotonic);
        assert_eq!(cli.ctx.perf_mode(), PerfMode::Monotonic, "binary default");

        let cli = ExpCli::from_args(&argv(&["--perf", "virtual"]));
        assert_eq!(cli.perf, Some(PerfMode::Virtual));
        assert_eq!(cli.ctx.perf_mode(), PerfMode::Virtual);
        cli.default_perf(PerfMode::Monotonic);
        assert_eq!(
            cli.ctx.perf_mode(),
            PerfMode::Virtual,
            "explicit flag wins over the binary default"
        );
        let cli = ExpCli::from_args(&argv(&["--perf", "wall"]));
        assert_eq!(cli.perf, Some(PerfMode::Monotonic));
    }

    #[test]
    fn seed_and_paths_parse() {
        let cli = ExpCli::from_args(&argv(&["--seed", "42", "--metrics-out", "/tmp/m.json"]));
        assert_eq!(cli.seed, 42);
        assert_eq!(
            cli.metrics_out.as_deref(),
            Some(std::path::Path::new("/tmp/m.json"))
        );
    }

    #[test]
    fn extras_collected_alongside_common_flags() {
        let (cli, extras) = ExpCli::from_args_with_extras(
            &argv(&["--clients", "500", "--seed", "3", "--threads", "1,2"]),
            &[("--clients", "clients"), ("--threads", "thread counts")],
        );
        assert_eq!(cli.seed, 3);
        assert_eq!(extras.get("--clients").map(String::as_str), Some("500"));
        assert_eq!(extras.get("--threads").map(String::as_str), Some("1,2"));
    }

    #[test]
    fn trace_out_json_extension_selects_chrome_format() {
        let path = std::env::temp_dir().join("csaw_cli_chrome_test.json");
        let cli = ExpCli::from_args(&argv(&["--trace-out", path.to_str().unwrap()]));
        assert!(cli.ctx.sink.enabled());
        csaw_obs::event!("cli.format_test");
        cli.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\""), "{text}");
        assert!(text.contains("cli.format_test"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_out_other_extension_streams_jsonl() {
        let path = std::env::temp_dir().join("csaw_cli_jsonl_test.jsonl");
        let cli = ExpCli::from_args(&argv(&["--trace-out", path.to_str().unwrap()]));
        csaw_obs::event!("cli.format_test");
        cli.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.starts_with("{\"event\":\"cli.format_test\"")
                || text.contains("\"event\":\"cli.format_test\""),
            "{text}"
        );
        assert!(!text.contains("traceEvents"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn window_flag_overrides_binary_default() {
        let cli = ExpCli::from_args(&argv(&["--window", "60"]));
        assert_eq!(cli.window, Some(60.0));
        cli.default_window(3_600.0, Arc::new(SloSet::empty()));
        assert_eq!(
            cli.ctx.timeline.cfg().map(|c| c.window_us),
            Some(60_000_000),
            "explicit --window wins over the binary default"
        );

        let cli = ExpCli::from_args(&argv(&[]));
        assert_eq!(cli.window, None);
        cli.default_window(3_600.0, Arc::new(SloSet::empty()));
        assert_eq!(
            cli.ctx.timeline.cfg().map(|c| c.window_us),
            Some(3_600_000_000)
        );

        let cli = ExpCli::from_args(&argv(&["--window", "0"]));
        cli.default_window(3_600.0, Arc::new(SloSet::empty()));
        assert!(!cli.ctx.timeline.enabled(), "--window 0 disables windowing");
    }

    #[test]
    fn frames_out_captures_only_frame_and_violation_events() {
        let path = std::env::temp_dir().join("csaw_cli_frames_test.jsonl");
        let cli = ExpCli::from_args(&argv(&["--frames-out", path.to_str().unwrap()]));
        assert!(
            cli.ctx.sink.enabled(),
            "frames tee must turn event emission on"
        );
        cli.default_window(1.0, Arc::new(SloSet::empty()));
        cli.ctx.timeline.counter("cli.test.work", &[]).add(3);
        csaw_obs::event!("cli.noise");
        cli.finish(); // flushes the open window into the tee
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"event\":\"ts.frame\""), "{text}");
        assert!(text.contains("cli.test.work"), "{text}");
        assert!(!text.contains("cli.noise"), "filter must drop: {text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_includes_seed_and_metrics() {
        let cli = ExpCli::from_args(&argv(&["--seed", "7"]));
        cli.ctx.registry.counter("x").inc();
        let json = cli.snapshot_json();
        let v = csaw_obs::json::JsonValue::parse(&json).unwrap();
        assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(7));
        assert!(json.contains("\"x\""));
    }
}
