//! Causal tracing: trace/span identity for per-fetch event trees.
//!
//! The paper's evaluation is a set of *per-fetch* latency decompositions
//! (PLT = detection + circumvention setup + transfer, Figs. 5–7 and
//! Table 5), but flat events cannot answer "where did this fetch's
//! 4.2 s go?". This module gives every event a causal identity:
//!
//! - a [`TraceId`] names one user fetch (or one report post);
//! - a [`SpanId`] names one timed region within it;
//! - parent links turn the events of a trace into a tree.
//!
//! **Determinism contract.** Identifiers are derived *only* from the
//! experiment seed, a stream tag, and a per-client ordinal — never from
//! wall clock or addresses — via [`derive()`]. Span ids are the trace id
//! mixed with a per-trace sequence number assigned in emission order.
//! Two same-seed runs therefore produce byte-identical traces.
//!
//! Context is carried on a thread-local frame stack, mirroring
//! [`crate::scope`]: [`root`] opens a trace (one per fetch), [`child`]
//! opens a nested span, and every emission in [`mod@crate::event`] annotates
//! itself with the innermost frame. With no active trace the module is
//! inert and emission behaves exactly as before.
//!
//! The root frame also carries a **cursor**: an absolute virtual-time
//! offset (µs) that sequential stages advance as they emit, so deeply
//! nested code (e.g. the circumvention selector) can place its spans on
//! the fetch's waterfall without threading timestamps through every
//! signature.

use crate::json::JsonValue;
use std::cell::{Cell, RefCell};

/// Identifies one causal tree (one user fetch, one report post, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Lower-case fixed-width hex, the wire form ([`JsonValue::Num`] is
    /// an f64 and cannot carry 64 bits exactly).
    pub fn to_hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the wire form.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl SpanId {
    /// Lower-case fixed-width hex (see [`TraceId::to_hex`]).
    pub fn to_hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the wire form.
    pub fn from_hex(s: &str) -> Option<SpanId> {
        u64::from_str_radix(s, 16).ok().map(SpanId)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Well-known stream tags for [`derive()`], so different kinds of traces
/// from the same seed never collide.
pub mod stream {
    /// User fetches (`csaw::client` requests, experiment fetch loops).
    pub const FETCH: u64 = 0;
    /// Report posts to the global DB.
    pub const REPORT: u64 = 1;
    /// Real-proxy request handling (wall clock).
    pub const PROXY: u64 = 2;
}

/// SplitMix64 finalizer — the same mixer the in-tree RNG family uses;
/// full-avalanche, so consecutive ordinals land far apart.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically derive a trace id from `(seed, stream, ordinal)`.
/// Never zero (zero is reserved as "no trace" in compact encodings).
pub fn derive(seed: u64, stream: u64, ordinal: u64) -> TraceId {
    let id = mix(mix(seed ^ mix(stream)).wrapping_add(ordinal));
    TraceId(if id == 0 { 1 } else { id })
}

/// The span id of the `seq`-th span of a trace (seq 0 is the root).
fn span_of(trace: TraceId, seq: u64) -> SpanId {
    let id = mix(trace.0 ^ mix(seq.wrapping_add(1)));
    SpanId(if id == 0 { 1 } else { id })
}

/// The causal annotation one event carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The tree this event belongs to.
    pub trace: TraceId,
    /// The span this event *is* (span events) or sits inside (points).
    pub span: SpanId,
    /// The parent span; `None` for the root.
    pub parent: Option<SpanId>,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    // Next span sequence number for the innermost *root*; saved/restored
    // by RootScope so nested roots (a report post inside an experiment
    // loop) never reuse a sequence number within one trace.
    static SEQ: Cell<u64> = const { Cell::new(1) };
    // Waterfall cursor: absolute µs where the next sequential stage of
    // the innermost root starts.
    static CURSOR: Cell<u64> = const { Cell::new(0) };
}

/// True when a trace frame is active on this thread — the cheap gate for
/// instrumentation that only matters inside a fetch tree.
pub fn in_trace() -> bool {
    FRAMES.with(|f| !f.borrow().is_empty())
}

/// The innermost frame's annotation, if a trace is active. Point events
/// use this directly: they belong *to* the active span.
pub fn active() -> Option<TraceCtx> {
    FRAMES.with(|f| {
        f.borrow().last().map(|fr| TraceCtx {
            trace: fr.trace,
            span: fr.span,
            parent: fr.parent,
        })
    })
}

/// Allocate a fresh child annotation under the active frame, if any.
/// Span events (completed regions) use this so every region gets its own
/// id with the active span as parent.
pub fn next_span() -> Option<TraceCtx> {
    FRAMES.with(|f| {
        let frames = f.borrow();
        let top = frames.last()?;
        let seq = SEQ.with(|s| {
            let v = s.get();
            s.set(v + 1);
            v
        });
        Some(TraceCtx {
            trace: top.trace,
            span: span_of(top.trace, seq),
            parent: Some(top.span),
        })
    })
}

/// The root-frame waterfall cursor (absolute µs), if a trace is active.
pub fn cursor_us() -> Option<u64> {
    if in_trace() {
        Some(CURSOR.with(|c| c.get()))
    } else {
        None
    }
}

/// Move the cursor to an absolute time.
pub fn set_cursor_us(us: u64) {
    if in_trace() {
        CURSOR.with(|c| c.set(us));
    }
}

/// Advance the cursor by `dur_us` (sequential stages call this as they
/// emit, so the next stage starts where they ended).
pub fn advance_cursor_us(dur_us: u64) {
    if in_trace() {
        CURSOR.with(|c| c.set(c.get().saturating_add(dur_us)));
    }
}

/// Open a root trace frame starting at absolute time `start_us`.
///
/// The returned guard keeps the frame active until dropped; dropping
/// restores any enclosing root's sequence counter and cursor. One root
/// per user fetch is the intended granularity.
#[must_use = "the trace ends when the guard drops"]
pub fn root(trace: TraceId, start_us: u64) -> RootScope {
    let span = span_of(trace, 0);
    FRAMES.with(|f| {
        f.borrow_mut().push(Frame {
            trace,
            span,
            parent: None,
        })
    });
    let saved_seq = SEQ.with(|s| s.replace(1));
    let saved_cursor = CURSOR.with(|c| c.replace(start_us));
    RootScope {
        ctx: TraceCtx {
            trace,
            span,
            parent: None,
        },
        start_us,
        saved_seq,
        saved_cursor,
    }
}

/// Convenience: open a fetch-stream root for `(seed, ordinal)`.
pub fn fetch_root(seed: u64, ordinal: u64, start_us: u64) -> RootScope {
    root(derive(seed, stream::FETCH, ordinal), start_us)
}

/// An active root trace frame; pops on drop.
#[derive(Debug)]
pub struct RootScope {
    ctx: TraceCtx,
    start_us: u64,
    saved_seq: u64,
    saved_cursor: u64,
}

impl RootScope {
    /// This root's annotation.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// The trace id.
    pub fn trace(&self) -> TraceId {
        self.ctx.trace
    }

    /// Where the trace started (absolute µs).
    pub fn start_us(&self) -> u64 {
        self.start_us
    }
}

impl Drop for RootScope {
    fn drop(&mut self) {
        FRAMES.with(|f| {
            f.borrow_mut().pop();
        });
        SEQ.with(|s| s.set(self.saved_seq));
        CURSOR.with(|c| c.set(self.saved_cursor));
    }
}

/// Open a child span frame under the active frame. Inert (and free)
/// when no trace is active.
#[must_use = "the span ends when the guard drops"]
pub fn child() -> ChildScope {
    let ctx = next_span();
    if let Some(c) = ctx {
        FRAMES.with(|f| {
            f.borrow_mut().push(Frame {
                trace: c.trace,
                span: c.span,
                parent: c.parent,
            })
        });
    }
    ChildScope { ctx }
}

/// An active child span frame; pops on drop. Inert if opened outside a
/// trace.
#[derive(Debug)]
pub struct ChildScope {
    ctx: Option<TraceCtx>,
}

impl ChildScope {
    /// This frame's annotation (None when opened outside a trace).
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.ctx
    }
}

impl Drop for ChildScope {
    fn drop(&mut self) {
        if self.ctx.is_some() {
            FRAMES.with(|f| {
                f.borrow_mut().pop();
            });
        }
    }
}

/// Emit the span-completion event for the *active frame itself* (rather
/// than a fresh child): this is how a fetch's root span — whose duration
/// the caller computed in virtual time — is closed from code that only
/// knows "a trace is active", e.g. the redundancy engine closing the
/// root its caller opened. Falls back to an untraced span event when no
/// trace is active.
pub fn complete_active(
    name: &str,
    start_us: u64,
    dur_us: u64,
    fields: &[(&'static str, JsonValue)],
) {
    let ctx = crate::scope::current();
    if !ctx.sink.enabled() {
        return;
    }
    ctx.sink.record(&crate::event::Event {
        ts_us: start_us,
        name: name.to_string(),
        dur_us: Some(dur_us),
        fields: fields.to_vec(),
        trace: active(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{install, ObsCtx};
    use crate::sink::RingSink;
    use std::sync::Arc;

    #[test]
    fn derivation_is_deterministic_and_stream_separated() {
        assert_eq!(derive(1, stream::FETCH, 0), derive(1, stream::FETCH, 0));
        assert_ne!(derive(1, stream::FETCH, 0), derive(1, stream::FETCH, 1));
        assert_ne!(derive(1, stream::FETCH, 0), derive(1, stream::REPORT, 0));
        assert_ne!(derive(1, stream::FETCH, 0), derive(2, stream::FETCH, 0));
    }

    #[test]
    fn hex_roundtrip() {
        let t = derive(7, stream::FETCH, 3);
        assert_eq!(TraceId::from_hex(&t.to_hex()), Some(t));
        assert_eq!(t.to_hex().len(), 16);
        let s = span_of(t, 4);
        assert_eq!(SpanId::from_hex(&s.to_hex()), Some(s));
    }

    #[test]
    fn frames_nest_and_allocate_unique_spans() {
        assert!(!in_trace());
        let r = fetch_root(1, 0, 100);
        assert!(in_trace());
        let root_ctx = active().unwrap();
        assert_eq!(root_ctx.parent, None);
        let mut seen = std::collections::HashSet::new();
        seen.insert(root_ctx.span);
        {
            let c1 = child();
            let c1_ctx = c1.ctx().unwrap();
            assert_eq!(c1_ctx.parent, Some(root_ctx.span));
            assert!(seen.insert(c1_ctx.span), "span ids unique");
            {
                let c2 = child();
                let c2_ctx = c2.ctx().unwrap();
                assert_eq!(c2_ctx.parent, Some(c1_ctx.span));
                assert!(seen.insert(c2_ctx.span));
            }
            // Sibling after nested child: still unique, same parent.
            let c3 = next_span().unwrap();
            assert_eq!(c3.parent, Some(c1_ctx.span));
            assert!(seen.insert(c3.span));
        }
        assert_eq!(active().unwrap().span, root_ctx.span, "back to root");
        drop(r);
        assert!(!in_trace());
    }

    #[test]
    fn same_seed_same_span_sequence() {
        let run = || {
            let _r = fetch_root(9, 5, 0);
            let a = next_span().unwrap().span;
            let c = child();
            let b = c.ctx().unwrap().span;
            (a, b)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn nested_roots_restore_seq_and_cursor() {
        let outer = fetch_root(1, 0, 1000);
        let before = next_span().unwrap().span;
        advance_cursor_us(50);
        {
            let _inner = root(derive(1, stream::REPORT, 0), 0);
            let _ = next_span();
            let _ = next_span();
            assert_eq!(cursor_us(), Some(0));
        }
        assert_eq!(cursor_us(), Some(1050), "outer cursor restored");
        let after = next_span().unwrap().span;
        assert_ne!(before, after, "outer seq not reset by inner root");
        assert_eq!(active().unwrap().span, outer.ctx().span);
    }

    #[test]
    fn cursor_tracks_sequential_stages() {
        assert_eq!(cursor_us(), None);
        set_cursor_us(99); // no-op outside a trace
        let _r = fetch_root(3, 0, 500);
        assert_eq!(cursor_us(), Some(500));
        advance_cursor_us(250);
        assert_eq!(cursor_us(), Some(750));
        set_cursor_us(600);
        assert_eq!(cursor_us(), Some(600));
    }

    #[test]
    fn child_outside_trace_is_inert() {
        let c = child();
        assert!(c.ctx().is_none());
        assert!(!in_trace());
    }

    #[test]
    fn complete_active_emits_root_span() {
        let ring = Arc::new(RingSink::new(8));
        let ctx = Arc::new(ObsCtx::new().with_sink(ring.clone()));
        let _g = install(ctx);
        let r = fetch_root(4, 2, 10);
        complete_active("fetch", 10, 400, &[("ok", JsonValue::from(true))]);
        let evs = ring.drain();
        assert_eq!(evs.len(), 1);
        let t = evs[0].trace.unwrap();
        assert_eq!(t.span, r.ctx().span);
        assert_eq!(t.parent, None);
        assert_eq!(evs[0].dur_us, Some(400));
        assert_eq!(evs[0].ts_us, 10);
    }
}
