//! # csaw-obs — dependency-free, virtual-time-aware observability
//!
//! The C-Saw reproduction's evaluation is all about *where time goes*:
//! detection ladders (Table 5), PLT distributions (Figs. 1/5/6), DB
//! lookup costs. This crate gives every other crate a shared way to say
//! so, without dragging in external dependencies or wall-clock
//! nondeterminism:
//!
//! - [`mod@event`]: structured events and spans ([`event!`], [`span_us!`],
//!   [`event::span`]) flowing to a pluggable [`sink`] (null by default,
//!   ring buffer, JSONL file, stderr, Chrome trace, flight recorder);
//! - [`trace`]: causal identity — deterministic trace/span ids with
//!   parent links, so one fetch becomes one reconstructable tree
//!   ([`chrome`] renders it for `chrome://tracing`; [`flight`] retains
//!   only failed trees);
//! - [`metrics`]: a registry of saturating counters, gauges, and
//!   fixed-bucket log-linear histograms, snapshotting to deterministic
//!   JSON;
//! - [`clock`]: time sources — a manually-driven clock that simulation
//!   code advances with virtual time, and a wall clock for the real
//!   proxy;
//! - [`scope`]: thread-local contexts so concurrent experiments (and
//!   concurrent tests) keep their telemetry separate;
//! - [`json`]: the deterministic JSON value/parser the rest of the
//!   workspace builds wire formats on.
//!
//! Determinism contract: with a [`clock::ManualClock`] driven from
//! `SimTime` and any sink, two same-seed runs produce byte-identical
//! metrics snapshots and traces. With the default null sink, emit
//! sites cost one virtual call.
//!
//! ## Example
//!
//! ```
//! use csaw_obs as obs;
//! use std::sync::Arc;
//!
//! let ctx = Arc::new(obs::ObsCtx::new());
//! let guard = obs::install(ctx.clone());
//! obs::inc("db.hits");
//! obs::observe_secs("detect.time_s", 21.03);
//! obs::event!("stage.done", stage = "dns");
//! drop(guard);
//! let snapshot = ctx.registry.snapshot().to_string_pretty();
//! assert!(snapshot.contains("db.hits"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod clock;
pub mod contention;
pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod scope;
pub mod sink;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use chrome::ChromeTraceSink;
pub use clock::{Clock, ManualClock, WallClock};
pub use contention::{LockStats, PerfMode, RwStats, TimedMutex, TimedRwLock};
pub use event::{progress, span, Event, SpanGuard};
pub use flight::FlightRecorder;
pub use json::{JsonError, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use scope::{current, install, set_global, ObsCtx, ScopeGuard};
pub use sink::{BufferSink, FilterSink, JsonlSink, NullSink, RingSink, Sink, StderrSink, TeeSink};
pub use slo::{SloKind, SloRule, SloSet, Violation};
pub use timeseries::{
    Frame, SeriesSample, Timeline, TsCounter, TsGauge, TsHist, WindowCfg, FRAME_EVENT,
};
pub use trace::{SpanId, TraceCtx, TraceId};

/// Increment the named counter in the current context by one.
pub fn inc(name: &str) {
    current().registry.counter(name).inc();
}

/// Add `n` to the named counter in the current context.
pub fn add(name: &str, n: u64) {
    current().registry.counter(name).add(n);
}

/// Set the named gauge in the current context.
pub fn gauge_set(name: &str, v: i64) {
    current().registry.gauge(name).set(v);
}

/// Record `us` into the named histogram in the current context.
pub fn observe_us(name: &str, us: u64) {
    current().registry.histogram(name).observe_us(us);
}

/// Record `secs` into the named histogram in the current context.
pub fn observe_secs(name: &str, secs: f64) {
    current().registry.histogram(name).observe_secs(secs);
}

/// Advance the current context's virtual clock to `us` (no-op when the
/// installed clock is not manual, e.g. the proxy's wall clock), then
/// advance the windowed timeline, closing any crossed window boundaries.
pub fn advance_clock_us(us: u64) {
    let ctx = current();
    if let Some(c) = ctx.manual_clock() {
        c.set_us(us);
    }
    ctx.advance_timeline(us);
}

/// Resolve a windowed counter on the current context's timeline.
pub fn ts_counter(name: &str, labels: &[(&str, &str)]) -> std::sync::Arc<TsCounter> {
    current().timeline.counter(name, labels)
}

/// Resolve a windowed gauge on the current context's timeline.
pub fn ts_gauge(name: &str, labels: &[(&str, &str)]) -> std::sync::Arc<TsGauge> {
    current().timeline.gauge(name, labels)
}

/// Resolve a windowed histogram on the current context's timeline.
pub fn ts_hist(name: &str, labels: &[(&str, &str)]) -> std::sync::Arc<TsHist> {
    current().timeline.hist(name, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn free_functions_hit_the_scoped_registry() {
        let ctx = Arc::new(ObsCtx::new());
        let _g = install(ctx.clone());
        inc("a");
        add("a", 2);
        gauge_set("g", -4);
        observe_us("h", 10);
        observe_secs("h", 0.00002);
        assert_eq!(ctx.registry.counter("a").get(), 3);
        assert_eq!(ctx.registry.gauge("g").get(), -4);
        assert_eq!(ctx.registry.histogram("h").count(), 2);
    }

    #[test]
    fn advance_clock_reaches_events() {
        let ring = Arc::new(RingSink::new(4));
        let ctx = Arc::new(ObsCtx::new().with_sink(ring.clone()));
        let _g = install(ctx);
        advance_clock_us(777);
        crate::event!("tick");
        assert_eq!(ring.drain()[0].ts_us, 777);
    }
}
