//! The metrics registry: saturating counters, gauges, and fixed-bucket
//! log-linear histograms.
//!
//! Everything is lock-free on the hot path (atomics only); registration
//! takes a registry-wide mutex once per metric name. Snapshots are
//! deterministic: names sort lexicographically and histogram buckets are
//! fixed at construction, so two identical runs snapshot to
//! byte-identical JSON.

use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically-increasing, saturating counter.
///
/// Saturation (rather than wrap-around) keeps a runaway increment from
/// masquerading as a reset in dashboards: once a counter hits
/// `u64::MAX` it stays there.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (queue depth, in-flight count).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram bucketing: values 0–63 µs get exact unit buckets; above
/// that, each power-of-two octave splits into 64 log-linear sub-buckets
/// (≤ ~1.6 % relative width), up to a clamp at 2^42 µs (~52 days of
/// virtual time), far beyond any detection ladder or PLT.
const LINEAR_CUTOVER: u64 = 64;
const SUBBUCKET_BITS: u32 = 6;
const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS;
const MAX_EXP: u32 = 42;
const BUCKET_COUNT: usize =
    LINEAR_CUTOVER as usize + ((MAX_EXP - SUBBUCKET_BITS) as usize + 1) * SUBBUCKETS as usize;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOVER {
        return v as usize;
    }
    let v = v.min((1u64 << MAX_EXP) * 2 - 1);
    let e = 63 - v.leading_zeros(); // v in [2^e, 2^(e+1))
    let e = e.min(MAX_EXP);
    let sub = (v >> (e - SUBBUCKET_BITS)) & (SUBBUCKETS - 1);
    LINEAR_CUTOVER as usize + ((e - SUBBUCKET_BITS) as usize) * SUBBUCKETS as usize + sub as usize
}

/// Inclusive lower bound of a bucket, in µs.
fn bucket_lower(idx: usize) -> u64 {
    if idx < LINEAR_CUTOVER as usize {
        return idx as u64;
    }
    let rest = idx - LINEAR_CUTOVER as usize;
    let e = (rest / SUBBUCKETS as usize) as u32 + SUBBUCKET_BITS;
    let sub = (rest % SUBBUCKETS as usize) as u64;
    (SUBBUCKETS + sub) << (e - SUBBUCKET_BITS)
}

/// Midpoint of a bucket (the representative value for quantiles), in µs.
fn bucket_mid(idx: usize) -> u64 {
    if idx < LINEAR_CUTOVER as usize {
        return idx as u64;
    }
    let lower = bucket_lower(idx);
    let width = if idx + 1 < BUCKET_COUNT {
        bucket_lower(idx + 1) - lower
    } else {
        lower // terminal bucket: same relative width as neighbours
    };
    lower + width / 2
}

/// A fixed-bucket log-linear histogram over microsecond values.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record a value in microseconds.
    pub fn observe_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Record a value in seconds (negative values clamp to zero).
    pub fn observe_secs(&self, secs: f64) {
        self.observe_us((secs.max(0.0) * 1e6).round() as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Estimated quantile (`q` in 0..=1) in µs; `None` when empty.
    /// Resolution follows the bucket width: exact below 64 µs, ≤ ~1.6 %
    /// relative error above.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_mid(i));
            }
        }
        Some(self.max_us.load(Ordering::Relaxed))
    }

    /// Median in seconds; `None` when empty.
    pub fn median_secs(&self) -> Option<f64> {
        self.quantile_us(0.5).map(|us| us as f64 / 1e6)
    }

    /// Median (p50) in µs; `None` when empty.
    pub fn p50_us(&self) -> Option<u64> {
        self.quantile_us(0.5)
    }

    /// 90th percentile in µs; `None` when empty.
    pub fn p90_us(&self) -> Option<u64> {
        self.quantile_us(0.9)
    }

    /// 99th percentile in µs; `None` when empty.
    pub fn p99_us(&self) -> Option<u64> {
        self.quantile_us(0.99)
    }

    /// Mean in µs; `None` when empty.
    pub fn mean_us(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum_us() as f64 / n as f64)
    }

    /// Summarize and clear the recorded samples: the windowed-series
    /// layer calls this at every window close. Returns `None` when no
    /// samples were recorded. Not linearizable against concurrent
    /// `observe_us` calls — window closes happen on the deterministic
    /// simulation path, never concurrently with recorders.
    pub(crate) fn drain_window(&self) -> Option<HistDigest> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let digest = HistDigest {
            count,
            sum_us: self.sum_us(),
            min_us: self.min_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us: self.quantile_us(0.5).unwrap_or(0),
            p90_us: self.quantile_us(0.9).unwrap_or(0),
            p99_us: self.quantile_us(0.99).unwrap_or(0),
        };
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
        self.min_us.store(u64::MAX, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
        Some(digest)
    }

    /// Fold another histogram's samples into this one. Buckets are
    /// fixed at construction and identical across histograms, so the
    /// merge is exact: counts and sums add, min/max tighten. Addition
    /// commutes, so a merged snapshot is independent of merge order —
    /// the property the parallel experiment runner's byte-equality
    /// gate rests on.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let count = other.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min_us
            .fetch_min(other.min_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_us
            .fetch_max(other.max_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn to_json(&self) -> JsonValue {
        let count = self.count();
        let mut v = JsonValue::obj();
        v.set("count", count);
        v.set("sum_us", self.sum_us());
        if count > 0 {
            v.set("min_us", self.min_us.load(Ordering::Relaxed));
            v.set("max_us", self.max_us.load(Ordering::Relaxed));
            for (label, q) in [("p50_us", 0.5), ("p90_us", 0.9), ("p99_us", 0.99)] {
                if let Some(x) = self.quantile_us(q) {
                    v.set(label, x);
                }
            }
            let mut buckets = Vec::new();
            for (i, b) in self.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                if n > 0 {
                    buckets.push(JsonValue::Arr(vec![
                        JsonValue::from(bucket_lower(i)),
                        JsonValue::from(n),
                    ]));
                }
            }
            v.set("buckets", buckets);
        }
        v
    }
}

/// One window's worth of histogram samples, summarized at drain time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HistDigest {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named metrics.
///
/// Handles returned by [`Registry::counter`] / [`gauge`](Registry::gauge)
/// / [`histogram`](Registry::histogram) are `Arc`s; hot paths should
/// resolve once and reuse the handle rather than re-looking-up per event.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.lock().unwrap();
        g.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.inner.lock().unwrap();
        g.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.inner.lock().unwrap();
        g.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Fold every metric of `other` into this registry: counters and
    /// gauges add, histograms merge bucket-wise ([`Histogram::merge_from`]).
    ///
    /// This is how the parallel experiment runner combines per-trial
    /// metric arenas after the worker barrier. Counter/histogram
    /// addition commutes, so the merged totals equal a serial run's
    /// regardless of worker interleaving; gauges are summed as deltas
    /// (a trial's net queue-depth change), which is likewise
    /// order-independent. Callers that want a deterministic snapshot
    /// should still merge in trial-ordinal order — that also pins the
    /// order in which previously-unseen metric *names* are registered.
    pub fn merge_from(&self, other: &Registry) {
        let theirs = other.inner.lock().unwrap();
        for (name, c) in &theirs.counters {
            self.counter(name).add(c.get());
        }
        for (name, g) in &theirs.gauges {
            self.gauge(name).add(g.get());
        }
        for (name, h) in &theirs.histograms {
            self.histogram(name).merge_from(h);
        }
    }

    /// A deterministic JSON snapshot of every metric.
    pub fn snapshot(&self) -> JsonValue {
        let g = self.inner.lock().unwrap();
        let mut counters = JsonValue::obj();
        for (k, c) in &g.counters {
            counters.set(k, c.get());
        }
        let mut gauges = JsonValue::obj();
        for (k, c) in &g.gauges {
            gauges.set(k, c.get());
        }
        let mut histograms = JsonValue::obj();
        for (k, h) in &g.histograms {
            histograms.set(k, h.to_json());
        }
        let mut v = JsonValue::obj();
        v.set("counters", counters);
        v.set("gauges", gauges);
        v.set("histograms", histograms);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_tracks_both_directions() {
        let g = Gauge::default();
        g.add(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_boundaries_are_exact_below_cutover() {
        for v in 0..LINEAR_CUTOVER {
            let i = bucket_index(v);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_mid(i), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_lower_bounds_consistent() {
        let mut last = 0usize;
        let mut v = 1u64;
        while v < (1u64 << 43) {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(bucket_lower(i) <= v || v >= (1u64 << MAX_EXP) * 2);
            if i + 1 < BUCKET_COUNT && v < (1u64 << MAX_EXP) {
                assert!(
                    v < bucket_lower(i + 1),
                    "v {v} above bucket {i} upper bound"
                );
            }
            last = i;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn bucket_relative_width_is_small() {
        // Above the cutover, bucket width / lower bound ≤ 1/64.
        for idx in LINEAR_CUTOVER as usize..BUCKET_COUNT - 1 {
            let lo = bucket_lower(idx);
            let hi = bucket_lower(idx + 1);
            assert!(hi > lo);
            assert!((hi - lo) as f64 / lo as f64 <= 1.0 / 32.0, "idx {idx}");
        }
    }

    #[test]
    fn quantiles_hit_known_distribution() {
        let h = Histogram::default();
        for ms in 1..=1000u64 {
            h.observe_us(ms * 1000);
        }
        let p50 = h.quantile_us(0.5).unwrap() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.02, "{p50}");
        let p99 = h.quantile_us(0.99).unwrap() as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.02, "{p99}");
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn observe_secs_21s_median_within_tolerance() {
        // The Table 5 acceptance bar: a 21 s detection time must survive
        // bucketing within well under 5 %.
        let h = Histogram::default();
        for _ in 0..50 {
            h.observe_secs(21.03);
        }
        let m = h.median_secs().unwrap();
        assert!((m - 21.03).abs() / 21.03 < 0.02, "{m}");
    }

    #[test]
    fn huge_values_clamp_to_terminal_bucket() {
        let h = Histogram::default();
        h.observe_us(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(0.5).is_some());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), None, "q={q}");
        }
        assert!(h.median_secs().is_none());
    }

    #[test]
    fn single_sample_every_quantile_lands_in_its_bucket() {
        for sample in [0u64, 1, 63, 64, 65, 1_000_000] {
            let h = Histogram::default();
            h.observe_us(sample);
            let p0 = h.quantile_us(0.0).unwrap();
            let p50 = h.quantile_us(0.5).unwrap();
            let p100 = h.quantile_us(1.0).unwrap();
            assert_eq!(p0, p50, "sample={sample}");
            assert_eq!(p50, p100, "sample={sample}");
            // The representative value stays within bucket resolution of
            // the sample (log-linear buckets: < ~2% above the linear
            // cutover, exact below it).
            let err = (p50 as f64 - sample as f64).abs() / (sample.max(1) as f64);
            assert!(err < 0.05, "sample={sample} rep={p50}");
        }
    }

    #[test]
    fn quantiles_are_monotone_under_adversarial_boundaries() {
        // Samples straddling the linear/log cutover and power-of-two
        // bucket edges — the spots where a bucketed quantile could
        // invert if bucket selection and representatives disagreed.
        let h = Histogram::default();
        for s in [
            0u64,
            1,
            62,
            63,
            64,
            65,
            127,
            128,
            129,
            255,
            256,
            1 << 20,
            (1 << 20) + 1,
            (1 << 42),
            u64::MAX,
        ] {
            h.observe_us(s);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile_us(q).unwrap();
            assert!(v >= prev, "q={q}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn histogram_merge_is_exact_and_commutative() {
        let a = Histogram::default();
        let b = Histogram::default();
        let reference = Histogram::default();
        for v in [0u64, 1, 63, 64, 1_000, 1_000_000] {
            a.observe_us(v);
            reference.observe_us(v);
        }
        for v in [5u64, 70, 21_030_000] {
            b.observe_us(v);
            reference.observe_us(v);
        }
        // Merge a←b and, separately, b←a: identical totals either way.
        let a2 = Histogram::default();
        a2.merge_from(&b);
        a2.merge_from(&a);
        a.merge_from(&b);
        for h in [&a, &a2] {
            assert_eq!(h.count(), reference.count());
            assert_eq!(h.sum_us(), reference.sum_us());
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.quantile_us(q), reference.quantile_us(q), "q={q}");
            }
        }
    }

    #[test]
    fn merging_empty_histogram_keeps_min_max_intact() {
        let h = Histogram::default();
        h.observe_us(500);
        h.merge_from(&Histogram::default());
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.0), h.quantile_us(1.0));
    }

    #[test]
    fn quantile_accessors_cover_empty_and_single_bucket_edges() {
        // Empty: every accessor declines.
        let h = Histogram::default();
        assert_eq!(h.p50_us(), None);
        assert_eq!(h.p90_us(), None);
        assert_eq!(h.p99_us(), None);
        assert_eq!(h.mean_us(), None);
        // Single bucket: every quantile is that bucket's representative.
        h.observe_us(42);
        assert_eq!(h.p50_us(), Some(42));
        assert_eq!(h.p90_us(), Some(42));
        assert_eq!(h.p99_us(), Some(42));
        assert_eq!(h.mean_us(), Some(42.0));
        // Many samples in one (sub-cutover, exact) bucket: still exact.
        for _ in 0..99 {
            h.observe_us(42);
        }
        assert_eq!(h.p99_us(), Some(42));
    }

    #[test]
    fn drain_window_summarizes_then_resets() {
        let h = Histogram::default();
        assert!(h.drain_window().is_none(), "empty window drains to None");
        for v in [100u64, 200, 300] {
            h.observe_us(v);
        }
        let d = h.drain_window().expect("samples present");
        assert_eq!(d.count, 3);
        assert_eq!(d.sum_us, 600);
        assert_eq!(d.min_us, 100);
        assert_eq!(d.max_us, 300);
        assert!(d.p50_us >= 190 && d.p50_us <= 210, "{}", d.p50_us);
        // Fully reset: the next window starts from nothing.
        assert_eq!(h.count(), 0);
        assert!(h.drain_window().is_none());
        h.observe_us(7);
        let d2 = h.drain_window().unwrap();
        assert_eq!((d2.count, d2.min_us, d2.max_us), (1, 7, 7));
    }

    #[test]
    fn registry_merge_matches_serial_reference() {
        let serial = Registry::new();
        let part1 = Registry::new();
        let part2 = Registry::new();
        for (r, n) in [(&part1, 3u64), (&part2, 7u64)] {
            r.counter("ingest").add(n);
            r.gauge("depth").add(n as i64 - 4);
            r.histogram("lat").observe_us(n * 100);
        }
        for n in [3u64, 7] {
            serial.counter("ingest").add(n);
            serial.gauge("depth").add(n as i64 - 4);
            serial.histogram("lat").observe_us(n * 100);
        }
        let merged = Registry::new();
        merged.merge_from(&part1);
        merged.merge_from(&part2);
        assert_eq!(
            merged.snapshot().to_string_pretty(),
            serial.snapshot().to_string_pretty()
        );
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let r = Registry::new();
        r.counter("zeta").add(2);
        r.counter("alpha").inc();
        r.gauge("depth").set(7);
        r.histogram("lat").observe_us(1500);
        let a = r.snapshot().to_string_compact();
        let b = r.snapshot().to_string_compact();
        assert_eq!(a, b);
        assert!(a.find("alpha").unwrap() < a.find("zeta").unwrap());
    }
}
