//! Structured events and spans.
//!
//! An [`Event`] is a named point (or, with a duration, a completed
//! span) plus a small bag of typed fields. Events flow to whatever
//! [`Sink`](crate::sink::Sink) the current context has installed; with
//! the default null sink the emit path is a single virtual call that
//! immediately returns.
//!
//! When a [`crate::trace`] frame is active, every emission is annotated
//! with causal identity: point events carry the active span's ids (they
//! happen *inside* it); span events allocate a fresh child span id under
//! the active frame, so each completed region is its own tree node.

use crate::json::JsonValue;
use crate::scope;
use crate::trace::{self, TraceCtx};

/// A structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timestamp in µs from the context clock (virtual time in the
    /// simulation, wall time in the real proxy).
    pub ts_us: u64,
    /// Event name, dot-separated by convention (`simnet.run_until`).
    pub name: String,
    /// For span-end events: how long the region took, µs.
    pub dur_us: Option<u64>,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(&'static str, JsonValue)>,
    /// Causal identity, when emitted inside an active trace frame.
    pub trace: Option<TraceCtx>,
}

impl Event {
    /// A bare point event (no fields, no trace) — test/bench helper.
    pub fn point(name: &str, ts_us: u64) -> Event {
        Event {
            ts_us,
            name: name.to_string(),
            dur_us: None,
            fields: Vec::new(),
            trace: None,
        }
    }

    /// Serialize as a single JSON object (one JSONL line). Trace and
    /// span ids are fixed-width hex strings: a JSON number is an f64
    /// and cannot carry 64 bits exactly.
    pub fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::obj();
        v.set("ts_us", self.ts_us);
        v.set("event", self.name.as_str());
        if let Some(d) = self.dur_us {
            v.set("dur_us", d);
        }
        if let Some(t) = &self.trace {
            v.set("trace", t.trace.to_hex());
            v.set("span", t.span.to_hex());
            if let Some(p) = t.parent {
                v.set("parent", p.to_hex());
            }
        }
        if !self.fields.is_empty() {
            let mut f = JsonValue::obj();
            for (k, val) in &self.fields {
                f.set(k, val.clone());
            }
            v.set("fields", f);
        }
        v
    }
}

/// Emit a point event with fields through the current context.
pub fn event(name: &str, fields: &[(&'static str, JsonValue)]) {
    let ctx = scope::current();
    if !ctx.sink.enabled() {
        return;
    }
    ctx.sink.record(&Event {
        ts_us: ctx.clock.now_us(),
        name: name.to_string(),
        dur_us: None,
        fields: fields.to_vec(),
        trace: trace::active(),
    });
}

/// Emit a completed span whose duration was measured externally — the
/// simulation path, where elapsed time is virtual and computed by the
/// caller rather than observed on a clock. Timestamped at the context
/// clock's *current* time; see [`span_completed_at`] for explicit
/// waterfall placement.
pub fn span_completed(name: &str, dur_us: u64, fields: &[(&'static str, JsonValue)]) {
    let ctx = scope::current();
    if !ctx.sink.enabled() {
        return;
    }
    ctx.sink.record(&Event {
        ts_us: ctx.clock.now_us(),
        name: name.to_string(),
        dur_us: Some(dur_us),
        fields: fields.to_vec(),
        trace: trace::next_span().or_else(trace::active),
    });
}

/// Emit a completed span at an explicit absolute start time (virtual
/// µs) — how simulation code places spans on a fetch's waterfall.
pub fn span_completed_at(
    name: &str,
    start_us: u64,
    dur_us: u64,
    fields: &[(&'static str, JsonValue)],
) {
    let ctx = scope::current();
    if !ctx.sink.enabled() {
        return;
    }
    ctx.sink.record(&Event {
        ts_us: start_us,
        name: name.to_string(),
        dur_us: Some(dur_us),
        fields: fields.to_vec(),
        trace: trace::next_span().or_else(trace::active),
    });
}

/// Open a span measured on the context clock; the guard emits a
/// span-end event when dropped. Suits the real proxy (wall clock) and
/// any region whose clock advances while it runs. Inside an active
/// trace the guard opens a child frame, so events emitted while it is
/// open are parented under it.
pub fn span(name: &str) -> SpanGuard {
    let ctx = scope::current();
    let active = ctx.sink.enabled();
    let frame = if active { Some(trace::child()) } else { None };
    SpanGuard {
        name: name.to_string(),
        start_us: if active { ctx.clock.now_us() } else { 0 },
        active,
        fields: Vec::new(),
        frame,
    }
}

/// An open span; emits on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    start_us: u64,
    active: bool,
    fields: Vec<(&'static str, JsonValue)>,
    // Child trace frame held open for the span's extent (None when the
    // sink is disabled; inert when no trace is active).
    frame: Option<trace::ChildScope>,
}

impl SpanGuard {
    /// Attach a field to the span-end event.
    pub fn field(&mut self, key: &'static str, v: impl Into<JsonValue>) {
        if self.active {
            self.fields.push((key, v.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let ctx = scope::current();
        let now = ctx.clock.now_us();
        ctx.sink.record(&Event {
            ts_us: self.start_us,
            name: std::mem::take(&mut self.name),
            dur_us: Some(now.saturating_sub(self.start_us)),
            fields: std::mem::take(&mut self.fields),
            trace: self.frame.as_ref().and_then(|f| f.ctx()),
        });
        // The child frame pops after the event is recorded (fields drop
        // in declaration order, after this body).
    }
}

/// Emit a human-facing progress line. Suppressed entirely below
/// verbosity 1, so experiment stdout stays machine-parseable; at
/// verbosity ≥ 1 it goes to stderr *and* to the sink as a structured
/// `progress` event.
pub fn progress(msg: &str) {
    let ctx = scope::current();
    if ctx.verbosity >= 1 {
        eprintln!("[csaw] {msg}");
    }
    if ctx.sink.enabled() {
        ctx.sink.record(&Event {
            ts_us: ctx.clock.now_us(),
            name: "progress".to_string(),
            dur_us: None,
            fields: vec![("msg", JsonValue::from(msg))],
            trace: trace::active(),
        });
    }
}

/// Emit a point event: `event!("name", key = value, ...)`.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event::event($name, &[$((stringify!($k), $crate::json::JsonValue::from($v))),*])
    };
}

/// Emit an externally-timed span: `span_us!("name", dur_us, key = value, ...)`.
#[macro_export]
macro_rules! span_us {
    ($name:expr, $dur:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event::span_completed(
            $name,
            $dur,
            &[$((stringify!($k), $crate::json::JsonValue::from($v))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{install, ObsCtx};
    use crate::sink::RingSink;
    use std::sync::Arc;

    #[test]
    fn events_carry_clock_time_and_fields() {
        let ring = Arc::new(RingSink::new(16));
        let ctx = Arc::new(ObsCtx::new().with_sink(ring.clone()));
        let _g = install(ctx.clone());
        ctx.manual_clock().unwrap().set_us(42);
        crate::event!("test.hello", n = 3u64, who = "world");
        let evs = ring.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].ts_us, 42);
        assert_eq!(evs[0].name, "test.hello");
        assert_eq!(evs[0].fields[0], ("n", JsonValue::Num(3.0)));
        assert_eq!(evs[0].fields[1].1.as_str(), Some("world"));
        assert_eq!(evs[0].trace, None, "no trace active");
    }

    #[test]
    fn span_guard_measures_on_the_context_clock() {
        let ring = Arc::new(RingSink::new(16));
        let ctx = Arc::new(ObsCtx::new().with_sink(ring.clone()));
        let _g = install(ctx.clone());
        ctx.manual_clock().unwrap().set_us(100);
        {
            let mut s = span("region");
            s.field("k", 1u64);
            ctx.manual_clock().unwrap().set_us(350);
        }
        let evs = ring.drain();
        assert_eq!(evs[0].dur_us, Some(250));
        assert_eq!(evs[0].ts_us, 100);
    }

    #[test]
    fn jsonl_shape() {
        let e = Event {
            ts_us: 7,
            name: "x".into(),
            dur_us: Some(3),
            fields: vec![("a", JsonValue::from(1u64))],
            trace: None,
        };
        assert_eq!(
            e.to_json().to_string_compact(),
            r#"{"dur_us":3,"event":"x","fields":{"a":1},"ts_us":7}"#
        );
    }

    #[test]
    fn traced_emissions_form_a_tree() {
        let ring = Arc::new(RingSink::new(16));
        let ctx = Arc::new(ObsCtx::new().with_sink(ring.clone()));
        let _g = install(ctx);
        let root = crate::trace::fetch_root(1, 0, 0);
        let root_span = root.ctx().span;
        // A point event belongs to the root span.
        crate::event!("note");
        // A span event is a fresh child of the root.
        span_completed("stage", 5, &[]);
        // A guard opens a child frame: events inside it are its children.
        {
            let _s = span("outer");
            crate::event!("inner.note");
        }
        drop(root);
        let evs = ring.drain();
        assert_eq!(evs.len(), 4);
        let point = &evs[0];
        assert_eq!(point.trace.unwrap().span, root_span);
        let stage = &evs[1];
        assert_eq!(stage.trace.unwrap().parent, Some(root_span));
        assert_ne!(stage.trace.unwrap().span, root_span);
        // Drop order: inner.note first, then the outer guard's span-end.
        let inner = &evs[2];
        let outer = &evs[3];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.trace.unwrap().parent, Some(root_span));
        assert_eq!(
            inner.trace.unwrap().span,
            outer.trace.unwrap().span,
            "point inside the guard is attributed to the guard's span"
        );
    }

    #[test]
    fn traced_json_carries_hex_ids() {
        let ring = Arc::new(RingSink::new(4));
        let ctx = Arc::new(ObsCtx::new().with_sink(ring.clone()));
        let _g = install(ctx);
        let _root = crate::trace::fetch_root(2, 1, 0);
        span_completed_at("stage", 10, 3, &[]);
        let evs = ring.drain();
        let j = evs[0].to_json();
        let trace_hex = j.get("trace").and_then(|v| v.as_str()).unwrap();
        assert_eq!(trace_hex.len(), 16);
        assert!(j.get("span").is_some());
        assert!(j.get("parent").is_some());
        assert_eq!(j.get("ts_us").and_then(|v| v.as_u64()), Some(10));
    }
}
