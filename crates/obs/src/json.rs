//! A small, deterministic JSON value type with a writer and a
//! recursive-descent parser.
//!
//! The observability layer (and the wire formats built on top of it)
//! must be bit-reproducible: two identical runs have to serialize to
//! byte-identical text. That rules out hash-map key order, so objects
//! are backed by [`BTreeMap`] and always serialize with sorted keys.
//! Floats serialize via Rust's shortest-roundtrip formatting, which is
//! stable for a given value.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`; integers up to 2^53 roundtrip
    /// exactly, which covers every counter this crate emits. Values
    /// that exceed that (saturated counters) are clamped on write.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with deterministically-ordered keys.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// An empty object.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(BTreeMap::new())
    }

    /// Insert a key into an object value (no-op on non-objects).
    pub fn set(&mut self, key: &str, v: impl Into<JsonValue>) {
        if let JsonValue::Obj(m) = self {
            m.insert(key.to_string(), v.into());
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize to a compact string (no whitespace, sorted keys).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serialize to a pretty-printed string (2-space indent, sorted keys).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document. The whole input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Num(n as f64)
    }
}
impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Num(n as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_value(v: &JsonValue, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Num(n) => write_number(*n, out),
        JsonValue::Str(s) => write_string(s, out),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        JsonValue::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !map.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp to null-adjacent sentinels.
        out.push_str(if n.is_nan() {
            "0"
        } else if n > 0.0 {
            "1.7976931348623157e308"
        } else {
            "-1.7976931348623157e308"
        });
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &'static str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("bad number"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("bad fraction"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("bad exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("unparseable number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).ok_or(self.err("bad codepoint"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or(self.err("bad codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("bad \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let mut v = JsonValue::obj();
        v.set("b", 2u64);
        v.set("a", "x\"y\n");
        v.set(
            "c",
            vec![JsonValue::Null, JsonValue::Bool(true), JsonValue::Num(1.5)],
        );
        let s = v.to_string_compact();
        // Keys sorted deterministically.
        assert_eq!(s, r#"{"a":"x\"y\n","b":2,"c":[null,true,1.5]}"#);
        assert_eq!(JsonValue::parse(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "01x",
            "{}extra",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v = JsonValue::parse(r#"[-1.5e3, 0, 42, "A😀"]"#).unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(-1500.0));
        assert_eq!(a[2].as_u64(), Some(42));
        assert_eq!(a[3].as_str(), Some("A😀"));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let s = "[".repeat(1000) + &"]".repeat(1000);
        assert!(JsonValue::parse(&s).is_err());
    }

    #[test]
    fn integers_stay_integral_in_output() {
        assert_eq!(JsonValue::Num(3.0).to_string_compact(), "3");
        assert_eq!(JsonValue::Num(3.25).to_string_compact(), "3.25");
    }
}
