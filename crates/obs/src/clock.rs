//! Time sources for telemetry.
//!
//! Everything in the simulation runs on virtual time, so trace
//! timestamps must come from the simulation clock — never the OS — or
//! traces stop being bit-reproducible. The real proxy, which has no
//! virtual clock, falls back to a monotonic wall clock measured from
//! process start.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of "now", in microseconds.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time in microseconds. The epoch is source-defined
    /// (simulation start for virtual clocks, clock creation for wall
    /// clocks).
    fn now_us(&self) -> u64;

    /// `self` as `&dyn Any`, so callers can recover the concrete clock
    /// (e.g. to drive a [`ManualClock`]).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A manually-driven clock: the simulation advances it explicitly.
/// This is the default, so telemetry is deterministic unless a caller
/// opts into wall time.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move the clock to `us` (monotone: earlier values are ignored).
    pub fn set_us(&self, us: u64) {
        self.0.fetch_max(us, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Monotonic wall-clock time since the clock was created. For the real
/// proxy only — never use in simulation paths.
#[derive(Debug)]
pub struct WallClock(Instant);

impl Default for WallClock {
    fn default() -> Self {
        WallClock(Instant::now())
    }
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock::default()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.0.elapsed().as_micros() as u64
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_monotone() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.set_us(100);
        c.set_us(40); // ignored: time does not go backwards
        assert_eq!(c.now_us(), 100);
    }

    #[test]
    fn wall_clock_advances() {
        let c = WallClock::new();
        let a = c.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now_us() > a);
    }
}
