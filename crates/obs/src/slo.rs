//! A declarative, deterministic SLO engine over telemetry frames.
//!
//! Rules are evaluated by the [`Timeline`](crate::timeseries::Timeline)
//! at every window close, against the retained frame history (oldest
//! first, the just-closed frame last). Evaluation is a pure function of
//! the frames, so an offline consumer (`health-report`) re-running the
//! same rules over exported frames reaches byte-identical verdicts.
//!
//! Rule kinds cover the health properties the C-Saw pipeline cares
//! about (§6–7 of the paper: coverage, freshness, delivery under
//! churn):
//!
//! - [`SloKind::DeliveryRatioMin`] — multi-window burn check: everything
//!   queued up to `lag` windows ago must be delivered by now. Two rules
//!   with different lags give the classic fast/slow burn pair.
//! - [`SloKind::QuantileMaxUs`] — a histogram family's per-window p99
//!   must stay under a ceiling (per label: staleness per AS, detection
//!   latency).
//! - [`SloKind::GaugeLastMax`] — a gauge family must not sit above a
//!   ceiling at `windows` consecutive window closes (queue backlogs are
//!   allowed to spike, not to persist).
//! - [`SloKind::CoverageMin`] — when a counter family shows activity
//!   globally, every label ever seen must reach a per-window minimum
//!   (an AS going dark while others report is a violation; a globally
//!   idle window is not).

use crate::event::Event;
use crate::json::JsonValue;
use crate::timeseries::{key_in_family, Frame};

/// What a rule checks. See the module docs for the semantics of each.
#[derive(Debug, Clone)]
pub enum SloKind {
    /// `sum(good over all frames) / sum(total over frames[..len-lag])`
    /// must be at least `min`. Skipped until `lag + 1` frames exist or
    /// while the denominator is zero.
    DeliveryRatioMin {
        /// Counter family counting completions (e.g. reports posted).
        good: String,
        /// Counter family counting intake (e.g. reports queued).
        total: String,
        /// Minimum acceptable ratio.
        min: f64,
        /// Settling allowance, in windows: intake newer than this is
        /// not yet expected to have completed.
        lag: usize,
    },
    /// Every labelled series of `family` with samples in the newest
    /// frame must have `p99 <= max_us`.
    QuantileMaxUs {
        /// Histogram family (label-expanded).
        family: String,
        /// Ceiling on the per-window p99, µs.
        max_us: u64,
    },
    /// A labelled gauge must not read above `max` at the close of
    /// `windows` consecutive windows (see [`SloRule::windows`]).
    GaugeLastMax {
        /// Gauge family (label-expanded).
        family: String,
        /// Highest acceptable close-of-window level.
        max: i64,
    },
    /// When `family` has any activity in the newest window, every label
    /// seen anywhere in the retained history must count at least `min`
    /// in that window.
    CoverageMin {
        /// Counter family (label-expanded).
        family: String,
        /// Per-label minimum per active window.
        min: u64,
    },
}

/// A named rule: a kind plus the number of windows it looks at.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Stable rule name (what `health-report --expect` matches).
    pub name: String,
    /// Windows of history the rule needs before it can fire. For
    /// [`SloKind::GaugeLastMax`] this is the consecutive-breach length;
    /// for [`SloKind::DeliveryRatioMin`] it is `lag + 1`.
    pub windows: usize,
    /// The check itself.
    pub kind: SloKind,
}

/// One rule breach at one window close.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the breached rule.
    pub rule: String,
    /// The concrete series key that breached (or the family for
    /// aggregate rules).
    pub series: String,
    /// Start of the window that closed, µs.
    pub win_start_us: u64,
    /// End of the window that closed, µs.
    pub win_end_us: u64,
    /// Windows of history the verdict used.
    pub windows: usize,
    /// Observed value (ratio, level, or µs depending on the rule).
    pub value: f64,
    /// The configured threshold it crossed.
    pub threshold: f64,
    /// Run label of the closing frame.
    pub run: String,
}

/// The event name violations are emitted under.
pub const VIOLATION_EVENT: &str = "slo.violation";

impl Violation {
    /// The violation as an `slo.violation` [`Event`].
    pub fn to_event(&self) -> Event {
        Event {
            ts_us: self.win_end_us,
            name: VIOLATION_EVENT.to_string(),
            dur_us: None,
            fields: vec![
                ("rule", JsonValue::from(self.rule.as_str())),
                ("series", JsonValue::from(self.series.as_str())),
                ("win_start_us", JsonValue::from(self.win_start_us)),
                ("win_end_us", JsonValue::from(self.win_end_us)),
                ("windows", JsonValue::from(self.windows)),
                ("value", JsonValue::from(self.value)),
                ("threshold", JsonValue::from(self.threshold)),
                ("run", JsonValue::from(self.run.as_str())),
            ],
            trace: None,
        }
    }

    /// Rebuild a violation from an event's JSON form. Returns `None`
    /// for lines that are not `slo.violation` events.
    pub fn parse(line: &JsonValue) -> Option<Violation> {
        if line.get("event").and_then(JsonValue::as_str) != Some(VIOLATION_EVENT) {
            return None;
        }
        let f = line.get("fields")?;
        let s = |k: &str| f.get(k).and_then(JsonValue::as_str).map(str::to_string);
        Some(Violation {
            rule: s("rule")?,
            series: s("series")?,
            win_start_us: f.get("win_start_us").and_then(JsonValue::as_u64)?,
            win_end_us: f.get("win_end_us").and_then(JsonValue::as_u64)?,
            windows: f.get("windows").and_then(JsonValue::as_u64)? as usize,
            value: f.get("value").and_then(JsonValue::as_f64)?,
            threshold: f.get("threshold").and_then(JsonValue::as_f64)?,
            run: s("run").unwrap_or_default(),
        })
    }
}

/// An ordered set of SLO rules.
#[derive(Debug, Clone, Default)]
pub struct SloSet {
    /// The rules, evaluated in order at every window close.
    pub rules: Vec<SloRule>,
}

impl SloSet {
    /// No rules at all (timelines that only export frames).
    pub fn empty() -> SloSet {
        SloSet::default()
    }

    /// The C-Saw pipeline rule set: report delivery (fast + slow burn),
    /// per-AS blocked-list staleness, persistent client queue backlog,
    /// per-AS measurement coverage, and detection-latency p99. The
    /// series names match what `csaw`/`csaw-store` instrumentation
    /// exports (see EXPERIMENTS.md "Health timelines").
    pub fn csaw_default() -> SloSet {
        SloSet {
            rules: vec![
                SloRule {
                    name: "report.delivery.fast".into(),
                    windows: 2,
                    kind: SloKind::DeliveryRatioMin {
                        good: "client.reports.posted".into(),
                        total: "client.reports.queued".into(),
                        min: 0.90,
                        lag: 1,
                    },
                },
                SloRule {
                    name: "report.delivery.slow".into(),
                    windows: 4,
                    kind: SloKind::DeliveryRatioMin {
                        good: "client.reports.posted".into(),
                        total: "client.reports.queued".into(),
                        min: 0.99,
                        lag: 3,
                    },
                },
                SloRule {
                    name: "store.staleness.p99".into(),
                    windows: 1,
                    kind: SloKind::QuantileMaxUs {
                        family: "store.ingest.staleness_us".into(),
                        max_us: 4 * 3_600 * 1_000_000, // 4 virtual hours
                    },
                },
                SloRule {
                    name: "client.queue.drain".into(),
                    windows: 2,
                    kind: SloKind::GaugeLastMax {
                        family: "client.report_queue_depth".into(),
                        max: 0,
                    },
                },
                SloRule {
                    name: "client.coverage".into(),
                    windows: 1,
                    kind: SloKind::CoverageMin {
                        family: "client.fetches".into(),
                        min: 1,
                    },
                },
                SloRule {
                    name: "client.detect.p99".into(),
                    windows: 1,
                    kind: SloKind::QuantileMaxUs {
                        family: "client.detect_latency_us".into(),
                        max_us: 60 * 1_000_000, // Table 5 ladders stay under a minute
                    },
                },
            ],
        }
    }

    /// The ingest-harness rule set (`exp_scale`): no client-side series
    /// exist there, so only store-side coverage is checked.
    pub fn ingest_default() -> SloSet {
        SloSet {
            rules: vec![SloRule {
                name: "store.ingest.coverage".into(),
                windows: 1,
                kind: SloKind::CoverageMin {
                    family: "store.ingest.accepted".into(),
                    min: 1,
                },
            }],
        }
    }

    /// Evaluate every rule against `frames` (oldest first; the newest
    /// frame is the one that just closed). Pure: same frames, same
    /// verdicts. Returns the violations attributable to the newest
    /// frame only — callers invoke this once per close.
    pub fn evaluate(&self, frames: &[Frame]) -> Vec<Violation> {
        let Some(newest) = frames.last() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for rule in &self.rules {
            match &rule.kind {
                SloKind::DeliveryRatioMin {
                    good,
                    total,
                    min,
                    lag,
                } => {
                    if frames.len() < lag + 1 {
                        continue;
                    }
                    let good_sum: u64 = frames.iter().map(|f| f.family_count(good)).sum();
                    let total_sum: u64 = frames[..frames.len() - lag]
                        .iter()
                        .map(|f| f.family_count(total))
                        .sum();
                    if total_sum == 0 {
                        continue;
                    }
                    let ratio = good_sum as f64 / total_sum as f64;
                    if ratio < *min {
                        out.push(violation(rule, good, newest, ratio, *min));
                    }
                }
                SloKind::QuantileMaxUs { family, max_us } => {
                    for (key, sample) in &newest.series {
                        if !key_in_family(key, family) {
                            continue;
                        }
                        if let Some(p99) = sample.p99_us() {
                            if p99 > *max_us {
                                out.push(violation(rule, key, newest, p99 as f64, *max_us as f64));
                            }
                        }
                    }
                }
                SloKind::GaugeLastMax { family, max } => {
                    let w = rule.windows.max(1);
                    if frames.len() < w {
                        continue;
                    }
                    let tail = &frames[frames.len() - w..];
                    for (key, sample) in &newest.series {
                        if !key_in_family(key, family) {
                            continue;
                        }
                        let Some(last) = sample.gauge_last() else {
                            continue;
                        };
                        let breached_throughout = tail.iter().all(|f| {
                            f.series
                                .get(key)
                                .and_then(|s| s.gauge_last())
                                .is_some_and(|v| v > *max)
                        });
                        if breached_throughout {
                            out.push(violation(rule, key, newest, last as f64, *max as f64));
                        }
                    }
                }
                SloKind::CoverageMin { family, min } => {
                    if newest.family_count(family) == 0 {
                        continue; // globally idle window: nothing to cover
                    }
                    // Labels ever seen across the retained history.
                    let mut labels: Vec<&str> = Vec::new();
                    for f in frames {
                        for key in f.series.keys() {
                            if key_in_family(key, family) && !labels.contains(&key.as_str()) {
                                labels.push(key);
                            }
                        }
                    }
                    for key in labels {
                        let n = newest.series.get(key).and_then(|s| s.count()).unwrap_or(0);
                        if n < *min {
                            out.push(violation(rule, key, newest, n as f64, *min as f64));
                        }
                    }
                }
            }
        }
        out
    }
}

fn violation(
    rule: &SloRule,
    series: &str,
    newest: &Frame,
    value: f64,
    threshold: f64,
) -> Violation {
    Violation {
        rule: rule.name.clone(),
        series: series.to_string(),
        win_start_us: newest.start_us,
        win_end_us: newest.end_us,
        windows: rule.windows,
        value,
        threshold,
        run: newest.run.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::SeriesSample;

    fn frame(start_us: u64, end_us: u64, series: &[(&str, SeriesSample)]) -> Frame {
        Frame {
            start_us,
            end_us,
            run: "test".into(),
            skipped: 0,
            series: series
                .iter()
                .map(|(k, s)| (k.to_string(), s.clone()))
                .collect(),
        }
    }

    fn delivery_rule(min: f64, lag: usize) -> SloSet {
        SloSet {
            rules: vec![SloRule {
                name: "d".into(),
                windows: lag + 1,
                kind: SloKind::DeliveryRatioMin {
                    good: "posted".into(),
                    total: "queued".into(),
                    min,
                    lag,
                },
            }],
        }
    }

    #[test]
    fn empty_history_yields_no_verdicts() {
        assert!(SloSet::csaw_default().evaluate(&[]).is_empty());
    }

    #[test]
    fn delivery_skips_until_lag_then_fires_on_shortfall() {
        let s = delivery_rule(0.9, 1);
        let w0 = frame(
            0,
            100,
            &[
                ("queued", SeriesSample::Count(50)),
                ("posted", SeriesSample::Count(5)),
            ],
        );
        // One frame: lag 1 needs two.
        assert!(s.evaluate(std::slice::from_ref(&w0)).is_empty());
        let w1 = frame(
            100,
            200,
            &[
                ("queued", SeriesSample::Count(0)),
                ("posted", SeriesSample::Count(10)),
            ],
        );
        let v = s.evaluate(&[w0.clone(), w1.clone()]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "d");
        assert!((v[0].value - 15.0 / 50.0).abs() < 1e-9);
        assert_eq!(v[0].win_start_us, 100);
        // Full recovery: 50 posted by the next close.
        let w2 = frame(200, 300, &[("posted", SeriesSample::Count(35))]);
        assert!(s.evaluate(&[w0, w1, w2]).is_empty());
    }

    #[test]
    fn delivery_skips_with_zero_denominator() {
        let s = delivery_rule(0.9, 1);
        let quiet = frame(0, 100, &[("posted", SeriesSample::Count(0))]);
        let quiet2 = frame(100, 200, &[("posted", SeriesSample::Count(0))]);
        assert!(s.evaluate(&[quiet, quiet2]).is_empty());
    }

    fn digest(count: u64, p99_us: u64) -> SeriesSample {
        SeriesSample::Digest {
            count,
            sum_us: p99_us * count,
            min_us: p99_us,
            max_us: p99_us,
            p50_us: p99_us,
            p90_us: p99_us,
            p99_us,
        }
    }

    #[test]
    fn quantile_rule_fires_per_label() {
        let s = SloSet {
            rules: vec![SloRule {
                name: "stale".into(),
                windows: 1,
                kind: SloKind::QuantileMaxUs {
                    family: "stale_us".into(),
                    max_us: 1_000,
                },
            }],
        };
        let f = frame(
            0,
            100,
            &[
                ("stale_us{asn=1}", digest(4, 500)),
                ("stale_us{asn=2}", digest(4, 5_000)),
                ("stale_us{asn=3}", digest(0, 9_999)), // empty: no verdict
                ("other_us{asn=9}", digest(1, 9_999)), // different family
            ],
        );
        let v = s.evaluate(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].series, "stale_us{asn=2}");
        assert_eq!(v[0].value, 5_000.0);
    }

    #[test]
    fn gauge_rule_requires_consecutive_breaches() {
        let s = SloSet {
            rules: vec![SloRule {
                name: "drain".into(),
                windows: 2,
                kind: SloKind::GaugeLastMax {
                    family: "depth".into(),
                    max: 0,
                },
            }],
        };
        let spike = frame(
            0,
            100,
            &[(
                "depth{c=a}",
                SeriesSample::Gauge {
                    last: 7,
                    min: 0,
                    max: 7,
                },
            )],
        );
        // One breached close is a spike, not a violation.
        assert!(s.evaluate(std::slice::from_ref(&spike)).is_empty());
        let drained = frame(
            100,
            200,
            &[(
                "depth{c=a}",
                SeriesSample::Gauge {
                    last: 0,
                    min: 0,
                    max: 7,
                },
            )],
        );
        assert!(s.evaluate(&[spike.clone(), drained]).is_empty());
        let still_backed_up = frame(
            100,
            200,
            &[(
                "depth{c=a}",
                SeriesSample::Gauge {
                    last: 3,
                    min: 3,
                    max: 7,
                },
            )],
        );
        let v = s.evaluate(&[spike, still_backed_up]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].value, 3.0);
    }

    #[test]
    fn coverage_fires_for_dark_labels_only_when_globally_active() {
        let s = SloSet {
            rules: vec![SloRule {
                name: "cov".into(),
                windows: 1,
                kind: SloKind::CoverageMin {
                    family: "fetches".into(),
                    min: 1,
                },
            }],
        };
        let both = frame(
            0,
            100,
            &[
                ("fetches{asn=1}", SeriesSample::Count(3)),
                ("fetches{asn=2}", SeriesSample::Count(2)),
            ],
        );
        assert!(s.evaluate(std::slice::from_ref(&both)).is_empty());
        // AS 2 goes dark while AS 1 keeps measuring.
        let dark = frame(
            100,
            200,
            &[
                ("fetches{asn=1}", SeriesSample::Count(3)),
                ("fetches{asn=2}", SeriesSample::Count(0)),
            ],
        );
        let v = s.evaluate(&[both.clone(), dark]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].series, "fetches{asn=2}");
        // Globally idle window: not a coverage violation.
        let idle = frame(
            200,
            300,
            &[
                ("fetches{asn=1}", SeriesSample::Count(0)),
                ("fetches{asn=2}", SeriesSample::Count(0)),
            ],
        );
        assert!(s.evaluate(&[both, idle]).is_empty());
    }

    #[test]
    fn violation_event_roundtrips() {
        let v = Violation {
            rule: "r".into(),
            series: "s{a=1}".into(),
            win_start_us: 100,
            win_end_us: 200,
            windows: 2,
            value: 0.5,
            threshold: 0.9,
            run: "rate=0.6".into(),
        };
        let parsed = Violation::parse(&v.to_event().to_json()).unwrap();
        assert_eq!(parsed, v);
        assert!(Violation::parse(&Event::point("x", 1).to_json()).is_none());
    }
}
