//! Lock contention attribution: timed `Mutex`/`RwLock` wrappers.
//!
//! The scaling question this answers: when `exp_scale` goes flat from
//! 1→8 threads, is the store lock-bound or compute-bound? Nothing in a
//! metrics snapshot could say, because wait time inside
//! `std::sync::Mutex::lock` is invisible. [`TimedMutex`] and
//! [`TimedRwLock`] make it visible: every acquisition records wait time
//! (request → grant) and hold time (grant → release) into per-lock-family
//! histograms, plus acquisition/contended counters:
//!
//! - `lock.<family>.acquires` / `lock.<family>.contended` (counters)
//! - `lock.<family>.wait_us` / `lock.<family>.hold_us` (histograms)
//!
//! `TimedRwLock` splits into `<family>.read` and `<family>.write`
//! sub-families, because read-side and write-side contention mean
//! different remedies (sharding vs. caching).
//!
//! ## Cost model
//!
//! The wrappers resolve their stats handles **at construction** from the
//! current [`crate::scope`]. When the scope's [`PerfMode`] is `Off`
//! (the default), the handle is `None` and every lock/read/write call is
//! a pure delegate to the underlying `std` primitive — no atomics, no
//! clock reads, no registry traffic. This is what keeps the existing
//! determinism contract intact: a run that never opts in produces
//! byte-identical snapshots with or without this module compiled in.
//!
//! ## Time sources
//!
//! "Virtual-or-monotonic" per the perf-attribution design:
//!
//! - [`PerfMode::Virtual`] reads the scope's clock. Under a
//!   [`crate::clock::ManualClock`] waits are (deterministically) zero —
//!   useful because acquisition *counts* are still exact, and the whole
//!   snapshot stays byte-identical across `--jobs 1` vs `--jobs 8`.
//! - [`PerfMode::Monotonic`] reads `Instant`, giving real wait/hold
//!   microseconds for wall-clock experiments like `exp_scale`.
//!
//! Poisoning panics, matching the `lock().unwrap()` discipline the
//! callers already had; writers that must survive panics should keep
//! using `std` primitives with explicit recovery.

use crate::clock::Clock;
use crate::metrics::{Counter, Histogram};
use crate::scope;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::Instant;

/// How the perf-attribution layer measures lock wait/hold time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PerfMode {
    /// No attribution: timed locks are pure delegates (default).
    #[default]
    Off,
    /// Timestamps from the scope's (virtual) clock: acquisition counts
    /// are exact and deterministic; waits read as zero under a manual
    /// clock that nobody advances mid-acquisition.
    Virtual,
    /// Timestamps from a monotonic wall clock: real wait/hold
    /// microseconds, at the cost of run-to-run variance.
    Monotonic,
}

impl PerfMode {
    /// Parse a CLI spelling: `off`, `virtual`, or `wall`/`monotonic`.
    pub fn parse(s: &str) -> Option<PerfMode> {
        match s {
            "off" => Some(PerfMode::Off),
            "virtual" => Some(PerfMode::Virtual),
            "wall" | "monotonic" => Some(PerfMode::Monotonic),
            _ => None,
        }
    }

    pub(crate) fn from_u8(v: u8) -> PerfMode {
        match v {
            1 => PerfMode::Virtual,
            2 => PerfMode::Monotonic,
            _ => PerfMode::Off,
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            PerfMode::Off => 0,
            PerfMode::Virtual => 1,
            PerfMode::Monotonic => 2,
        }
    }
}

/// Where a [`LockStats`] family reads "now" from.
#[derive(Debug, Clone)]
enum TimeSource {
    /// The scope's clock (virtual time).
    Virtual(Arc<dyn Clock>),
    /// Monotonic microseconds since the stats family was resolved.
    Monotonic(Instant),
}

impl TimeSource {
    fn now_us(&self) -> u64 {
        match self {
            TimeSource::Virtual(c) => c.now_us(),
            TimeSource::Monotonic(epoch) => epoch.elapsed().as_micros() as u64,
        }
    }
}

/// Pre-resolved metric handles for one lock family
/// (`lock.<family>.{acquires,contended,wait_us,hold_us}`).
///
/// One `LockStats` can be shared by many locks — all sixteen store
/// shards report into a single `store.shard.records` family, which is
/// what an attribution table wants (per-shard split is a cardinality
/// explosion with no extra signal).
#[derive(Debug)]
pub struct LockStats {
    acquires: Arc<Counter>,
    contended: Arc<Counter>,
    wait_us: Arc<Histogram>,
    hold_us: Arc<Histogram>,
    time: TimeSource,
}

impl LockStats {
    /// Resolve the family `lock.<name>.*` against the current scope's
    /// registry, or `None` when the scope's [`PerfMode`] is `Off`.
    ///
    /// Call at construction time and share the result (`Arc`) across
    /// related locks; resolving is the only registry interaction.
    pub fn resolve(name: &str) -> Option<Arc<LockStats>> {
        let ctx = scope::current();
        let time = match ctx.perf_mode() {
            PerfMode::Off => return None,
            PerfMode::Virtual => TimeSource::Virtual(ctx.clock.clone()),
            PerfMode::Monotonic => TimeSource::Monotonic(Instant::now()),
        };
        let reg = &ctx.registry;
        Some(Arc::new(LockStats {
            acquires: reg.counter(&format!("lock.{name}.acquires")),
            contended: reg.counter(&format!("lock.{name}.contended")),
            wait_us: reg.histogram(&format!("lock.{name}.wait_us")),
            hold_us: reg.histogram(&format!("lock.{name}.hold_us")),
            time,
        }))
    }

    /// Acquisition requested; returns the request timestamp.
    fn begin(&self) -> u64 {
        self.acquires.inc();
        self.time.now_us()
    }

    /// Acquisition granted; records wait and returns the grant
    /// timestamp (for hold-time measurement at release).
    fn granted(&self, requested_us: u64, contended: bool) -> u64 {
        let now = self.time.now_us();
        if contended {
            self.contended.inc();
        }
        self.wait_us.observe_us(now.saturating_sub(requested_us));
        now
    }

    /// Guard dropped; records hold time.
    fn released(&self, granted_us: u64) {
        self.hold_us
            .observe_us(self.time.now_us().saturating_sub(granted_us));
    }
}

/// Read/write stats pair for a [`TimedRwLock`] family.
#[derive(Debug)]
pub struct RwStats {
    read: Arc<LockStats>,
    write: Arc<LockStats>,
}

impl RwStats {
    /// Resolve `lock.<name>.read.*` and `lock.<name>.write.*`, or
    /// `None` when the current scope's [`PerfMode`] is `Off`.
    pub fn resolve(name: &str) -> Option<Arc<RwStats>> {
        let read = LockStats::resolve(&format!("{name}.read"))?;
        let write = LockStats::resolve(&format!("{name}.write"))
            .expect("perf mode changed between resolves");
        Some(Arc::new(RwStats { read, write }))
    }
}

/// Hold-time recorder embedded in guards: records into `stats` when the
/// guard drops.
#[derive(Debug)]
struct HoldTimer {
    stats: Arc<LockStats>,
    granted_us: u64,
}

impl Drop for HoldTimer {
    fn drop(&mut self) {
        self.stats.released(self.granted_us);
    }
}

/// A `Mutex<T>` that attributes wait and hold time to a lock family.
///
/// With stats disabled (the default [`PerfMode::Off`]) this is a
/// zero-overhead newtype over `std::sync::Mutex`.
#[derive(Debug)]
pub struct TimedMutex<T> {
    stats: Option<Arc<LockStats>>,
    inner: Mutex<T>,
}

impl<T> TimedMutex<T> {
    /// A mutex in the family `lock.<name>.*`, resolved against the
    /// current scope (no-op family if perf mode is off).
    pub fn new(name: &str, value: T) -> TimedMutex<T> {
        TimedMutex::with_stats(LockStats::resolve(name), value)
    }

    /// A mutex sharing an already-resolved stats family (or none).
    pub fn with_stats(stats: Option<Arc<LockStats>>, value: T) -> TimedMutex<T> {
        TimedMutex {
            stats,
            inner: Mutex::new(value),
        }
    }

    /// Acquire, recording wait/hold when stats are attached.
    ///
    /// # Panics
    /// If the lock is poisoned — same contract as the
    /// `lock().unwrap()` call sites this replaces.
    pub fn lock(&self) -> TimedMutexGuard<'_, T> {
        let Some(stats) = &self.stats else {
            return TimedMutexGuard {
                guard: self.inner.lock().expect("timed mutex poisoned"),
                _hold: None,
            };
        };
        let requested = stats.begin();
        let (guard, contended) = match self.inner.try_lock() {
            Ok(g) => (g, false),
            Err(TryLockError::WouldBlock) => {
                (self.inner.lock().expect("timed mutex poisoned"), true)
            }
            Err(TryLockError::Poisoned(e)) => panic!("timed mutex poisoned: {e}"),
        };
        let granted = stats.granted(requested, contended);
        TimedMutexGuard {
            guard,
            _hold: Some(HoldTimer {
                stats: Arc::clone(stats),
                granted_us: granted,
            }),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("timed mutex poisoned")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("timed mutex poisoned")
    }
}

/// Guard for [`TimedMutex`]; records hold time on drop.
#[derive(Debug)]
pub struct TimedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _hold: Option<HoldTimer>,
}

impl<T> Deref for TimedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TimedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// An `RwLock<T>` that attributes wait and hold time, split into
/// `.read` and `.write` sub-families.
#[derive(Debug)]
pub struct TimedRwLock<T> {
    stats: Option<Arc<RwStats>>,
    inner: RwLock<T>,
}

impl<T> TimedRwLock<T> {
    /// An rwlock in the families `lock.<name>.read.*` /
    /// `lock.<name>.write.*`, resolved against the current scope.
    pub fn new(name: &str, value: T) -> TimedRwLock<T> {
        TimedRwLock::with_stats(RwStats::resolve(name), value)
    }

    /// An rwlock sharing an already-resolved stats pair (or none).
    pub fn with_stats(stats: Option<Arc<RwStats>>, value: T) -> TimedRwLock<T> {
        TimedRwLock {
            stats,
            inner: RwLock::new(value),
        }
    }

    /// Shared acquire, recording into the `.read` sub-family.
    ///
    /// # Panics
    /// If the lock is poisoned.
    pub fn read(&self) -> TimedReadGuard<'_, T> {
        let Some(stats) = &self.stats else {
            return TimedReadGuard {
                guard: self.inner.read().expect("timed rwlock poisoned"),
                _hold: None,
            };
        };
        let requested = stats.read.begin();
        let (guard, contended) = match self.inner.try_read() {
            Ok(g) => (g, false),
            Err(TryLockError::WouldBlock) => {
                (self.inner.read().expect("timed rwlock poisoned"), true)
            }
            Err(TryLockError::Poisoned(e)) => panic!("timed rwlock poisoned: {e}"),
        };
        let granted = stats.read.granted(requested, contended);
        TimedReadGuard {
            guard,
            _hold: Some(HoldTimer {
                stats: Arc::clone(&stats.read),
                granted_us: granted,
            }),
        }
    }

    /// Exclusive acquire, recording into the `.write` sub-family.
    ///
    /// # Panics
    /// If the lock is poisoned.
    pub fn write(&self) -> TimedWriteGuard<'_, T> {
        let Some(stats) = &self.stats else {
            return TimedWriteGuard {
                guard: self.inner.write().expect("timed rwlock poisoned"),
                _hold: None,
            };
        };
        let requested = stats.write.begin();
        let (guard, contended) = match self.inner.try_write() {
            Ok(g) => (g, false),
            Err(TryLockError::WouldBlock) => {
                (self.inner.write().expect("timed rwlock poisoned"), true)
            }
            Err(TryLockError::Poisoned(e)) => panic!("timed rwlock poisoned: {e}"),
        };
        let granted = stats.write.granted(requested, contended);
        TimedWriteGuard {
            guard,
            _hold: Some(HoldTimer {
                stats: Arc::clone(&stats.write),
                granted_us: granted,
            }),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("timed rwlock poisoned")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("timed rwlock poisoned")
    }
}

/// Shared guard for [`TimedRwLock`]; records read hold time on drop.
#[derive(Debug)]
pub struct TimedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _hold: Option<HoldTimer>,
}

impl<T> Deref for TimedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard for [`TimedRwLock`]; records write hold time on drop.
#[derive(Debug)]
pub struct TimedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _hold: Option<HoldTimer>,
}

impl<T> Deref for TimedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TimedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{install, ObsCtx};
    use std::sync::Arc;

    #[test]
    fn off_mode_registers_nothing() {
        let ctx = Arc::new(ObsCtx::new());
        let _g = install(ctx.clone());
        let m = TimedMutex::new("test.m", 0u32);
        *m.lock() += 1;
        let rw = TimedRwLock::new("test.rw", 0u32);
        *rw.write() += 1;
        assert_eq!(*rw.read(), 1);
        let snap = ctx.registry.snapshot().to_string_compact();
        assert!(
            !snap.contains("lock."),
            "perf off must leave zero lock metrics, got {snap}"
        );
    }

    #[test]
    fn virtual_mode_counts_deterministically() {
        let ctx = Arc::new(ObsCtx::new().with_perf(PerfMode::Virtual));
        let _g = install(ctx.clone());
        let m = TimedMutex::new("test.m", 0u32);
        for _ in 0..5 {
            *m.lock() += 1;
        }
        assert_eq!(ctx.registry.counter("lock.test.m.acquires").get(), 5);
        assert_eq!(ctx.registry.counter("lock.test.m.contended").get(), 0);
        assert_eq!(ctx.registry.histogram("lock.test.m.wait_us").count(), 5);
        assert_eq!(ctx.registry.histogram("lock.test.m.wait_us").sum_us(), 0);
        assert_eq!(ctx.registry.histogram("lock.test.m.hold_us").count(), 5);
    }

    #[test]
    fn rwlock_splits_read_and_write_families() {
        let ctx = Arc::new(ObsCtx::new().with_perf(PerfMode::Virtual));
        let _g = install(ctx.clone());
        let rw = TimedRwLock::new("test.rw", 0u32);
        *rw.write() += 1;
        for _ in 0..3 {
            let _ = *rw.read();
        }
        assert_eq!(ctx.registry.counter("lock.test.rw.read.acquires").get(), 3);
        assert_eq!(ctx.registry.counter("lock.test.rw.write.acquires").get(), 1);
    }

    #[test]
    fn shared_stats_aggregate_across_locks() {
        let ctx = Arc::new(ObsCtx::new().with_perf(PerfMode::Virtual));
        let _g = install(ctx.clone());
        let stats = LockStats::resolve("test.shared");
        let locks: Vec<TimedMutex<u32>> = (0..4)
            .map(|_| TimedMutex::with_stats(stats.clone(), 0))
            .collect();
        for l in &locks {
            *l.lock() += 1;
        }
        assert_eq!(ctx.registry.counter("lock.test.shared.acquires").get(), 4);
    }

    #[test]
    fn monotonic_mode_sees_contention() {
        let ctx = Arc::new(ObsCtx::new().with_perf(PerfMode::Monotonic));
        let m = {
            let _g = install(ctx.clone());
            Arc::new(TimedMutex::new("test.busy", ()))
        };
        let held = m.lock();
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            let _g = m2.lock();
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(held);
        waiter.join().unwrap();
        assert_eq!(ctx.registry.counter("lock.test.busy.contended").get(), 1);
        assert!(
            ctx.registry.histogram("lock.test.busy.wait_us").sum_us() > 0,
            "a blocked waiter must record nonzero wait"
        );
    }

    #[test]
    fn perf_mode_parse() {
        assert_eq!(PerfMode::parse("off"), Some(PerfMode::Off));
        assert_eq!(PerfMode::parse("virtual"), Some(PerfMode::Virtual));
        assert_eq!(PerfMode::parse("wall"), Some(PerfMode::Monotonic));
        assert_eq!(PerfMode::parse("monotonic"), Some(PerfMode::Monotonic));
        assert_eq!(PerfMode::parse("bogus"), None);
    }
}
