//! Pluggable event sinks: null (default), bounded ring buffer, JSONL
//! writer, and human-readable stderr.

use crate::event::Event;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// Where events go.
pub trait Sink: Send + Sync + std::fmt::Debug {
    /// Record one event.
    fn record(&self, event: &Event);
    /// Cheap gate: `false` lets emit sites skip building the event at
    /// all. The null sink returns `false`.
    fn enabled(&self) -> bool {
        true
    }
    /// Flush buffered output (JSONL).
    fn flush(&self) {}
}

/// Discards everything. The default sink; emit sites short-circuit on
/// [`Sink::enabled`], so instrumentation overhead is one virtual call.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps the last `cap` events in memory — the flight recorder tests
/// and in-process consumers use.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `cap` events (oldest evicted first).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Take every buffered event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().unwrap().drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Event) {
        let mut b = self.buf.lock().unwrap();
        if b.len() == self.cap {
            b.pop_front();
        }
        b.push_back(event.clone());
    }
}

/// Writes each event as one JSON line to any writer (usually a file
/// opened by the `--trace-out` flag).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// A sink writing JSONL to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// A sink writing JSONL to a freshly-created file.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(f))))
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut g = self.out.lock().unwrap();
        let _ = writeln!(g, "{}", event.to_json().to_string_compact());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

/// Human-readable lines on stderr — the `-v` debugging sink. Stdout is
/// never touched, so experiment output stays machine-parseable.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        let mut line = format!("[{:>12}us] {}", event.ts_us, event.name);
        if let Some(d) = event.dur_us {
            line.push_str(&format!(" ({d}us)"));
        }
        for (k, v) in &event.fields {
            line.push_str(&format!(" {k}={}", v.to_string_compact()));
        }
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn ev(name: &str, ts: u64) -> Event {
        Event {
            ts_us: ts,
            name: name.to_string(),
            dur_us: None,
            fields: vec![],
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn ring_evicts_oldest() {
        let r = RingSink::new(2);
        r.record(&ev("a", 1));
        r.record(&ev("b", 2));
        r.record(&ev("c", 3));
        let got: Vec<String> = r.drain().into_iter().map(|e| e.name).collect();
        assert_eq!(got, vec!["b", "c"]);
        assert!(r.is_empty());
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        // A tiny adapter so the test can read back what the sink wrote.
        struct Tee(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let s = JsonlSink::new(Box::new(Tee(shared.clone())));
        s.record(&Event {
            ts_us: 5,
            name: "x".into(),
            dur_us: None,
            fields: vec![("k", JsonValue::from("v"))],
        });
        s.record(&ev("y", 6));
        s.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            JsonValue::parse(l).expect("each line is standalone JSON");
        }
    }
}
