//! Pluggable event sinks: null (default), bounded ring buffer,
//! unbounded replay buffer (the parallel runner's per-trial arena),
//! JSONL writer, and human-readable stderr. The Chrome-trace and
//! flight-recorder sinks live in [`crate::chrome`] and
//! [`crate::flight`].
//!
//! Telemetry must never propagate a panic: every internal lock is
//! recovered on poison (`lock_recover`) — an event buffer left by a
//! panicking thread is still perfectly good data.

use crate::event::Event;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Lock a sink-internal mutex, recovering the guard if a panicking
/// thread poisoned it. Sinks hold only event buffers behind their
/// locks; a poisoned buffer is merely "written by a thread that later
/// panicked", which is fine for telemetry. Recovery is not silent: each
/// one bumps `obs.sink.poisoned` in the current scope's registry, so a
/// crashed writer thread shows up in the metrics snapshot.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        // Counter-only: emitting an event here could recurse into the
        // very sink whose lock just failed.
        crate::scope::current()
            .registry
            .counter("obs.sink.poisoned")
            .inc();
        poisoned.into_inner()
    })
}

/// Where events go.
pub trait Sink: Send + Sync + std::fmt::Debug {
    /// Record one event.
    fn record(&self, event: &Event);
    /// Cheap gate: `false` lets emit sites skip building the event at
    /// all. The null sink returns `false`.
    fn enabled(&self) -> bool {
        true
    }
    /// Flush buffered output (JSONL, Chrome trace).
    fn flush(&self) {}
}

/// Discards everything. The default sink; emit sites short-circuit on
/// [`Sink::enabled`], so instrumentation overhead is one virtual call.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps the last `cap` events in memory — the in-process memory sink
/// tests and experiment consumers use. Bounded: when full, the oldest
/// event is dropped and [`RingSink::dropped_events`] counts it, so a
/// long `exp_scale` run cannot OOM through its sink.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `cap` events (oldest evicted first).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Take every buffered event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        lock_recover(&self.buf).drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock_recover(&self.buf).len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Event) {
        let mut b = lock_recover(&self.buf);
        if b.len() == self.cap {
            b.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        b.push_back(event.clone());
    }
}

/// Captures every event, unbounded and in emission order, for later
/// replay into another sink.
///
/// This is the per-trial event arena the parallel experiment runner
/// builds on: each trial records into its own `BufferSink`, and after
/// the worker barrier the runner replays the buffers into the real sink
/// in trial-ordinal order, so the merged stream is byte-identical to a
/// serial run no matter how the workers interleaved.
///
/// Unlike [`RingSink`] it never drops (a trial's trace must be
/// complete), and its [`Sink::enabled`] gate is fixed at construction:
/// pass the *parent* sink's enabled state so instrumented code inside
/// the trial skips event construction exactly when a serial run would
/// have.
#[derive(Debug)]
pub struct BufferSink {
    enabled: bool,
    buf: Mutex<Vec<Event>>,
}

impl BufferSink {
    /// A buffer whose emit gate mirrors `enabled` (the parent sink's
    /// [`Sink::enabled`] at trial start).
    pub fn new(enabled: bool) -> BufferSink {
        BufferSink {
            enabled,
            buf: Mutex::new(Vec::new()),
        }
    }

    /// Take every buffered event, in emission order.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *lock_recover(&self.buf))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock_recover(&self.buf).len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for BufferSink {
    fn record(&self, event: &Event) {
        if self.enabled {
            lock_recover(&self.buf).push(event.clone());
        }
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}

/// Writes each event as one JSON line to any writer (usually a file
/// opened by the `--trace-out` flag).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// A sink writing JSONL to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// A sink writing JSONL to a freshly-created file.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(f))))
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut g = lock_recover(&self.out);
        let _ = writeln!(g, "{}", event.to_json().to_string_compact());
    }

    fn flush(&self) {
        let _ = lock_recover(&self.out).flush();
    }
}

/// Human-readable lines on stderr — the `-v` debugging sink. Stdout is
/// never touched, so experiment output stays machine-parseable.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        let mut line = format!("[{:>12}us] {}", event.ts_us, event.name);
        if let Some(d) = event.dur_us {
            line.push_str(&format!(" ({d}us)"));
        }
        if let Some(t) = &event.trace {
            line.push_str(&format!(" trace={}", t.trace.to_hex()));
        }
        for (k, v) in &event.fields {
            line.push_str(&format!(" {k}={}", v.to_string_compact()));
        }
        eprintln!("{line}");
    }
}

/// Passes through only events whose name is in an allow-list — how
/// `--frames-out` captures `ts.frame`/`slo.violation` lines into their
/// own JSONL file while the main sink sees the full stream.
#[derive(Debug)]
pub struct FilterSink {
    names: Vec<&'static str>,
    inner: std::sync::Arc<dyn Sink>,
}

impl FilterSink {
    /// A sink forwarding to `inner` only events named in `names`.
    pub fn new(inner: std::sync::Arc<dyn Sink>, names: &[&'static str]) -> FilterSink {
        FilterSink {
            names: names.to_vec(),
            inner,
        }
    }
}

impl Sink for FilterSink {
    fn record(&self, event: &Event) {
        if self.names.iter().any(|n| *n == event.name) {
            self.inner.record(event);
        }
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// Fan out every event to several sinks (e.g. a Chrome trace on disk
/// plus an in-memory flight recorder).
#[derive(Debug)]
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl TeeSink {
    /// A sink duplicating events into each of `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl Sink for TeeSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn ev(name: &str, ts: u64) -> Event {
        Event::point(name, ts)
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let r = RingSink::new(2);
        assert_eq!(r.capacity(), 2);
        r.record(&ev("a", 1));
        r.record(&ev("b", 2));
        assert_eq!(r.dropped_events(), 0);
        r.record(&ev("c", 3));
        assert_eq!(r.dropped_events(), 1);
        let got: Vec<String> = r.drain().into_iter().map(|e| e.name).collect();
        assert_eq!(got, vec!["b", "c"]);
        assert!(r.is_empty());
    }

    #[test]
    fn poisoned_ring_recovers_instead_of_panicking() {
        let ctx = std::sync::Arc::new(crate::scope::ObsCtx::new());
        let _scope = crate::scope::install(ctx.clone());
        let r = std::sync::Arc::new(RingSink::new(4));
        r.record(&ev("before", 1));
        // Poison the internal mutex: panic while holding the guard.
        let r2 = r.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _g = r2.buf.lock().unwrap();
            panic!("poison");
        }));
        // Telemetry keeps working on the poisoned lock...
        r.record(&ev("after", 2));
        let names: Vec<String> = r.drain().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["before", "after"]);
        // ...and every recovery is visible in the metrics snapshot
        // (record + drain above = two recovered acquisitions).
        assert_eq!(ctx.registry.counter("obs.sink.poisoned").get(), 2);
    }

    #[test]
    fn buffer_sink_mirrors_parent_gate_and_replays_in_order() {
        let on = BufferSink::new(true);
        assert!(on.enabled());
        on.record(&ev("a", 1));
        on.record(&ev("b", 2));
        assert_eq!(on.len(), 2);
        let names: Vec<String> = on.take().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(on.is_empty());

        let off = BufferSink::new(false);
        assert!(!off.enabled());
        off.record(&ev("dropped", 3));
        assert!(off.take().is_empty(), "disabled buffer must not retain");
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        // A tiny adapter so the test can read back what the sink wrote.
        struct Tee(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let s = JsonlSink::new(Box::new(Tee(shared.clone())));
        s.record(&Event {
            ts_us: 5,
            name: "x".into(),
            dur_us: None,
            fields: vec![("k", JsonValue::from("v"))],
            trace: None,
        });
        s.record(&ev("y", 6));
        s.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            JsonValue::parse(l).expect("each line is standalone JSON");
        }
    }

    #[test]
    fn filter_passes_only_allowed_names() {
        let inner = std::sync::Arc::new(RingSink::new(8));
        let f = FilterSink::new(inner.clone(), &["ts.frame"]);
        assert!(f.enabled());
        f.record(&ev("ts.frame", 1));
        f.record(&ev("other", 2));
        f.record(&ev("ts.frame", 3));
        let names: Vec<String> = inner.drain().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["ts.frame", "ts.frame"]);
    }

    #[test]
    fn tee_duplicates_and_flushes() {
        let a = std::sync::Arc::new(RingSink::new(4));
        let b = std::sync::Arc::new(RingSink::new(4));
        let t = TeeSink::new(vec![a.clone(), b.clone()]);
        assert!(t.enabled());
        t.record(&ev("x", 1));
        t.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
