//! Context plumbing: which registry/sink/clock/verbosity instrumented
//! code should use.
//!
//! Contexts resolve in three steps: the innermost thread-local scope
//! (installed with [`install`]), then the process-global context (set
//! with [`set_global`]), then a lazily-created default (null sink,
//! manual clock at zero, fresh registry).
//!
//! Thread-local scoping is what makes the determinism tests sound:
//! `cargo test` runs tests on many threads, and two same-seed
//! experiment runs must not bleed metrics into each other's
//! registries.

use crate::clock::{Clock, ManualClock};
use crate::contention::PerfMode;
use crate::metrics::Registry;
use crate::sink::{NullSink, Sink};
use crate::timeseries::Timeline;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// A bundle of observability state: metrics registry, event sink,
/// clock, and verbosity level.
#[derive(Debug)]
pub struct ObsCtx {
    /// Metrics land here.
    pub registry: Arc<Registry>,
    /// Events land here.
    pub sink: Arc<dyn Sink>,
    /// Timestamps come from here.
    pub clock: Arc<dyn Clock>,
    /// 0 = silent (default), ≥ 1 = progress lines on stderr.
    pub verbosity: u8,
    /// Windowed time-series timeline (disabled until configured; see
    /// [`Timeline::configure`]). Interior-mutable like `perf`, so a CLI
    /// can enable windowing after the context is installed.
    pub timeline: Arc<Timeline>,
    /// Perf-attribution mode ([`PerfMode`] as `u8`). Interior-mutable so
    /// a CLI can flip it on after the context is installed.
    perf: AtomicU8,
}

impl Default for ObsCtx {
    fn default() -> Self {
        ObsCtx {
            registry: Arc::new(Registry::new()),
            sink: Arc::new(NullSink),
            clock: Arc::new(ManualClock::new()),
            verbosity: 0,
            timeline: Arc::new(Timeline::new()),
            perf: AtomicU8::new(PerfMode::Off.as_u8()),
        }
    }
}

impl ObsCtx {
    /// A fresh context: new registry, null sink, manual clock at zero.
    pub fn new() -> ObsCtx {
        ObsCtx::default()
    }

    /// Replace the sink.
    pub fn with_sink(mut self, sink: Arc<dyn Sink>) -> ObsCtx {
        self.sink = sink;
        self
    }

    /// Replace the clock.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> ObsCtx {
        self.clock = clock;
        self
    }

    /// Set the verbosity level.
    pub fn with_verbosity(mut self, v: u8) -> ObsCtx {
        self.verbosity = v;
        self
    }

    /// Set the perf-attribution mode (builder form).
    pub fn with_perf(self, mode: PerfMode) -> ObsCtx {
        self.set_perf_mode(mode);
        self
    }

    /// Replace the timeline (builder form) — the trial runner hands
    /// each trial a fresh timeline inheriting the parent configuration.
    pub fn with_timeline(mut self, timeline: Arc<Timeline>) -> ObsCtx {
        self.timeline = timeline;
        self
    }

    /// Advance the timeline to virtual time `now_us`, closing any
    /// crossed windows into this context's sink. No-op while the
    /// timeline is unconfigured.
    pub fn advance_timeline(&self, now_us: u64) {
        self.timeline.advance_to(now_us, self.sink.as_ref());
    }

    /// Close the timeline's open window into this context's sink (end
    /// of run).
    pub fn flush_timeline(&self) {
        self.timeline.flush(self.sink.as_ref());
    }

    /// Current perf-attribution mode. [`PerfMode::Off`] by default, so
    /// instrumented locks cost nothing unless a caller opts in.
    pub fn perf_mode(&self) -> PerfMode {
        PerfMode::from_u8(self.perf.load(Ordering::Relaxed))
    }

    /// Flip the perf-attribution mode. Only locks *constructed after*
    /// the call observe the new mode — wrappers capture their stats
    /// handles at construction so the hot path never re-checks.
    pub fn set_perf_mode(&self, mode: PerfMode) {
        self.perf.store(mode.as_u8(), Ordering::Relaxed);
    }

    /// The clock, downcast to [`ManualClock`] if that is what it is —
    /// simulation drivers use this to advance virtual time.
    pub fn manual_clock(&self) -> Option<&ManualClock> {
        self.clock.as_any().downcast_ref::<ManualClock>()
    }
}

thread_local! {
    static SCOPES: RefCell<Vec<Arc<ObsCtx>>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<Arc<ObsCtx>> = OnceLock::new();

fn fallback() -> &'static Arc<ObsCtx> {
    static DEFAULT: OnceLock<Arc<ObsCtx>> = OnceLock::new();
    DEFAULT.get_or_init(|| Arc::new(ObsCtx::new()))
}

/// The innermost active context: thread-local scope, else global, else
/// the shared default.
pub fn current() -> Arc<ObsCtx> {
    SCOPES.with(|s| {
        if let Some(top) = s.borrow().last() {
            return top.clone();
        }
        GLOBAL.get().unwrap_or_else(fallback).clone()
    })
}

/// Install `ctx` for this thread until the returned guard drops.
#[must_use = "the scope ends when the guard drops"]
pub fn install(ctx: Arc<ObsCtx>) -> ScopeGuard {
    SCOPES.with(|s| s.borrow_mut().push(ctx));
    ScopeGuard { _priv: () }
}

/// Set the process-global context (used by multithreaded consumers like
/// the real proxy whose worker threads can't see a thread-local scope).
/// First caller wins; returns `false` if already set.
pub fn set_global(ctx: Arc<ObsCtx>) -> bool {
    GLOBAL.set(ctx).is_ok()
}

/// Pops the thread-local scope on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Arc::new(ObsCtx::new());
        let inner = Arc::new(ObsCtx::new());
        let g1 = install(outer.clone());
        assert!(Arc::ptr_eq(&current(), &outer));
        {
            let _g2 = install(inner.clone());
            assert!(Arc::ptr_eq(&current(), &inner));
        }
        assert!(Arc::ptr_eq(&current(), &outer));
        drop(g1);
        // Back to global/default — not one of ours.
        assert!(!Arc::ptr_eq(&current(), &outer));
        assert!(!Arc::ptr_eq(&current(), &inner));
    }

    #[test]
    fn scoped_registries_are_isolated() {
        let a = Arc::new(ObsCtx::new());
        let b = Arc::new(ObsCtx::new());
        {
            let _g = install(a.clone());
            current().registry.counter("x").add(5);
        }
        {
            let _g = install(b.clone());
            current().registry.counter("x").add(7);
        }
        assert_eq!(a.registry.counter("x").get(), 5);
        assert_eq!(b.registry.counter("x").get(), 7);
    }

    #[test]
    fn manual_clock_downcast() {
        let ctx = ObsCtx::new();
        assert!(ctx.manual_clock().is_some());
        let wall = ObsCtx::new().with_clock(Arc::new(crate::clock::WallClock::new()));
        assert!(wall.manual_clock().is_none());
    }
}
