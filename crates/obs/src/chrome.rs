//! Chrome/Perfetto `trace_event` export.
//!
//! [`ChromeTraceSink`] buffers events and, on [`Sink::flush`], writes a
//! complete Chrome trace JSON document (the `{"traceEvents": [...]}`
//! array-of-objects format `chrome://tracing` and Perfetto load):
//!
//! - span events (`dur_us: Some`) become `ph: "X"` complete slices;
//! - point events become `ph: "i"` thread-scoped instants;
//! - each *component* — the event-name prefix before the first `.`
//!   (`fetch`, `detect`, `circum`, `simnet`, `store`, ...) — gets its
//!   own track (`tid`), named via `ph: "M"` metadata records;
//! - causal identity (trace/span/parent, as fixed-width hex) and the
//!   event's fields ride in `args`.
//!
//! Output is deterministic: events are sorted by `(ts, arrival order)`,
//! tids are assigned in lexicographic component order at write time,
//! and all JSON maps are ordered. Two same-seed runs produce
//! byte-identical files.
//!
//! The buffer is bounded (drop-oldest, [`ChromeTraceSink::dropped_events`]),
//! so an unexpectedly chatty run degrades to a truncated trace instead
//! of unbounded memory growth.

use crate::event::Event;
use crate::json::JsonValue;
use crate::sink::{lock_recover, Sink};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default buffered-event capacity (~a few hundred MB worst case is
/// far above any exp_* run; exp_scale runs use `--trace-out` sparingly).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A sink that renders the buffered events as one Chrome trace JSON
/// document on flush (and again on drop, so a forgotten flush still
/// leaves a complete file).
#[derive(Debug)]
pub struct ChromeTraceSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
    out: Option<PathBuf>,
}

impl ChromeTraceSink {
    /// A sink writing to `path` on flush/drop, with the default buffer
    /// capacity. The file is created (and truncated) immediately so bad
    /// paths fail fast, like [`crate::sink::JsonlSink::create`].
    pub fn create(path: &std::path::Path) -> std::io::Result<ChromeTraceSink> {
        std::fs::File::create(path)?;
        Ok(ChromeTraceSink {
            cap: DEFAULT_CAPACITY,
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            out: Some(path.to_path_buf()),
        })
    }

    /// An in-memory sink (no file): render with
    /// [`ChromeTraceSink::render`]. `cap` bounds the buffer.
    pub fn in_memory(cap: usize) -> ChromeTraceSink {
        ChromeTraceSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            out: None,
        }
    }

    /// Override the buffer capacity.
    pub fn with_capacity(mut self, cap: usize) -> ChromeTraceSink {
        self.cap = cap.max(1);
        self
    }

    /// Events dropped because the buffer was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        lock_recover(&self.buf).len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The component (track) an event belongs to: the name prefix
    /// before the first `.`.
    fn component(name: &str) -> &str {
        name.split('.').next().unwrap_or(name)
    }

    /// Render the buffered events as a Chrome trace JSON document.
    pub fn render(&self) -> String {
        let events: Vec<Event> = lock_recover(&self.buf).iter().cloned().collect();
        render_chrome_trace(&events)
    }
}

/// Render `events` as a complete Chrome trace JSON document
/// (deterministic; see module docs for the mapping).
pub fn render_chrome_trace(events: &[Event]) -> String {
    // Stable sort by timestamp; arrival order breaks ties, which is
    // itself deterministic under the determinism contract.
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].ts_us);

    // Tracks in lexicographic component order.
    let tids: BTreeMap<String, u64> = events
        .iter()
        .map(|e| ChromeTraceSink::component(&e.name).to_string())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .zip(0u64..)
        .collect();

    let mut trace_events: Vec<JsonValue> = Vec::with_capacity(events.len() + tids.len() + 1);
    let meta = |name: &str, tid: Option<u64>, args: JsonValue| {
        let mut m = JsonValue::obj();
        m.set("ph", "M");
        m.set("pid", 1u64);
        if let Some(t) = tid {
            m.set("tid", t);
        }
        m.set("name", name);
        m.set("args", args);
        m
    };
    let mut pname = JsonValue::obj();
    pname.set("name", "csaw");
    trace_events.push(meta("process_name", None, pname));
    for (comp, tid) in &tids {
        let mut args = JsonValue::obj();
        args.set("name", comp.as_str());
        trace_events.push(meta("thread_name", Some(*tid), args));
        let mut sort = JsonValue::obj();
        sort.set("sort_index", *tid);
        trace_events.push(meta("thread_sort_index", Some(*tid), sort));
    }

    for &i in &order {
        let e = &events[i];
        let tid = tids[ChromeTraceSink::component(&e.name)];
        let mut v = JsonValue::obj();
        v.set("name", e.name.as_str());
        v.set("pid", 1u64);
        v.set("tid", tid);
        v.set("ts", e.ts_us);
        match e.dur_us {
            Some(d) => {
                v.set("ph", "X");
                v.set("dur", d);
            }
            None => {
                v.set("ph", "i");
                v.set("s", "t");
            }
        }
        let mut args = JsonValue::obj();
        if let Some(t) = &e.trace {
            args.set("trace", t.trace.to_hex());
            args.set("span", t.span.to_hex());
            if let Some(p) = t.parent {
                args.set("parent", p.to_hex());
            }
        }
        for (k, val) in &e.fields {
            args.set(k, val.clone());
        }
        v.set("args", args);
        trace_events.push(v);
    }

    let mut doc = JsonValue::obj();
    doc.set("displayTimeUnit", "ms");
    doc.set("traceEvents", JsonValue::Arr(trace_events));
    let mut s = doc.to_string_compact();
    s.push('\n');
    s
}

impl Sink for ChromeTraceSink {
    fn record(&self, event: &Event) {
        let mut b = lock_recover(&self.buf);
        if b.len() == self.cap {
            b.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        b.push_back(event.clone());
    }

    fn flush(&self) {
        if let Some(path) = &self.out {
            let _ = std::fs::write(path, self.render());
        }
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{install, ObsCtx};
    use std::sync::Arc;

    fn traced_events() -> Vec<Event> {
        let sink = Arc::new(ChromeTraceSink::in_memory(64));
        let ctx = Arc::new(ObsCtx::new().with_sink(sink.clone()));
        let _g = install(ctx);
        let root = crate::trace::fetch_root(1, 0, 100);
        crate::event::span_completed_at("fetch.detect", 100, 40, &[]);
        crate::event::span_completed_at("simnet.flow", 120, 10, &[]);
        crate::event!("store.note", n = 1u64);
        crate::trace::complete_active("fetch", 100, 90, &[("ok", JsonValue::from(true))]);
        drop(root);
        let events: Vec<Event> = lock_recover(&sink.buf).iter().cloned().collect();
        events
    }

    #[test]
    fn renders_valid_chrome_json_with_tracks() {
        let events = traced_events();
        let doc = render_chrome_trace(&events);
        let v = JsonValue::parse(&doc).expect("valid JSON");
        let te = v.get("traceEvents").unwrap();
        let JsonValue::Arr(items) = te else {
            panic!("traceEvents is an array")
        };
        // 1 process_name + 3 components (fetch, simnet, store) × 2 metadata
        // + 4 events.
        assert_eq!(items.len(), 1 + 3 * 2 + 4);
        let slices: Vec<&JsonValue> = items
            .iter()
            .filter(|i| i.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 3);
        for s in &slices {
            assert!(s.get("dur").is_some());
            assert!(s.get("args").unwrap().get("trace").is_some());
        }
        let instants: Vec<&JsonValue> = items
            .iter()
            .filter(|i| i.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 1);
        // Root slice has no parent; children do.
        let root = slices
            .iter()
            .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("fetch"))
            .unwrap();
        assert!(root.get("args").unwrap().get("parent").is_none());
        let child = slices
            .iter()
            .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("fetch.detect"))
            .unwrap();
        assert!(child.get("args").unwrap().get("parent").is_some());
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_chrome_trace(&traced_events());
        let b = render_chrome_trace(&traced_events());
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let s = ChromeTraceSink::in_memory(2);
        for i in 0..5 {
            s.record(&Event::point("x", i));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped_events(), 3);
    }

    #[test]
    fn create_writes_file_on_flush() {
        let dir = std::env::temp_dir().join("csaw-obs-chrome-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let s = ChromeTraceSink::create(&path).unwrap();
        s.record(&Event::point("a.b", 1));
        s.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        JsonValue::parse(&text).expect("valid JSON on disk");
        std::fs::remove_file(&path).ok();
    }
}
