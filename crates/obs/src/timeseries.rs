//! Windowed time-series telemetry driven by the virtual clock.
//!
//! The metrics [`Registry`](crate::metrics::Registry) answers "what
//! happened over the whole run"; this module answers "what happened in
//! each window of virtual time". A [`Timeline`] owns a set of named
//! series — windowed counters, gauges, and histogram digests, with
//! low-cardinality dimensional labels (per-AS, per-shard, per-method) —
//! and closes a fixed-width window every time the virtual clock crosses
//! a window boundary. Closing a window drains every series into a
//! [`Frame`], emits the frame as an ordinary `ts.frame` [`Event`] into
//! the current sink (one JSONL line with `--frames-out`), evaluates the
//! configured SLO rules ([`crate::slo`]) against the retained frame
//! history, and emits any violations as `slo.violation` events.
//!
//! Determinism contract: frames are a pure function of the recorded
//! samples and the clock — two same-seed runs emit byte-identical frame
//! streams. The parallel trial runner preserves this by giving each
//! trial its own `Timeline` (inherited configuration, fresh state) and
//! replaying trial event buffers in ordinal order.
//!
//! Hot-path cost matches the registry: handle resolution takes the
//! timeline mutex once per (name, labels); recording through a resolved
//! handle is atomics only.

use crate::event::Event;
use crate::json::JsonValue;
use crate::metrics::Histogram;
use crate::sink::{lock_recover, Sink};
use crate::slo::SloSet;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hard cap on distinct series per timeline. Beyond it, new (name,
/// labels) pairs all resolve to one shared `_overflow` counter so a
/// label-cardinality bug degrades telemetry instead of memory.
pub const MAX_SERIES: usize = 512;

/// Safety valve for huge clock jumps: at most this many window frames
/// are emitted per advance; further crossed windows are skipped (and
/// counted on the frame that follows the gap as `ts.windows_skipped`).
const MAX_FRAMES_PER_ADVANCE: u64 = 4096;

/// Fixed-window timeline configuration.
#[derive(Debug, Clone)]
pub struct WindowCfg {
    /// Window width in virtual µs. Zero disables the timeline.
    pub window_us: u64,
    /// Closed frames retained for SLO evaluation and postmortems.
    pub retain: usize,
    /// SLO rules evaluated at every window close.
    pub slos: Arc<SloSet>,
}

impl WindowCfg {
    /// A timeline of `secs`-wide windows with the given rules, keeping
    /// 64 frames of history.
    pub fn from_secs(secs: f64, slos: Arc<SloSet>) -> WindowCfg {
        WindowCfg {
            window_us: (secs.max(0.0) * 1e6).round() as u64,
            retain: 64,
            slos,
        }
    }
}

/// A windowed, saturating counter: drained to zero at window close.
#[derive(Debug, Default)]
pub struct TsCounter(AtomicU64);

impl TsCounter {
    /// Add `n` to the open window.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment the open window by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The open window's running total (tests/diagnostics).
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn drain(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A windowed gauge: tracks last/min/max per window, carrying the last
/// value forward so a series that goes quiet still reports its level.
#[derive(Debug)]
pub struct TsGauge {
    last: AtomicI64,
    min: AtomicI64,
    max: AtomicI64,
    /// Set once the gauge has ever been sampled; unsampled gauges are
    /// omitted from frames (no meaningful level to report).
    touched: AtomicBool,
}

impl Default for TsGauge {
    fn default() -> Self {
        TsGauge {
            last: AtomicI64::new(0),
            min: AtomicI64::new(i64::MAX),
            max: AtomicI64::new(i64::MIN),
            touched: AtomicBool::new(false),
        }
    }
}

impl TsGauge {
    /// Set the gauge level.
    pub fn set(&self, v: i64) {
        self.last.store(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.touched.store(true, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta` to the level.
    pub fn add(&self, delta: i64) {
        let v = self.last.fetch_add(delta, Ordering::Relaxed) + delta;
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.touched.store(true, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.last.load(Ordering::Relaxed)
    }

    fn drain(&self) -> Option<(i64, i64, i64)> {
        if !self.touched.load(Ordering::Relaxed) {
            return None;
        }
        let last = self.last.load(Ordering::Relaxed);
        let min = self.min.swap(last, Ordering::Relaxed);
        let max = self.max.swap(last, Ordering::Relaxed);
        // A quiet window after the first sample reports min = max = last.
        Some((last, min.min(last), max.max(last)))
    }
}

/// A windowed histogram: a full log-linear [`Histogram`] while the
/// window is open, drained to a quantile digest at close.
#[derive(Debug, Default)]
pub struct TsHist(Histogram);

impl TsHist {
    /// Record a value in microseconds into the open window.
    pub fn observe_us(&self, us: u64) {
        self.0.observe_us(us);
    }

    /// Record a value in seconds into the open window.
    pub fn observe_secs(&self, secs: f64) {
        self.0.observe_secs(secs);
    }

    /// Samples in the open window (tests/diagnostics).
    pub fn current_count(&self) -> u64 {
        self.0.count()
    }
}

/// One series' contribution to a closed window.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesSample {
    /// Events counted in the window (zero is reported: "nothing
    /// happened here" is exactly the signal coverage rules need).
    Count(u64),
    /// Gauge level: value at window close, window min, window max.
    Gauge {
        /// Level at window close.
        last: i64,
        /// Minimum level seen this window.
        min: i64,
        /// Maximum level seen this window.
        max: i64,
    },
    /// Histogram digest of the window's samples.
    Digest {
        /// Samples this window.
        count: u64,
        /// Sum of samples, µs.
        sum_us: u64,
        /// Smallest sample, µs.
        min_us: u64,
        /// Largest sample, µs.
        max_us: u64,
        /// Median, µs (bucket-resolution).
        p50_us: u64,
        /// 90th percentile, µs.
        p90_us: u64,
        /// 99th percentile, µs.
        p99_us: u64,
    },
}

impl SeriesSample {
    /// The sample as JSON. Counters serialize as `{"count":n}`, gauges
    /// add `"last"`, digests add `"p50_us"` — the keys are the type tag.
    pub fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::obj();
        match self {
            SeriesSample::Count(n) => v.set("count", *n),
            SeriesSample::Gauge { last, min, max } => {
                v.set("last", *last);
                v.set("min", *min);
                v.set("max", *max);
            }
            SeriesSample::Digest {
                count,
                sum_us,
                min_us,
                max_us,
                p50_us,
                p90_us,
                p99_us,
            } => {
                v.set("count", *count);
                v.set("sum_us", *sum_us);
                v.set("min_us", *min_us);
                v.set("max_us", *max_us);
                v.set("p50_us", *p50_us);
                v.set("p90_us", *p90_us);
                v.set("p99_us", *p99_us);
            }
        }
        v
    }

    /// Parse a sample back from its JSON form (see [`Self::to_json`]).
    pub fn parse(v: &JsonValue) -> Option<SeriesSample> {
        let u = |k: &str| v.get(k).and_then(JsonValue::as_u64);
        let i = |k: &str| v.get(k).and_then(JsonValue::as_f64).map(|f| f as i64);
        if v.get("p50_us").is_some() {
            return Some(SeriesSample::Digest {
                count: u("count")?,
                sum_us: u("sum_us")?,
                min_us: u("min_us")?,
                max_us: u("max_us")?,
                p50_us: u("p50_us")?,
                p90_us: u("p90_us")?,
                p99_us: u("p99_us")?,
            });
        }
        if v.get("last").is_some() {
            return Some(SeriesSample::Gauge {
                last: i("last")?,
                min: i("min")?,
                max: i("max")?,
            });
        }
        Some(SeriesSample::Count(u("count")?))
    }

    /// The count, when this is a counter sample.
    pub fn count(&self) -> Option<u64> {
        match self {
            SeriesSample::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The close-of-window level, when this is a gauge sample.
    pub fn gauge_last(&self) -> Option<i64> {
        match self {
            SeriesSample::Gauge { last, .. } => Some(*last),
            _ => None,
        }
    }

    /// The p99, when this is a digest sample with data.
    pub fn p99_us(&self) -> Option<u64> {
        match self {
            SeriesSample::Digest { count, p99_us, .. } if *count > 0 => Some(*p99_us),
            _ => None,
        }
    }
}

/// One closed window: every registered series' sample over
/// `[start_us, end_us)` of virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Window start, virtual µs (inclusive).
    pub start_us: u64,
    /// Window end, virtual µs (exclusive).
    pub end_us: u64,
    /// The run label active when the window closed (e.g. `rate=0.3`).
    pub run: String,
    /// Windows skipped just before this frame (clock jumped farther
    /// than the per-advance frame cap). Zero in normal operation.
    pub skipped: u64,
    /// Series key → sample. Keys are `name` or `name{k=v,...}` with
    /// label keys sorted.
    pub series: BTreeMap<String, SeriesSample>,
}

/// The event name frames are emitted under.
pub const FRAME_EVENT: &str = "ts.frame";

impl Frame {
    /// The frame as a `ts.frame` [`Event`] (what the sink receives).
    pub fn to_event(&self) -> Event {
        let mut series = JsonValue::obj();
        for (k, s) in &self.series {
            series.set(k, s.to_json());
        }
        let mut fields: Vec<(&'static str, JsonValue)> = vec![
            ("win_start_us", JsonValue::from(self.start_us)),
            ("win_end_us", JsonValue::from(self.end_us)),
            ("run", JsonValue::from(self.run.as_str())),
        ];
        if self.skipped > 0 {
            fields.push(("windows_skipped", JsonValue::from(self.skipped)));
        }
        fields.push(("series", series));
        Event {
            ts_us: self.end_us,
            name: FRAME_EVENT.to_string(),
            dur_us: None,
            fields,
            trace: None,
        }
    }

    /// Rebuild a frame from an event's JSON form (one `--frames-out`
    /// line). Returns `None` for lines that are not `ts.frame` events.
    pub fn parse(line: &JsonValue) -> Option<Frame> {
        if line.get("event").and_then(JsonValue::as_str) != Some(FRAME_EVENT) {
            return None;
        }
        let f = line.get("fields")?;
        let mut series = BTreeMap::new();
        if let Some(map) = f.get("series").and_then(JsonValue::as_obj) {
            for (k, v) in map {
                series.insert(k.clone(), SeriesSample::parse(v)?);
            }
        }
        Some(Frame {
            start_us: f.get("win_start_us").and_then(JsonValue::as_u64)?,
            end_us: f.get("win_end_us").and_then(JsonValue::as_u64)?,
            run: f
                .get("run")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            skipped: f
                .get("windows_skipped")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            series,
        })
    }

    /// Sum of counter samples across every series key matching `family`
    /// (exact name, or `family{...}` for any labels).
    pub fn family_count(&self, family: &str) -> u64 {
        self.series
            .iter()
            .filter(|(k, _)| key_in_family(k, family))
            .filter_map(|(_, s)| s.count())
            .sum()
    }
}

/// Whether series key `key` belongs to label family `family`.
pub fn key_in_family(key: &str, family: &str) -> bool {
    key == family
        || (key.len() > family.len()
            && key.starts_with(family)
            && key.as_bytes()[family.len()] == b'{')
}

/// Render the canonical series key: `name` or `name{k=v,...}` with
/// label keys sorted lexicographically.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
    key
}

#[derive(Debug)]
enum SeriesCell {
    Counter(Arc<TsCounter>),
    Gauge(Arc<TsGauge>),
    Hist(Arc<TsHist>),
}

#[derive(Debug, Default)]
struct Inner {
    series: BTreeMap<String, SeriesCell>,
    /// Closed frames, oldest first, capped at `cfg.retain`.
    recent: VecDeque<Frame>,
    /// Every SLO violation recorded so far (bounded by rule × window
    /// count, which the retain cap and rule set keep small).
    violations: Vec<crate::slo::Violation>,
    run: String,
    /// Windows skipped by the frame cap since the last emitted frame.
    pending_skipped: u64,
}

/// A fixed-window telemetry timeline (see module docs).
///
/// Disabled (zero-width windows) until [`Timeline::configure`] is
/// called; recording into a disabled timeline works but nothing is
/// ever exported, so instrumentation sites need no feature gates.
#[derive(Debug, Default)]
pub struct Timeline {
    cfg: OnceLock<WindowCfg>,
    /// Start of the currently-open window, µs.
    open_start: AtomicU64,
    inner: Mutex<Inner>,
}

impl Timeline {
    /// A disabled timeline (the [`crate::ObsCtx`] default).
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// A timeline configured from the start (the trial-runner path).
    pub fn with_cfg(cfg: WindowCfg) -> Timeline {
        let t = Timeline::default();
        let _ = t.cfg.set(cfg);
        t
    }

    /// Configure windowing. First caller wins (returns `false` if the
    /// timeline was already configured) — mirrors how a CLI default
    /// must not override an explicit `--window`.
    pub fn configure(&self, cfg: WindowCfg) -> bool {
        self.cfg.set(cfg).is_ok()
    }

    /// The active configuration, if any.
    pub fn cfg(&self) -> Option<&WindowCfg> {
        self.cfg.get()
    }

    /// Whether windows are being collected.
    pub fn enabled(&self) -> bool {
        self.cfg.get().is_some_and(|c| c.window_us > 0)
    }

    /// Set the run label stamped on subsequently closed frames.
    pub fn set_run(&self, label: &str) {
        lock_recover(&self.inner).run = label.to_string();
    }

    /// Resolve (or create) the windowed counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<TsCounter> {
        let key = series_key(name, labels);
        let mut g = lock_recover(&self.inner);
        if g.series.len() >= MAX_SERIES && !g.series.contains_key(&key) {
            return self.overflow(&mut g);
        }
        match g
            .series
            .entry(key)
            .or_insert_with(|| SeriesCell::Counter(Arc::new(TsCounter::default())))
        {
            SeriesCell::Counter(c) => c.clone(),
            _ => Arc::new(TsCounter::default()), // name/type clash: orphan handle
        }
    }

    /// Resolve (or create) the windowed gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<TsGauge> {
        let key = series_key(name, labels);
        let mut g = lock_recover(&self.inner);
        if g.series.len() >= MAX_SERIES && !g.series.contains_key(&key) {
            self.overflow(&mut g);
            return Arc::new(TsGauge::default());
        }
        match g
            .series
            .entry(key)
            .or_insert_with(|| SeriesCell::Gauge(Arc::new(TsGauge::default())))
        {
            SeriesCell::Gauge(c) => c.clone(),
            _ => Arc::new(TsGauge::default()),
        }
    }

    /// Resolve (or create) the windowed histogram `name{labels}`.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Arc<TsHist> {
        let key = series_key(name, labels);
        let mut g = lock_recover(&self.inner);
        if g.series.len() >= MAX_SERIES && !g.series.contains_key(&key) {
            self.overflow(&mut g);
            return Arc::new(TsHist::default());
        }
        match g
            .series
            .entry(key)
            .or_insert_with(|| SeriesCell::Hist(Arc::new(TsHist::default())))
        {
            SeriesCell::Hist(c) => c.clone(),
            _ => Arc::new(TsHist::default()),
        }
    }

    /// The shared overflow counter (cardinality cap hit).
    fn overflow(&self, g: &mut std::sync::MutexGuard<'_, Inner>) -> Arc<TsCounter> {
        match g
            .series
            .entry("_overflow".to_string())
            .or_insert_with(|| SeriesCell::Counter(Arc::new(TsCounter::default())))
        {
            SeriesCell::Counter(c) => {
                c.inc();
                c.clone()
            }
            _ => Arc::new(TsCounter::default()),
        }
    }

    /// Advance the timeline to virtual time `now_us`, closing (and
    /// emitting into `sink`) every window boundary crossed. Cheap
    /// no-op while `now_us` stays inside the open window.
    pub fn advance_to(&self, now_us: u64, sink: &dyn Sink) {
        let Some(cfg) = self.cfg.get() else { return };
        let w = cfg.window_us;
        if w == 0 {
            return;
        }
        let open = self.open_start.load(Ordering::Relaxed);
        if now_us < open.saturating_add(w) {
            return;
        }
        // Target: the window containing now_us stays open; everything
        // before it closes.
        let target_start = (now_us / w) * w;
        let mut frames_left = MAX_FRAMES_PER_ADVANCE;
        let mut start = open;
        while start < target_start {
            if frames_left == 0 {
                // Huge jump: skip straight to the last window before the
                // target, recording how many we dropped.
                let skipped = (target_start - start) / w;
                lock_recover(&self.inner).pending_skipped += skipped;
                break;
            }
            self.close_window(cfg, start, start + w, sink);
            frames_left -= 1;
            start += w;
        }
        self.open_start.store(target_start, Ordering::Relaxed);
    }

    /// Close the open window early (end of run): drains whatever the
    /// window accumulated into a final frame and evaluates SLOs once
    /// more. The frame keeps its nominal `[start, start+window)`
    /// bounds so frame widths stay uniform for consumers.
    pub fn flush(&self, sink: &dyn Sink) {
        let Some(cfg) = self.cfg.get() else { return };
        if cfg.window_us == 0 {
            return;
        }
        let start = self.open_start.load(Ordering::Relaxed);
        self.close_window(cfg, start, start + cfg.window_us, sink);
        self.open_start
            .store(start + cfg.window_us, Ordering::Relaxed);
    }

    fn close_window(&self, cfg: &WindowCfg, start_us: u64, end_us: u64, sink: &dyn Sink) {
        let mut g = lock_recover(&self.inner);
        if g.series.is_empty() {
            // Nothing registered: no frame. Keeps parent contexts (whose
            // series all live in trial timelines) from emitting noise.
            return;
        }
        let mut series = BTreeMap::new();
        for (key, cell) in g.series.iter() {
            match cell {
                SeriesCell::Counter(c) => {
                    series.insert(key.clone(), SeriesSample::Count(c.drain()));
                }
                SeriesCell::Gauge(gg) => {
                    if let Some((last, min, max)) = gg.drain() {
                        series.insert(key.clone(), SeriesSample::Gauge { last, min, max });
                    }
                }
                SeriesCell::Hist(h) => {
                    if let Some(d) = h.0.drain_window() {
                        series.insert(
                            key.clone(),
                            SeriesSample::Digest {
                                count: d.count,
                                sum_us: d.sum_us,
                                min_us: d.min_us,
                                max_us: d.max_us,
                                p50_us: d.p50_us,
                                p90_us: d.p90_us,
                                p99_us: d.p99_us,
                            },
                        );
                    }
                }
            }
        }
        let frame = Frame {
            start_us,
            end_us,
            run: g.run.clone(),
            skipped: std::mem::take(&mut g.pending_skipped),
            series,
        };
        if sink.enabled() {
            sink.record(&frame.to_event());
        }
        g.recent.push_back(frame);
        while g.recent.len() > cfg.retain.max(1) {
            g.recent.pop_front();
        }
        // SLO evaluation over the retained history, newest frame last.
        let history: Vec<Frame> = g.recent.iter().cloned().collect();
        let violations = cfg.slos.evaluate(&history);
        for v in violations {
            if sink.enabled() {
                sink.record(&v.to_event());
            }
            g.violations.push(v);
        }
    }

    /// The retained closed frames, oldest first.
    pub fn recent_frames(&self) -> Vec<Frame> {
        lock_recover(&self.inner).recent.iter().cloned().collect()
    }

    /// Every SLO violation recorded so far, in emission order.
    pub fn violations(&self) -> Vec<crate::slo::Violation> {
        lock_recover(&self.inner).violations.clone()
    }

    /// A fresh timeline inheriting this one's configuration (the trial
    /// runner's per-trial arena), or a disabled one if unconfigured.
    pub fn child(&self) -> Timeline {
        match self.cfg.get() {
            Some(cfg) => Timeline::with_cfg(cfg.clone()),
            None => Timeline::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;
    use crate::slo::SloSet;

    fn cfg(window_us: u64) -> WindowCfg {
        WindowCfg {
            window_us,
            retain: 8,
            slos: Arc::new(SloSet::empty()),
        }
    }

    #[test]
    fn series_keys_sort_labels() {
        assert_eq!(series_key("a", &[]), "a");
        assert_eq!(series_key("a", &[("z", "1"), ("b", "2")]), "a{b=2,z=1}");
        assert!(key_in_family("a{b=2}", "a"));
        assert!(key_in_family("a", "a"));
        assert!(!key_in_family("ab", "a"));
        assert!(!key_in_family("a.b{x=1}", "a"));
    }

    #[test]
    fn disabled_timeline_is_inert() {
        let t = Timeline::new();
        assert!(!t.enabled());
        let c = t.counter("x", &[]);
        c.add(5);
        let ring = RingSink::new(8);
        t.advance_to(10_000_000, &ring);
        t.flush(&ring);
        assert!(ring.is_empty());
        assert!(t.recent_frames().is_empty());
    }

    #[test]
    fn windows_close_on_boundary_and_counters_reset() {
        let t = Timeline::with_cfg(cfg(1_000));
        assert!(t.enabled());
        t.set_run("r1");
        let c = t.counter("hits", &[("asn", "7")]);
        let ring = RingSink::new(64);
        c.add(3);
        t.advance_to(500, &ring); // still window 0
        assert!(ring.is_empty());
        c.add(2);
        t.advance_to(1_500, &ring); // crosses into window 1
        let frames = t.recent_frames();
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        assert_eq!((f.start_us, f.end_us), (0, 1_000));
        assert_eq!(f.run, "r1");
        assert_eq!(f.series["hits{asn=7}"], SeriesSample::Count(5));
        // Counter reset: next window counts only new samples.
        c.add(1);
        t.advance_to(2_100, &ring);
        assert_eq!(
            t.recent_frames()[1].series["hits{asn=7}"],
            SeriesSample::Count(1)
        );
        // Frames reached the sink as ts.frame events.
        let evs = ring.drain();
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.name == FRAME_EVENT));
        assert_eq!(evs[0].ts_us, 1_000);
    }

    #[test]
    fn empty_crossed_windows_emit_zero_frames() {
        let t = Timeline::with_cfg(cfg(1_000));
        let _c = t.counter("hits", &[]);
        let ring = RingSink::new(64);
        t.advance_to(3_500, &ring); // crosses windows 0,1,2
        let frames = t.recent_frames();
        assert_eq!(frames.len(), 3);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.start_us, i as u64 * 1_000);
            assert_eq!(f.series["hits"], SeriesSample::Count(0));
        }
    }

    #[test]
    fn gauge_carries_last_forward_and_tracks_min_max() {
        let t = Timeline::with_cfg(cfg(1_000));
        let g = t.gauge("depth", &[]);
        let ring = RingSink::new(64);
        g.set(5);
        g.set(2);
        g.set(9);
        t.advance_to(1_200, &ring);
        assert_eq!(
            t.recent_frames()[0].series["depth"],
            SeriesSample::Gauge {
                last: 9,
                min: 2,
                max: 9
            }
        );
        // Quiet window: level carries forward, min = max = last.
        t.advance_to(2_200, &ring);
        assert_eq!(
            t.recent_frames()[1].series["depth"],
            SeriesSample::Gauge {
                last: 9,
                min: 9,
                max: 9
            }
        );
    }

    #[test]
    fn unsampled_gauge_and_empty_hist_are_omitted() {
        let t = Timeline::with_cfg(cfg(1_000));
        let _g = t.gauge("depth", &[]);
        let _h = t.hist("lat", &[]);
        let c = t.counter("hits", &[]);
        c.inc();
        let ring = RingSink::new(8);
        t.advance_to(1_500, &ring);
        let f = &t.recent_frames()[0];
        assert_eq!(
            f.series.len(),
            1,
            "only the counter sampled: {:?}",
            f.series
        );
    }

    #[test]
    fn hist_digest_resets_per_window() {
        let t = Timeline::with_cfg(cfg(1_000));
        let h = t.hist("lat", &[]);
        let ring = RingSink::new(8);
        for ms in [10u64, 20, 30] {
            h.observe_us(ms * 1_000);
        }
        t.advance_to(1_500, &ring);
        let f0 = &t.recent_frames()[0];
        match &f0.series["lat"] {
            SeriesSample::Digest { count, p50_us, .. } => {
                assert_eq!(*count, 3);
                let p50 = *p50_us as f64;
                assert!((p50 - 20_000.0).abs() / 20_000.0 < 0.02, "{p50}");
            }
            other => panic!("expected digest, got {other:?}"),
        }
        h.observe_us(5_000);
        t.advance_to(2_500, &ring);
        match &t.recent_frames()[1].series["lat"] {
            SeriesSample::Digest { count, sum_us, .. } => {
                assert_eq!(*count, 1);
                assert_eq!(*sum_us, 5_000);
            }
            other => panic!("expected digest, got {other:?}"),
        }
    }

    #[test]
    fn flush_closes_the_open_window_once() {
        let t = Timeline::with_cfg(cfg(1_000_000));
        let c = t.counter("hits", &[]);
        c.add(4);
        let ring = RingSink::new(8);
        t.flush(&ring);
        let frames = t.recent_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].series["hits"], SeriesSample::Count(4));
        assert_eq!(frames[0].end_us, 1_000_000, "nominal window width kept");
    }

    #[test]
    fn frame_event_roundtrips_through_json() {
        let t = Timeline::with_cfg(cfg(1_000));
        t.set_run("rate=0.3");
        t.counter("c", &[("asn", "1")]).add(7);
        t.gauge("g", &[]).set(-3);
        t.hist("h", &[]).observe_us(123);
        let ring = RingSink::new(8);
        t.advance_to(1_500, &ring);
        let f = &t.recent_frames()[0];
        let line = f.to_event().to_json();
        let parsed = Frame::parse(&line).expect("frame parses");
        assert_eq!(&parsed, f);
        // Non-frame lines are rejected.
        assert!(Frame::parse(&Event::point("other", 1).to_json()).is_none());
    }

    #[test]
    fn cardinality_cap_routes_to_overflow() {
        let t = Timeline::with_cfg(cfg(1_000));
        for i in 0..MAX_SERIES + 10 {
            let v = i.to_string();
            t.counter("c", &[("id", v.as_str())]).inc();
        }
        let ring = RingSink::new(8);
        t.advance_to(1_500, &ring);
        let f = &t.recent_frames()[0];
        // The shared overflow series itself sits one past the cap.
        assert!(f.series.len() <= MAX_SERIES + 1);
        let overflow = f.series["_overflow"].count().unwrap();
        assert!(overflow >= 10, "overflowing series counted: {overflow}");
    }

    #[test]
    fn huge_clock_jump_is_capped_and_recorded() {
        let t = Timeline::with_cfg(cfg(1));
        t.counter("c", &[]).inc();
        let ring = RingSink::new(8);
        // Jump ~10^7 windows: far past the per-advance cap. The cap
        // closes a bounded number of frames, then skips to the target.
        t.advance_to(10_000_000, &ring);
        // The next closed frame records the size of the gap.
        t.counter("c", &[]).inc();
        t.advance_to(10_000_002, &ring);
        let frames = t.recent_frames();
        let first_after_gap = frames
            .iter()
            .find(|f| f.skipped > 0)
            .expect("gap recorded on the frame after the skip");
        assert_eq!(first_after_gap.start_us, 10_000_000);
        assert!(first_after_gap.skipped > 1_000_000);
    }

    #[test]
    fn family_count_sums_labels() {
        let t = Timeline::with_cfg(cfg(1_000));
        t.counter("hits", &[("asn", "1")]).add(2);
        t.counter("hits", &[("asn", "2")]).add(3);
        t.counter("hitsx", &[]).add(100);
        let ring = RingSink::new(8);
        t.advance_to(1_500, &ring);
        assert_eq!(t.recent_frames()[0].family_count("hits"), 5);
    }

    #[test]
    fn child_inherits_cfg_with_fresh_state() {
        let t = Timeline::with_cfg(cfg(2_000));
        t.counter("c", &[]).add(9);
        let child = t.child();
        assert!(child.enabled());
        assert_eq!(child.cfg().unwrap().window_us, 2_000);
        assert!(child.recent_frames().is_empty());
        let ring = RingSink::new(8);
        child.advance_to(5_000, &ring);
        assert!(
            child.recent_frames().is_empty(),
            "no series registered in the child yet"
        );
        assert!(Timeline::new().child().cfg().is_none());
    }
}
