//! Flight recorder: bounded per-trace ring buffers that keep only the
//! trees that ended in failure.
//!
//! A long experiment (or the real proxy) produces far too many events
//! to retain, but the interesting ones — postmortems of censored
//! fetches that *no* transport could serve — are rare. The
//! [`FlightRecorder`] keeps the last N events of every live trace in a
//! small ring; when a trace's root span completes (an event with a
//! trace annotation, a duration, and no parent):
//!
//! - if the root carries `ok: false`, the trace's buffered events are
//!   moved to the failed store (bounded, oldest failure evicted);
//! - otherwise the buffer is discarded — success needs no postmortem.
//!
//! Live traces are bounded too: when more than `max_traces` are in
//! flight (e.g. roots that never complete), the oldest live trace is
//! evicted. All internal locks recover from poison; telemetry never
//! propagates a panic.

use crate::event::Event;
use crate::json::JsonValue;
use crate::sink::{lock_recover, Sink};
use crate::trace::TraceId;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Debug, Default)]
struct Inner {
    /// Live (incomplete) traces: last `per_trace_cap` events each.
    live: BTreeMap<u64, VecDeque<Event>>,
    /// Live trace ids in first-seen order (eviction order).
    order: VecDeque<u64>,
    /// Completed-and-failed traces, oldest first. Each entry carries
    /// the telemetry window frames that preceded the failure.
    failed: VecDeque<FailedTrace>,
    /// Rolling last-N `ts.frame` events: the system-state context a
    /// postmortem snapshots at failure time.
    frames: VecDeque<Event>,
}

#[derive(Debug)]
struct FailedTrace {
    trace: u64,
    events: Vec<Event>,
    frames: Vec<Event>,
}

/// Telemetry window frames a postmortem snapshots alongside the span
/// tree (see [`FlightRecorder::failed_with_frames`]).
const FRAME_CONTEXT: usize = 4;

/// The bounded failure-only retention sink (see module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    per_trace_cap: usize,
    max_traces: usize,
    frame_cap: usize,
    inner: Mutex<Inner>,
    dropped_events: AtomicU64,
    evicted_traces: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the last `per_trace_cap` events for up to
    /// `max_traces` live traces, and at most `max_traces` failed trees.
    /// Each failed tree also snapshots the last `FRAME_CONTEXT` (4)
    /// telemetry window frames (`ts.frame` events) seen before the
    /// failure, so a postmortem shows system state, not just spans.
    pub fn new(per_trace_cap: usize, max_traces: usize) -> FlightRecorder {
        FlightRecorder {
            per_trace_cap: per_trace_cap.max(1),
            max_traces: max_traces.max(1),
            frame_cap: FRAME_CONTEXT,
            inner: Mutex::new(Inner::default()),
            dropped_events: AtomicU64::new(0),
            evicted_traces: AtomicU64::new(0),
        }
    }

    /// Events dropped from full per-trace rings.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events.load(Ordering::Relaxed)
    }

    /// Live traces evicted because too many were in flight.
    pub fn evicted_traces(&self) -> u64 {
        self.evicted_traces.load(Ordering::Relaxed)
    }

    /// Number of traces currently in flight.
    pub fn live_traces(&self) -> usize {
        lock_recover(&self.inner).live.len()
    }

    /// The retained failed trees, oldest first.
    pub fn failed(&self) -> Vec<(TraceId, Vec<Event>)> {
        lock_recover(&self.inner)
            .failed
            .iter()
            .map(|f| (TraceId(f.trace), f.events.clone()))
            .collect()
    }

    /// The retained failed trees with the telemetry window frames that
    /// preceded each failure (oldest trees first; frames oldest first).
    pub fn failed_with_frames(&self) -> Vec<(TraceId, Vec<Event>, Vec<Event>)> {
        lock_recover(&self.inner)
            .failed
            .iter()
            .map(|f| (TraceId(f.trace), f.events.clone(), f.frames.clone()))
            .collect()
    }

    /// Take the retained failed trees, oldest first, clearing the store.
    pub fn take_failed(&self) -> Vec<(TraceId, Vec<Event>)> {
        lock_recover(&self.inner)
            .failed
            .drain(..)
            .map(|f| (TraceId(f.trace), f.events))
            .collect()
    }

    /// Write every retained failed tree as JSONL (same shape the
    /// [`crate::sink::JsonlSink`] writes, so `trace-report` reads it).
    /// Each tree is preceded by the window frames it snapshotted, so a
    /// postmortem line stream reads "system state, then the failure".
    pub fn dump_failed_jsonl(&self, w: &mut dyn Write) -> std::io::Result<()> {
        for f in lock_recover(&self.inner).failed.iter() {
            for e in f.frames.iter().chain(f.events.iter()) {
                writeln!(w, "{}", e.to_json().to_string_compact())?;
            }
        }
        Ok(())
    }

    /// Whether a root-completion event marks its trace failed: `ok`
    /// field present and false. A root without `ok` is treated as
    /// success (nothing worth a postmortem was asserted).
    fn root_failed(event: &Event) -> bool {
        event
            .fields
            .iter()
            .find(|(k, _)| *k == "ok")
            .is_some_and(|(_, v)| matches!(v, JsonValue::Bool(false)))
    }
}

impl Sink for FlightRecorder {
    fn record(&self, event: &Event) {
        // Telemetry window frames are untraced but kept in their own
        // rolling ring: they are the "what was the system doing" context
        // a failed tree snapshots at completion time.
        if event.name == crate::timeseries::FRAME_EVENT {
            let mut g = lock_recover(&self.inner);
            if g.frames.len() == self.frame_cap {
                g.frames.pop_front();
            }
            g.frames.push_back(event.clone());
            return;
        }
        // Other untraced events have no tree to belong to; the recorder
        // only answers "what happened inside this failed fetch".
        let Some(t) = &event.trace else { return };
        let key = t.trace.0;
        let mut g = lock_recover(&self.inner);
        if !g.live.contains_key(&key) {
            if g.live.len() == self.max_traces {
                if let Some(oldest) = g.order.pop_front() {
                    g.live.remove(&oldest);
                    self.evicted_traces.fetch_add(1, Ordering::Relaxed);
                }
            }
            g.live.insert(key, VecDeque::new());
            g.order.push_back(key);
        }
        let buf = g.live.get_mut(&key).expect("inserted above");
        if buf.len() == self.per_trace_cap {
            buf.pop_front();
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());

        // Root completion: retire the trace.
        if t.parent.is_none() && event.dur_us.is_some() {
            let evs: Vec<Event> = g.live.remove(&key).map(Vec::from).unwrap_or_default();
            g.order.retain(|k| *k != key);
            if Self::root_failed(event) {
                if g.failed.len() == self.max_traces {
                    g.failed.pop_front();
                    self.evicted_traces.fetch_add(1, Ordering::Relaxed);
                }
                let frames: Vec<Event> = g.frames.iter().cloned().collect();
                g.failed.push_back(FailedTrace {
                    trace: key,
                    events: evs,
                    frames,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{install, ObsCtx};
    use crate::trace;
    use std::sync::Arc;

    fn run_fetch(fr: &Arc<FlightRecorder>, seed: u64, ordinal: u64, ok: bool) {
        let ctx = Arc::new(ObsCtx::new().with_sink(fr.clone()));
        let _g = install(ctx);
        let root = trace::fetch_root(seed, ordinal, 0);
        crate::event::span_completed_at("fetch.detect", 0, 10, &[]);
        crate::event::span_completed_at("fetch.transfer", 10, 20, &[]);
        trace::complete_active("fetch", 0, 30, &[("ok", JsonValue::from(ok))]);
        drop(root);
    }

    #[test]
    fn keeps_failed_trees_discards_successes() {
        let fr = Arc::new(FlightRecorder::new(16, 8));
        run_fetch(&fr, 1, 0, true);
        run_fetch(&fr, 1, 1, false);
        run_fetch(&fr, 1, 2, true);
        assert_eq!(fr.live_traces(), 0, "all roots completed");
        let failed = fr.failed();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, trace::derive(1, trace::stream::FETCH, 1));
        assert_eq!(failed[0].1.len(), 3, "detect + transfer + root");
        let mut out = Vec::new();
        fr.dump_failed_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 3);
        for l in text.lines() {
            JsonValue::parse(l).unwrap();
        }
    }

    #[test]
    fn per_trace_ring_is_bounded() {
        let fr = Arc::new(FlightRecorder::new(2, 4));
        let ctx = Arc::new(ObsCtx::new().with_sink(fr.clone()));
        let _g = install(ctx);
        let root = trace::fetch_root(2, 0, 0);
        for i in 0..5 {
            crate::event::span_completed_at("fetch.step", i, 1, &[]);
        }
        trace::complete_active("fetch", 0, 5, &[("ok", JsonValue::from(false))]);
        drop(root);
        assert_eq!(fr.dropped_events(), 4, "ring kept 2 of 6 pre-root events");
        let failed = fr.failed();
        assert_eq!(failed[0].1.len(), 2, "last pre-root event + root");
    }

    #[test]
    fn live_traces_are_bounded() {
        let fr = Arc::new(FlightRecorder::new(8, 2));
        let ctx = Arc::new(ObsCtx::new().with_sink(fr.clone()));
        let _g = install(ctx);
        for ordinal in 0..4 {
            // Roots that never complete (no root-span event).
            let r = trace::fetch_root(3, ordinal, 0);
            crate::event!("fetch.note");
            drop(r);
        }
        assert_eq!(fr.live_traces(), 2);
        assert_eq!(fr.evicted_traces(), 2);
    }

    #[test]
    fn untraced_events_are_ignored() {
        let fr = FlightRecorder::new(4, 4);
        fr.record(&Event::point("loose", 1));
        assert_eq!(fr.live_traces(), 0);
    }

    #[test]
    fn postmortems_snapshot_preceding_window_frames() {
        let fr = Arc::new(FlightRecorder::new(16, 8));
        // Six frames arrive before the failure; the recorder keeps the
        // last FRAME_CONTEXT (= 4) of them.
        for i in 0..6u64 {
            fr.record(&Event::point(crate::timeseries::FRAME_EVENT, i * 100));
        }
        run_fetch(&fr, 9, 0, false);
        let failed = fr.failed_with_frames();
        assert_eq!(failed.len(), 1);
        let (_, events, frames) = &failed[0];
        assert_eq!(events.len(), 3, "span tree unchanged by frame capture");
        assert_eq!(frames.len(), FRAME_CONTEXT);
        assert_eq!(frames[0].ts_us, 200, "oldest two frames evicted");
        assert_eq!(frames[3].ts_us, 500);
        // The JSONL dump leads with the system-state frames.
        let mut out = Vec::new();
        fr.dump_failed_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let first = JsonValue::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("event").and_then(JsonValue::as_str),
            Some(crate::timeseries::FRAME_EVENT)
        );
        assert_eq!(text.lines().count(), 3 + FRAME_CONTEXT);
        // Successful fetches snapshot nothing extra.
        run_fetch(&fr, 9, 1, true);
        assert_eq!(fr.failed_with_frames().len(), 1);
    }
}
