//! A synthetic corpus of ISP block pages.
//!
//! The paper validates its phase-1 classifier against block pages from 47
//! ISPs collected by citizenlab/ooni, finding ~80% phase-1 detection with
//! zero false positives. Those collections are snapshots of real ISP
//! deployments; this module generates a corpus with the same *structure*:
//! 47 pages across five stylistic families, a fifth of which are
//! deliberately "portal-style" pages that phase 1 cannot distinguish from
//! real content (they are long, tag-rich, and avoid tell-tale wording) —
//! those are the ones phase 2's size comparison must catch.

/// Stylistic family of a block page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Terse legal notice ("this site has been blocked by court order").
    LegalNotice,
    /// Branded filtering-product page ("Surf Safely!").
    Branded,
    /// Tiny wrapper that loads the real block page in an iframe
    /// (ISP-B's mechanism in Table 1).
    IframeWrapper,
    /// Meta-refresh interstitial bouncing to a filter portal.
    MetaRefresh,
    /// Full portal-style page that *looks* like a normal site — long,
    /// styled, link-rich, no blocking keywords. Evades phase 1.
    PortalStyle,
}

/// One corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPageSample {
    /// Which synthetic ISP served it.
    pub isp: String,
    /// Its stylistic family.
    pub family: Family,
    /// The page markup.
    pub html: String,
}

impl BlockPageSample {
    /// Byte size of the page.
    pub fn len(&self) -> usize {
        self.html.len()
    }

    /// True if the page body is empty (never, for generated samples).
    pub fn is_empty(&self) -> bool {
        self.html.is_empty()
    }

    /// Should phase 1 be expected to catch this family?
    pub fn phase1_catchable(&self) -> bool {
        self.family != Family::PortalStyle
    }
}

fn legal_notice(isp: usize) -> String {
    format!(
        "<html><head><title>Site Blocked</title></head><body>\
         <h1>Access Denied</h1>\
         <p>This site has been blocked under the directives of the national \
         telecommunication regulator (ref PTA/{isp}/2017). The content you \
         attempted to access is deemed unlawful or objectionable.</p>\
         <p>For queries contact abuse@isp{isp}.example.</p>\
         </body></html>"
    )
}

fn branded(isp: usize) -> String {
    format!(
        "<html><head><title>Surf Safely</title>\
         <style>body{{background:#003366;color:#fff;font-family:sans-serif}}\
         .card{{margin:80px auto;width:480px;padding:24px;background:#fff;color:#333}}</style>\
         </head><body><div class=\"card\">\
         <img src=\"/logo{isp}.png\" alt=\"SurfSafely\">\
         <h2>Surf Safely!</h2>\
         <p>The website you are trying to access is <b>restricted</b> by your \
         internet service provider in compliance with a ministry order.</p>\
         <p>If you believe this is an error, dial 0800-{isp:04}.</p>\
         </div></body></html>"
    )
}

fn iframe_wrapper(isp: usize) -> String {
    format!(
        "<html><body><iframe src=\"http://block.isp{isp}.example/notice\" \
         width=\"100%\" height=\"100%\" frameborder=\"0\"></iframe></body></html>"
    )
}

fn meta_refresh(isp: usize) -> String {
    format!(
        "<html><head><meta http-equiv=\"refresh\" \
         content=\"0;url=http://filter.isp{isp}.example/denied\">\
         <title>Redirecting</title></head>\
         <body><p>The requested page is not accessible. Redirecting to the \
         filter portal&hellip;</p></body></html>"
    )
}

fn portal_style(isp: usize) -> String {
    // Long, styled, link-rich; no blocking vocabulary anywhere. Mimics
    // ISPs that replace censored content with their own portal/search
    // page. Must evade phase 1 and be caught by phase 2's size check
    // against the (much larger) real page.
    let mut s = String::with_capacity(16_384);
    s.push_str(&format!(
        "<html><head><title>ISP{isp} Home</title>\
         <link rel=\"stylesheet\" href=\"/portal.css\">\
         <script src=\"/portal.js\"></script></head><body><header><nav><ul>"
    ));
    for item in [
        "Home", "Search", "Mail", "News", "Weather", "Sports", "Deals",
    ] {
        s.push_str(&format!(
            "<li><a href=\"/{}\">{}</a></li>",
            item.to_lowercase(),
            item
        ));
    }
    s.push_str("</ul></nav></header><main>");
    for i in 0..30 {
        s.push_str(&format!(
            "<article><h3>Featured story {i}</h3><p>Discover great offers and \
             the latest updates from around the web, curated for you by your \
             service provider's portal team. Stay connected with family and \
             friends, check the forecast, and enjoy premium entertainment \
             packages at special rates.</p>\
             <a href=\"/story/{i}\">Read more</a><img src=\"/thumb{i}.jpg\" alt=\"story\"></article>"
        ));
    }
    s.push_str("</main><footer><p>&copy; ISP portal services</p></footer></body></html>");
    s
}

/// Generate the 47-ISP corpus. Family allocation: 12 legal notices,
/// 10 branded, 8 iframe wrappers, 8 meta-refresh interstitials, and 9
/// portal-style evaders — so 38/47 (~81%) are phase-1-catchable, matching
/// the paper's ~80% phase-1 detection rate by construction of the corpus
/// diversity (not by tuning the classifier to the corpus).
pub fn corpus_47() -> Vec<BlockPageSample> {
    let mut out = Vec::with_capacity(47);
    let plan: [(Family, usize); 5] = [
        (Family::LegalNotice, 12),
        (Family::Branded, 10),
        (Family::IframeWrapper, 8),
        (Family::MetaRefresh, 8),
        (Family::PortalStyle, 9),
    ];
    let mut isp = 0;
    for (family, n) in plan {
        for _ in 0..n {
            isp += 1;
            let html = match family {
                Family::LegalNotice => legal_notice(isp),
                Family::Branded => branded(isp),
                Family::IframeWrapper => iframe_wrapper(isp),
                Family::MetaRefresh => meta_refresh(isp),
                Family::PortalStyle => portal_style(isp),
            };
            out.push(BlockPageSample {
                isp: format!("ISP-{isp:02}"),
                family,
                html,
            });
        }
    }
    debug_assert_eq!(out.len(), 47);
    out
}

/// Generate `n` real (non-block) pages of varying size and character,
/// including adversarial cases for the false-positive claim: small pages,
/// and news articles *about* censorship whose text contains blocking
/// vocabulary but whose structure is page-like.
pub fn real_pages(n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let html = match i % 4 {
            // Typical content page.
            0 => csaw_webproto::synth_html(&format!("Site {i}"), 40_000 + (i % 7) * 25_000),
            // Large landing page.
            1 => csaw_webproto::synth_html(&format!("Portal {i}"), 150_000 + (i % 5) * 40_000),
            // Small-but-real page: sparse, no keywords; must not FP.
            2 => format!(
                "<html><head><title>Status {i}</title></head><body>\
                 <h1>Service status</h1><ul>\
                 <li><a href=\"/api\">API: operational</a></li>\
                 <li><a href=\"/web\">Web: operational</a></li>\
                 <li><a href=\"/cdn\">CDN: operational</a></li>\
                 <li><a href=\"/dns\">DNS: operational</a></li>\
                 <li><a href=\"/mail\">Mail: operational</a></li>\
                 <li><a href=\"/push\">Push: operational</a></li>\
                 <li><a href=\"/sms\">SMS: operational</a></li>\
                 <li><a href=\"/voice\">Voice: operational</a></li>\
                 <li><a href=\"/help\">Help center</a></li>\
                 </ul></body></html>"
            ),
            // News article about censorship: keywords present, structure rich.
            _ => {
                let mut s = csaw_webproto::synth_html(&format!("Daily News {i}"), 60_000);
                s.push_str(
                    "<article><h2>Regulator orders ISPs to unblock video site</h2>\
                     <p>Thousands of websites remain blocked nationwide; the \
                     ministry said restricted content lists are under review \
                     after a court order. Users reported pages being censored \
                     or access denied across several providers.</p></article></html>",
                );
                s
            }
        };
        out.push(html);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_47_entries_across_families() {
        let c = corpus_47();
        assert_eq!(c.len(), 47);
        let catchable = c.iter().filter(|s| s.phase1_catchable()).count();
        assert_eq!(catchable, 38);
        let portal = c.iter().filter(|s| s.family == Family::PortalStyle).count();
        assert_eq!(portal, 9);
        // ISP names unique.
        let names: std::collections::HashSet<&str> = c.iter().map(|s| s.isp.as_str()).collect();
        assert_eq!(names.len(), 47);
    }

    #[test]
    fn portal_pages_are_large_and_linky() {
        for s in corpus_47() {
            if s.family == Family::PortalStyle {
                assert!(s.len() > 8_000, "{} too small: {}", s.isp, s.len());
                assert!(s.html.matches("<a ").count() > 20);
                // And avoid tell-tale vocabulary entirely.
                let lower = s.html.to_ascii_lowercase();
                for k in crate::features::BLOCK_KEYWORDS {
                    assert!(!lower.contains(k), "{} contains {k:?}", s.isp);
                }
            }
        }
    }

    #[test]
    fn simple_block_pages_are_small() {
        for s in corpus_47() {
            if matches!(s.family, Family::LegalNotice | Family::IframeWrapper) {
                assert!(s.len() < 2_000, "{}: {}", s.isp, s.len());
            }
        }
    }

    #[test]
    fn real_pages_varied() {
        let pages = real_pages(16);
        assert_eq!(pages.len(), 16);
        let small = pages.iter().filter(|p| p.len() < 2_000).count();
        let large = pages.iter().filter(|p| p.len() > 100_000).count();
        assert!(small >= 2, "wants small real pages for FP testing");
        assert!(large >= 2);
    }
}
