//! # csaw-blockpage — 2-phase block-page detection
//!
//! Implements §4.3.1 of the paper: a fast **phase 1** that classifies the
//! direct-path response alone using the HTML-tag heuristic of Jones et
//! al. (IMC 2014), and a **phase 2** that compares response sizes across
//! the direct and circumvention paths. Phase 1 keeps the common case fast
//! (the page is served without waiting for the redundant copy); phase 2
//! supplies accuracy for the pages phase 1 cannot call.
//!
//! The [`corpus`] module generates a 47-ISP block-page corpus with the
//! stylistic diversity of the citizenlab/ooni collections the paper
//! evaluated against, including portal-style evaders, plus adversarial
//! real pages for the zero-false-positive claim.

//!
//! ```
//! use csaw_blockpage::{phase1_html, phase2, Phase1Config, Phase2Config, Phase1Verdict};
//!
//! let block_page = "<html><body><h1>Access Denied</h1>\
//!                   <p>blocked by court order</p></body></html>";
//! assert_eq!(
//!     phase1_html(block_page, &Phase1Config::default()),
//!     Phase1Verdict::BlockPage
//! );
//! // Phase 2: the 1.4 KB "page" vs the genuine 360 KB one.
//! assert!(phase2(1_400, 360_000, &Phase2Config::default()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classifier;
pub mod corpus;
pub mod features;

pub use classifier::{
    detect, phase1, phase1_html, phase2, Detection, Phase1Config, Phase1Verdict, Phase2Config,
};
pub use corpus::{corpus_47, real_pages, BlockPageSample, Family};
pub use features::{extract, HtmlFeatures, BLOCK_KEYWORDS};
