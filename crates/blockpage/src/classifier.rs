//! The 2-phase block-page detector (§4.3.1 of the paper).
//!
//! **Phase 1** inspects only the direct-path response, using the HTML-tag
//! heuristic of Jones et al.: block pages are structurally small (short
//! markup, few tags, few links) and either use blocking vocabulary or are
//! bare iframe/meta-refresh shells. If phase 1 says "normal", the page is
//! served to the user immediately — no waiting on the circumvention copy.
//! If phase 1 says "block page", C-Saw proceeds to **phase 2**, comparing
//! the direct response's size against the circumvention path's response;
//! a large deficit confirms the block page.
//!
//! The design goal stated in the paper: phase 1 catches ~80% of block
//! pages with *zero* false positives (a normal page misclassified as a
//! block page costs only extra latency — it is corrected by phase 2 — but
//! the paper still reports none).

use crate::features::{extract, HtmlFeatures};

/// Phase-1 verdict on a single document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase1Verdict {
    /// Structurally and lexically a block page.
    BlockPage,
    /// Looks like ordinary content.
    Normal,
}

/// Phase-1 thresholds. Defaults were chosen from the structural gap
/// between the block-page corpus and real pages — block pages in the
/// citizenlab/ooni collections are orders of magnitude smaller and
/// sparser than real content.
#[derive(Debug, Clone, Copy)]
pub struct Phase1Config {
    /// Maximum markup length (bytes) for block-page structure.
    pub max_length: usize,
    /// Maximum opening-tag count.
    pub max_tags: usize,
    /// Maximum anchor count.
    pub max_links: usize,
}

impl Default for Phase1Config {
    fn default() -> Self {
        Phase1Config {
            max_length: 6_000,
            max_tags: 60,
            max_links: 8,
        }
    }
}

/// Classify a document's features.
///
/// Verdict is `BlockPage` iff the structure is block-page-like (small,
/// sparse, few links) **and** there is positive evidence (blocking
/// vocabulary, a lone iframe shell, or a meta-refresh interstitial).
/// Requiring both keeps false positives at zero: small real pages carry
/// no evidence, keyword-bearing news articles fail the structure gate.
pub fn phase1(features: &HtmlFeatures, cfg: &Phase1Config) -> Phase1Verdict {
    let sparse = features.length <= cfg.max_length
        && features.tag_count <= cfg.max_tags
        && features.link_count <= cfg.max_links;
    if !sparse {
        return Phase1Verdict::Normal;
    }
    let evidence = features.keyword_hits >= 1 || features.has_iframe || features.has_meta_refresh;
    if evidence {
        Phase1Verdict::BlockPage
    } else {
        Phase1Verdict::Normal
    }
}

/// Convenience: extract features and classify in one step.
pub fn phase1_html(html: &str, cfg: &Phase1Config) -> Phase1Verdict {
    phase1(&extract(html), cfg)
}

/// Phase-2 configuration: the size-comparison test.
#[derive(Debug, Clone, Copy)]
pub struct Phase2Config {
    /// Relative size difference above which the two responses are deemed
    /// different documents: `|direct - circ| / max(direct, circ)`.
    pub max_relative_diff: f64,
}

impl Default for Phase2Config {
    fn default() -> Self {
        Phase2Config {
            max_relative_diff: 0.30,
        }
    }
}

/// Phase 2: does the direct response's size differ from the circumvention
/// response's enough to confirm content manipulation?
///
/// Returns `true` when the direct page is confirmed to be a different
/// (manipulated) document. Small relative differences are expected for
/// the *same* page fetched twice (dynamic content, personalization — the
/// very reason byte-equality is useless here, per §4.3.1).
pub fn phase2(direct_bytes: u64, circumvention_bytes: u64, cfg: &Phase2Config) -> bool {
    let max = direct_bytes.max(circumvention_bytes);
    if max == 0 {
        return false;
    }
    let diff = direct_bytes.abs_diff(circumvention_bytes) as f64 / max as f64;
    diff > cfg.max_relative_diff
}

/// The combined 2-phase detector state machine outcome for one URL fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// Phase 1 cleared the page: serve immediately, no phase 2 needed.
    ServedImmediately,
    /// Phase 1 flagged it and phase 2 confirmed: block page.
    ConfirmedBlockPage,
    /// Phase 1 flagged it but phase 2 disagreed (sizes match): false
    /// positive corrected by waiting for the circumvention copy.
    FalsePositiveCorrected,
}

/// Run both phases given the direct response markup and the sizes of the
/// two responses. `circumvention_bytes = None` models the circumvention
/// copy not having arrived (phase 2 must then wait; callers handle the
/// timing — this function assumes it is available).
pub fn detect(
    direct_html: &str,
    direct_bytes: u64,
    circumvention_bytes: u64,
    p1: &Phase1Config,
    p2: &Phase2Config,
) -> Detection {
    match phase1_html(direct_html, p1) {
        Phase1Verdict::Normal => Detection::ServedImmediately,
        Phase1Verdict::BlockPage => {
            if phase2(direct_bytes, circumvention_bytes, p2) {
                Detection::ConfirmedBlockPage
            } else {
                Detection::FalsePositiveCorrected
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{corpus_47, real_pages};

    /// The headline claim of §4.3.1: ~80% of the 47-ISP corpus is caught
    /// in phase 1.
    #[test]
    fn phase1_catches_about_80_percent_of_corpus() {
        let cfg = Phase1Config::default();
        let corpus = corpus_47();
        let caught = corpus
            .iter()
            .filter(|s| phase1_html(&s.html, &cfg) == Phase1Verdict::BlockPage)
            .count();
        let rate = caught as f64 / corpus.len() as f64;
        assert!(
            (0.75..=0.90).contains(&rate),
            "phase-1 detection rate {rate:.2} ({caught}/47)"
        );
    }

    /// And with *zero* false positives on real pages.
    #[test]
    fn phase1_zero_false_positives() {
        let cfg = Phase1Config::default();
        for (i, page) in real_pages(64).iter().enumerate() {
            assert_eq!(
                phase1_html(page, &cfg),
                Phase1Verdict::Normal,
                "false positive on real page {i}"
            );
        }
    }

    /// Every phase-1-catchable family is actually caught; every
    /// portal-style evader escapes (that's phase 2's job).
    #[test]
    fn phase1_family_expectations() {
        let cfg = Phase1Config::default();
        for s in corpus_47() {
            let got = phase1_html(&s.html, &cfg) == Phase1Verdict::BlockPage;
            assert_eq!(
                got,
                s.phase1_catchable(),
                "{} ({:?}): phase1={}",
                s.isp,
                s.family,
                got
            );
        }
    }

    #[test]
    fn phase2_size_gap_confirms() {
        let cfg = Phase2Config::default();
        // Block page 1.4 KB vs real page 360 KB: confirmed.
        assert!(phase2(1_400, 360_000, &cfg));
        // Same page twice with 10% dynamic variation: not confirmed.
        assert!(!phase2(90_000, 100_000, &cfg));
        // Symmetric: direct larger also counts as manipulation.
        assert!(phase2(360_000, 1_400, &cfg));
        // Degenerate zero sizes.
        assert!(!phase2(0, 0, &cfg));
    }

    #[test]
    fn portal_evaders_caught_by_phase2() {
        let p1 = Phase1Config::default();
        let p2 = Phase2Config::default();
        let real_size = 360_000u64;
        for s in corpus_47() {
            let d = detect(&s.html, s.len() as u64, real_size, &p1, &p2);
            if s.phase1_catchable() {
                assert_eq!(d, Detection::ConfirmedBlockPage, "{}", s.isp);
            } else {
                // Portal pages sail through phase 1 — the redundant-copy
                // refresh correction (§4.3.1) handles them; detect() on the
                // *served* page reports ServedImmediately.
                assert_eq!(d, Detection::ServedImmediately, "{}", s.isp);
            }
        }
    }

    #[test]
    fn false_positive_would_be_corrected() {
        // Force a phase-1 positive with a synthetic small keyworded page
        // that is actually the true content (sizes match on both paths).
        let html = "<html><body><p>court order archive index</p></body></html>";
        let d = detect(
            html,
            html.len() as u64,
            html.len() as u64,
            &Phase1Config::default(),
            &Phase2Config::default(),
        );
        assert_eq!(d, Detection::FalsePositiveCorrected);
    }
}
