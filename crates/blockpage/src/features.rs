//! HTML features for block-page classification.
//!
//! Following Jones et al. (IMC 2014), which the paper's §4.3.1 cites for
//! its phase-1 heuristic, the discriminating signal is structural: block
//! pages are short, tag-sparse documents with few outbound links and
//! characteristic wording, while real pages are long, link-rich and
//! tag-dense. These features are cheap to extract from the first response
//! — no second fetch needed — which is what makes phase 1 fast.

/// Structural and lexical features of an HTML document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HtmlFeatures {
    /// Total byte length of the markup.
    pub length: usize,
    /// Number of opening tags.
    pub tag_count: usize,
    /// Number of anchor (`<a`) tags — block pages rarely link anywhere.
    pub link_count: usize,
    /// Number of `<img`/`<script`/`<link` resource references.
    pub resource_count: usize,
    /// Number of distinct block-page keywords found (case-insensitive).
    pub keyword_hits: usize,
    /// Whether an `<iframe` is present (ISP-B serves its block page via
    /// iframe, per Table 1).
    pub has_iframe: bool,
    /// Whether a `<meta http-equiv="refresh"` redirect is present.
    pub has_meta_refresh: bool,
}

/// Wording that betrays a block page. Drawn from the phrasing observed in
/// the citizenlab/ooni block-page collections the paper used: legal
/// notices, "surf safely" branding, access-denied boilerplate.
pub const BLOCK_KEYWORDS: &[&str] = &[
    "blocked",
    "denied",
    "prohibited",
    "restricted",
    "forbidden",
    "not accessible",
    "unacceptable",
    "censored",
    "surf safely",
    "pta",
    "ministry",
    "regulator",
    "court order",
    "objectionable",
    "unlawful",
    "this site can not be opened",
    "access to this site",
];

/// Extract features from markup.
pub fn extract(html: &str) -> HtmlFeatures {
    let lower = html.to_ascii_lowercase();
    let tag_count = count_tags(&lower);
    let link_count = lower.matches("<a ").count() + lower.matches("<a>").count();
    let resource_count = lower.matches("<img").count()
        + lower.matches("<script").count()
        + lower.matches("<link").count();
    let keyword_hits = BLOCK_KEYWORDS.iter().filter(|k| lower.contains(*k)).count();
    HtmlFeatures {
        length: html.len(),
        tag_count,
        link_count,
        resource_count,
        keyword_hits,
        has_iframe: lower.contains("<iframe"),
        has_meta_refresh: lower.contains("http-equiv=\"refresh\"")
            || lower.contains("http-equiv='refresh'"),
    }
}

/// Count opening tags: `<` followed by an ASCII letter.
fn count_tags(lower: &str) -> usize {
    let b = lower.as_bytes();
    let mut n = 0;
    for i in 0..b.len().saturating_sub(1) {
        if b[i] == b'<' && b[i + 1].is_ascii_lowercase() {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_tags_not_closers() {
        let f = extract("<html><body><p>x</p></body></html>");
        assert_eq!(f.tag_count, 3, "closing tags don't count");
    }

    #[test]
    fn keyword_hits_case_insensitive() {
        let f = extract("<html><body>Access DENIED by court ORDER</body></html>");
        assert!(f.keyword_hits >= 2, "hits {}", f.keyword_hits);
    }

    #[test]
    fn links_and_resources() {
        let f = extract(
            r#"<html><head><link rel="x"><script src="a.js"></script></head>
               <body><a href="/1">one</a><a href="/2">two</a><img src="p.jpg"></body></html>"#,
        );
        assert_eq!(f.link_count, 2);
        assert_eq!(f.resource_count, 3);
    }

    #[test]
    fn iframe_and_meta_refresh_flags() {
        let f = extract(r#"<html><body><iframe src="http://block.isp/"></iframe></body></html>"#);
        assert!(f.has_iframe);
        let g =
            extract(r#"<html><head><meta http-equiv="refresh" content="0;url=x"></head></html>"#);
        assert!(g.has_meta_refresh);
        let h = extract("<html><body>plain</body></html>");
        assert!(!h.has_iframe && !h.has_meta_refresh);
    }

    #[test]
    fn real_page_is_feature_rich() {
        let html = csaw_webproto::synth_html("A News Site", 60_000);
        let f = extract(&html);
        assert!(f.tag_count > 100);
        assert!(f.link_count >= 5);
        assert!(f.length > 50_000);
    }
}
