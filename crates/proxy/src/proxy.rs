//! The local C-Saw proxy over real sockets.
//!
//! This is the paper's client-side proxy (§4.3, §6) reduced to its
//! network essentials and run against the localhost testbed: browsers
//! connect to it, every URL's first visit triggers **redundant requests**
//! (direct path through the censoring middlebox, circumvention path
//! straight to the origin), responses pass through the 2-phase
//! block-page detector, the user is served the best copy, and every
//! verdict lands in a measurement log exportable as global-DB reports.

use crate::codec::{read_request, read_response, write_request, write_response};
use crate::testbed::resolver::TestResolver;
use csaw::global::Report;
use csaw_blockpage::{phase1_html, phase2, Phase1Config, Phase1Verdict, Phase2Config};
use csaw_obs::clock::Clock;
use csaw_obs::metrics::Registry;
use csaw_webproto::bytes::BytesMut;
use csaw_webproto::http::{Request, Response};
use csaw_webproto::url::Scheme;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a host's blocking manifested on the direct path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxySignature {
    /// A block page was served.
    BlockPage,
    /// The GET never got a response.
    GetTimeout,
    /// The connection was reset mid-exchange.
    ConnectionReset,
    /// The direct path would not even connect.
    ConnectFailed,
}

impl ProxySignature {
    /// The blocking-type this signature evidences, for global-DB reports.
    pub fn blocking_type(self) -> csaw_censor::BlockingType {
        match self {
            ProxySignature::BlockPage => csaw_censor::BlockingType::HttpBlockPageInline,
            ProxySignature::GetTimeout => csaw_censor::BlockingType::HttpDrop,
            ProxySignature::ConnectionReset => csaw_censor::BlockingType::HttpRst,
            ProxySignature::ConnectFailed => csaw_censor::BlockingType::IpRst,
        }
    }

    /// Metrics label for this signature.
    fn metric_name(self) -> &'static str {
        match self {
            ProxySignature::BlockPage => "block_page",
            ProxySignature::GetTimeout => "get_timeout",
            ProxySignature::ConnectionReset => "connection_reset",
            ProxySignature::ConnectFailed => "connect_failed",
        }
    }
}

/// One measurement the proxy made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyMeasurement {
    /// The affected host.
    pub host: String,
    /// Scheme the browser used for the blocked fetch. Reports must
    /// carry the *observed* URL — a censor that blocks `https://host`
    /// but not `http://host` is a different record.
    pub scheme: Scheme,
    /// What was observed.
    pub signature: ProxySignature,
    /// Measurement time (`T_m`) in µs on the observability clock — the
    /// same virtual clock the rest of the pipeline runs on, so reports
    /// exported from a simulation timeline sort correctly against
    /// simulated ones. (Embedders running on wall time install a wall
    /// clock in the obs scope and get wall µs.)
    pub measured_at_us: u64,
}

/// Blocking status the proxy tracks per host (its in-memory local DB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostStatus {
    /// Never measured.
    NotMeasured,
    /// Direct path blocked.
    Blocked(ProxySignature),
    /// Direct path clean.
    NotBlocked,
}

/// Proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProxyConfig {
    /// GET timeout on the direct path (short in tests; the paper's
    /// deployments use browser-scale timeouts).
    pub get_timeout: Duration,
    /// Phase-1 classifier thresholds.
    pub phase1: Phase1Config,
    /// Phase-2 size-comparison threshold.
    pub phase2: Phase2Config,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            get_timeout: Duration::from_millis(500),
            phase1: Phase1Config::default(),
            phase2: Phase2Config::default(),
        }
    }
}

#[derive(Debug)]
struct ProxyState {
    resolver: Arc<TestResolver>,
    cfg: ProxyConfig,
    status: RwLock<HashMap<String, HostStatus>>,
    measurements: Mutex<Vec<ProxyMeasurement>>,
    // Captured at spawn time so handler threads (which don't inherit the
    // spawner's thread-local observability scope) report into the same
    // registry — and stamp measurements from the same clock — the
    // embedding experiment installed.
    obs: Arc<Registry>,
    clock: Arc<dyn Clock>,
    // Monotone request ordinal feeding PROXY-stream trace-id derivation.
    req_seq: AtomicU64,
}

/// A running local proxy.
#[derive(Debug)]
pub struct CsawProxy {
    /// The address browsers point at.
    pub addr: SocketAddr,
    state: Arc<ProxyState>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for CsawProxy {
    fn drop(&mut self) {
        // The accept loop is non-blocking and re-checks this flag every
        // pass, so setting it is sufficient — no wake-up connection
        // (which used to race real clients arriving at shutdown).
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl CsawProxy {
    /// Current status of a host.
    pub fn host_status(&self, host: &str) -> HostStatus {
        self.state
            .status
            .read()
            .unwrap()
            .get(&host.to_ascii_lowercase())
            .copied()
            .unwrap_or(HostStatus::NotMeasured)
    }

    /// Snapshot of the measurement log.
    pub fn measurements(&self) -> Vec<ProxyMeasurement> {
        self.state.measurements.lock().unwrap().clone()
    }

    /// Export the log as global-DB reports (host-level URLs, observed
    /// scheme, obs-clock timestamps).
    pub fn to_reports(&self, asn: u32) -> Vec<Report> {
        self.measurements()
            .into_iter()
            .map(|m| Report {
                url: format!("{}://{}/", m.scheme.as_str(), m.host),
                asn,
                measured_at_us: m.measured_at_us,
                stages: vec![m.signature.blocking_type()],
            })
            .collect()
    }
}

/// Outcome of one single-path fetch attempt.
enum PathFetch {
    Ok(Response),
    Timeout,
    Reset,
    ConnectFailed,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn fetch_one(addr: SocketAddr, req: &Request, timeout: Duration) -> PathFetch {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return PathFetch::ConnectFailed; // refused/unreachable/timed out
    };
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return PathFetch::Reset;
    }
    if write_request(&mut stream, req).is_err() {
        return PathFetch::Reset;
    }
    let mut buf = BytesMut::new();
    match read_response(&mut stream, &mut buf) {
        Ok(resp) => PathFetch::Ok(resp),
        Err(e) if is_timeout(&e) => PathFetch::Timeout,
        Err(_) => PathFetch::Reset,
    }
}

/// Spawn the proxy on an ephemeral 127.0.0.1 port.
pub fn spawn_proxy(resolver: Arc<TestResolver>, cfg: ProxyConfig) -> std::io::Result<CsawProxy> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    // Non-blocking accept: the loop re-checks `stop` *before* every
    // accept attempt, so shutdown never depends on one more connection
    // arriving. (The old blocking loop checked `stop` only after
    // `accept()` returned, and `Drop` had to race a wake-up connect
    // against real clients.)
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let obs_ctx = csaw_obs::scope::current();
    let state = Arc::new(ProxyState {
        resolver,
        cfg,
        status: RwLock::new(HashMap::new()),
        measurements: Mutex::new(Vec::new()),
        obs: obs_ctx.registry.clone(),
        clock: obs_ctx.clock.clone(),
        req_seq: AtomicU64::new(0),
    });
    let state2 = Arc::clone(&state);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || loop {
        if stop2.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Handlers use blocking reads with timeouts; undo the
                // non-blocking mode inherited on some platforms.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let state = Arc::clone(&state2);
                std::thread::spawn(move || handle_browser(stream, state));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::park_timeout(Duration::from_micros(100));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    });
    Ok(CsawProxy {
        addr,
        state,
        stop,
        handle: Some(handle),
    })
}

fn handle_browser(mut browser: TcpStream, state: Arc<ProxyState>) {
    let mut buf = BytesMut::new();
    while let Ok(Some(req)) = read_request(&mut browser, &mut buf) {
        state.obs.counter("proxy.requests").inc();
        let Some(host) = req.host() else {
            let _ = write_response(&mut browser, &Response::error(400, "Bad Request"));
            continue;
        };
        // Each proxied request is one causal tree on the PROXY stream.
        // The ordinal (not wall clock) feeds id derivation, matching the
        // simulation's determinism contract; the span guard measures the
        // request on the context (wall) clock.
        let obs_ctx = csaw_obs::scope::current();
        let _root = obs_ctx.sink.enabled().then(|| {
            let seq = state.req_seq.fetch_add(1, Ordering::Relaxed);
            csaw_obs::trace::root(
                csaw_obs::trace::derive(0, csaw_obs::trace::stream::PROXY, seq),
                obs_ctx.clock.now_us(),
            )
        });
        let mut span = csaw_obs::event::span("proxy.request");
        span.field("host", host.as_str());
        // Rewrite absolute-form targets to origin-form for upstreams,
        // remembering the scheme the browser asked for — reports must
        // not collapse `https://host` into `http://host`.
        let mut upstream_req = req.clone();
        let mut scheme = Scheme::Http;
        let absolute = match upstream_req.target.strip_prefix("http://") {
            Some(rest) => Some(rest),
            None => {
                let rest = upstream_req.target.strip_prefix("https://");
                if rest.is_some() {
                    scheme = Scheme::Https;
                }
                rest
            }
        };
        if let Some(rest) = absolute {
            upstream_req.target = match rest.find('/') {
                Some(i) => rest[i..].to_string(),
                None => "/".to_string(),
            };
        }
        let resp = serve_url(&state, &host, scheme, &upstream_req);
        span.field("status", resp.status as u64);
        drop(span);
        if write_response(&mut browser, &resp).is_err() {
            return;
        }
    }
}

fn record(state: &ProxyState, host: &str, scheme: Scheme, sig: ProxySignature) {
    // Check-and-set under the write lock: concurrent first visits race
    // their measurements, but only the first one gets to log (the rest
    // observed the same event).
    {
        let mut status = state.status.write().unwrap();
        if matches!(status.get(host), Some(HostStatus::Blocked(_))) {
            return;
        }
        status.insert(host.to_string(), HostStatus::Blocked(sig));
    }
    state
        .obs
        .counter(&format!("proxy.blocked.{}", sig.metric_name()))
        .inc();
    state.measurements.lock().unwrap().push(ProxyMeasurement {
        host: host.to_string(),
        scheme,
        signature: sig,
        measured_at_us: state.clock.now_us(),
    });
}

fn serve_url(state: &ProxyState, host: &str, scheme: Scheme, req: &Request) -> Response {
    let Some(res) = state.resolver.resolve(host) else {
        return Response::error(502, "Unresolvable");
    };
    let status = state
        .status
        .read()
        .unwrap()
        .get(host)
        .copied()
        .unwrap_or(HostStatus::NotMeasured);
    let timeout = state.cfg.get_timeout;
    match status {
        HostStatus::Blocked(_) => {
            // Known blocked: circumvention path only.
            state.obs.counter("proxy.circumvention_only").inc();
            match fetch_one(res.clean, req, timeout * 4) {
                PathFetch::Ok(r) => r,
                _ => Response::error(504, "Circumvention Failed"),
            }
        }
        HostStatus::NotBlocked => {
            // Selective redundancy: direct only, but measured in-line.
            match fetch_one(res.direct, req, timeout) {
                PathFetch::Ok(r) => {
                    let html = String::from_utf8_lossy(&r.body);
                    if phase1_html(&html, &state.cfg.phase1) == Phase1Verdict::BlockPage {
                        // Fresh censorship (Scenario B): re-fetch clean.
                        record(state, host, scheme, ProxySignature::BlockPage);
                        match fetch_one(res.clean, req, timeout * 4) {
                            PathFetch::Ok(clean) => clean,
                            _ => r,
                        }
                    } else {
                        r
                    }
                }
                PathFetch::Timeout => {
                    record(state, host, scheme, ProxySignature::GetTimeout);
                    match fetch_one(res.clean, req, timeout * 4) {
                        PathFetch::Ok(r) => r,
                        _ => Response::error(504, "Gateway Timeout"),
                    }
                }
                PathFetch::Reset | PathFetch::ConnectFailed => {
                    record(state, host, scheme, ProxySignature::ConnectionReset);
                    match fetch_one(res.clean, req, timeout * 4) {
                        PathFetch::Ok(r) => r,
                        _ => Response::error(502, "Bad Gateway"),
                    }
                }
            }
        }
        HostStatus::NotMeasured => {
            // Redundant requests: both paths race (parallel mode).
            state.obs.counter("proxy.redundant_requests").inc();
            let direct_req = req.clone();
            let direct_addr = res.direct;
            let direct_handle =
                std::thread::spawn(move || fetch_one(direct_addr, &direct_req, timeout));
            let clean = fetch_one(res.clean, req, timeout * 4);
            let direct = direct_handle.join().unwrap_or(PathFetch::ConnectFailed);
            let clean_resp = match clean {
                PathFetch::Ok(r) => Some(r),
                _ => None,
            };
            match direct {
                PathFetch::Ok(direct_resp) => {
                    let html = String::from_utf8_lossy(&direct_resp.body);
                    let flagged = phase1_html(&html, &state.cfg.phase1) == Phase1Verdict::BlockPage;
                    let confirmed = match (&flagged, &clean_resp) {
                        (true, Some(c)) => phase2(
                            direct_resp.body.len() as u64,
                            c.body.len() as u64,
                            &state.cfg.phase2,
                        ),
                        (true, None) => true,
                        (false, Some(c)) => {
                            // Phase-2 catches portal-style evaders.
                            phase2(
                                direct_resp.body.len() as u64,
                                c.body.len() as u64,
                                &state.cfg.phase2,
                            )
                        }
                        (false, None) => false,
                    };
                    if confirmed {
                        record(state, host, scheme, ProxySignature::BlockPage);
                        clean_resp.unwrap_or(direct_resp)
                    } else {
                        state
                            .status
                            .write()
                            .unwrap()
                            .insert(host.to_string(), HostStatus::NotBlocked);
                        direct_resp
                    }
                }
                PathFetch::Timeout => {
                    if let Some(c) = clean_resp {
                        record(state, host, scheme, ProxySignature::GetTimeout);
                        c
                    } else {
                        // Both paths dead: network problem; stay unmeasured.
                        Response::error(504, "Gateway Timeout")
                    }
                }
                PathFetch::Reset => {
                    if let Some(c) = clean_resp {
                        record(state, host, scheme, ProxySignature::ConnectionReset);
                        c
                    } else {
                        Response::error(502, "Bad Gateway")
                    }
                }
                PathFetch::ConnectFailed => {
                    if let Some(c) = clean_resp {
                        record(state, host, scheme, ProxySignature::ConnectFailed);
                        c
                    } else {
                        Response::error(502, "Bad Gateway")
                    }
                }
            }
        }
    }
}
