//! Blocking HTTP/1.1 framing over `std::net` streams, built on the
//! incremental parsers from `csaw-webproto`.
//!
//! The framing rules: accumulate into a `BytesMut`, attempt a parse
//! after every read, and distinguish "need more bytes" from a genuinely
//! malformed or closed stream.

use csaw_webproto::bytes::BytesMut;
use csaw_webproto::http::{Request, Response};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum message size we will buffer (sanity cap against abuse).
pub const MAX_MESSAGE_BYTES: usize = 8 * 1024 * 1024;

fn read_some(stream: &mut TcpStream, buf: &mut BytesMut) -> io::Result<usize> {
    let mut chunk = [0u8; 16 * 1024];
    let n = stream.read(&mut chunk)?;
    buf.extend_from_slice(&chunk[..n]);
    Ok(n)
}

/// Read one HTTP request from the stream. `Ok(None)` means the peer
/// closed cleanly before sending a full request.
pub fn read_request(stream: &mut TcpStream, buf: &mut BytesMut) -> io::Result<Option<Request>> {
    loop {
        match Request::parse(buf) {
            Ok(Some((req, used))) => {
                let _ = buf.split_to(used);
                return Ok(Some(req));
            }
            Ok(None) => {}
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad request: {e}"),
                ))
            }
        }
        if buf.len() > MAX_MESSAGE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request too large",
            ));
        }
        let n = read_some(stream, buf)?;
        if n == 0 {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            };
        }
    }
}

/// Read one HTTP response from a whole stream.
pub fn read_response(stream: &mut TcpStream, buf: &mut BytesMut) -> io::Result<Response> {
    loop {
        match Response::parse(buf) {
            Ok(Some((resp, used))) => {
                let _ = buf.split_to(used);
                return Ok(resp);
            }
            Ok(None) => {}
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad response: {e}"),
                ))
            }
        }
        if buf.len() > MAX_MESSAGE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response too large",
            ));
        }
        let n = read_some(stream, buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
    }
}

/// Write a request.
pub fn write_request(stream: &mut TcpStream, req: &Request) -> io::Result<()> {
    stream.write_all(&req.encode())?;
    stream.flush()
}

/// Write a response.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    stream.write_all(&resp.encode())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_webproto::url::Url;
    use std::net::TcpListener;

    #[test]
    fn request_roundtrip_over_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = BytesMut::new();
            let req = read_request(&mut s, &mut buf).unwrap().unwrap();
            assert_eq!(req.host().as_deref(), Some("example.com"));
            write_response(&mut s, &Response::ok_html("<html>hi</html>")).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let url = Url::parse("http://example.com/page").unwrap();
        write_request(&mut client, &Request::get(&url)).unwrap();
        let mut buf = BytesMut::new();
        let resp = read_response(&mut client, &mut buf).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body[..], b"<html>hi</html>");
        server.join().unwrap();
    }

    #[test]
    fn clean_close_before_request_is_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = BytesMut::new();
            let r = read_request(&mut s, &mut buf).unwrap();
            assert!(r.is_none());
        });
        let client = TcpStream::connect(addr).unwrap();
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn mid_message_close_is_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = BytesMut::new();
            let err = read_request(&mut s, &mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"GET /partial HTTP/1.1\r\nHos").unwrap();
        client.flush().unwrap();
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn garbage_is_invalid_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = BytesMut::new();
            let err = read_request(&mut s, &mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"BREW /pot HTCPCP/1.0\r\n\r\n").unwrap();
        client.flush().unwrap();
        server.join().unwrap();
    }
}
