//! Blocking HTTP/1.1 framing over `std::net` streams.
//!
//! The implementation lives in [`csaw_webproto::codec`] (shared with
//! the global-DB server's length-framed protocol); this module
//! re-exports it under the proxy's historical path. The framing rules:
//! accumulate into a `BytesMut`, attempt a parse after every read, and
//! distinguish "need more bytes" from a genuinely malformed or closed
//! stream.

pub use csaw_webproto::codec::{
    read_request, read_response, read_some, write_request, write_response, MAX_MESSAGE_BYTES,
};

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_webproto::bytes::BytesMut;
    use csaw_webproto::http::Response;
    use csaw_webproto::url::Url;
    use csaw_webproto::Request;
    use std::io::{self, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn request_roundtrip_over_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = BytesMut::new();
            let req = read_request(&mut s, &mut buf).unwrap().unwrap();
            assert_eq!(req.host().as_deref(), Some("example.com"));
            write_response(&mut s, &Response::ok_html("<html>hi</html>")).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let url = Url::parse("http://example.com/page").unwrap();
        write_request(&mut client, &Request::get(&url)).unwrap();
        let mut buf = BytesMut::new();
        let resp = read_response(&mut client, &mut buf).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body[..], b"<html>hi</html>");
        server.join().unwrap();
    }

    #[test]
    fn clean_close_before_request_is_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = BytesMut::new();
            let r = read_request(&mut s, &mut buf).unwrap();
            assert!(r.is_none());
        });
        let client = TcpStream::connect(addr).unwrap();
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn mid_message_close_is_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = BytesMut::new();
            let err = read_request(&mut s, &mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"GET /partial HTTP/1.1\r\nHos").unwrap();
        client.flush().unwrap();
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn garbage_is_invalid_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = BytesMut::new();
            let err = read_request(&mut s, &mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"BREW /pot HTCPCP/1.0\r\n\r\n").unwrap();
        client.flush().unwrap();
        server.join().unwrap();
    }
}
