//! # csaw-proxy — the real-socket C-Saw proxy and its testbed
//!
//! Everything else in this repository runs in deterministic virtual time;
//! this crate proves the design on an actual network stack. It provides:
//!
//! - [`codec`]: blocking HTTP/1.1 framing over `std::net` streams;
//! - [`testbed`]: origin servers, a censoring middlebox (pass / drop /
//!   reset / block-page, runtime-switchable), and a resolver that maps
//!   each host to its direct (censored) and clean (circumvention) paths;
//! - [`proxy`]: the local C-Saw proxy — redundant requests racing both
//!   paths, 2-phase block-page detection on live responses, per-host
//!   status tracking, and a measurement log exportable as global-DB
//!   reports.
//!
//! Integration tests in the workspace root drive a browser → proxy →
//! middlebox → origin chain entirely over 127.0.0.1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod proxy;
pub mod testbed;

pub use proxy::{
    spawn_proxy, CsawProxy, HostStatus, ProxyConfig, ProxyMeasurement, ProxySignature,
};
pub use testbed::{
    spawn_middlebox, spawn_origin, MbAction, MbPolicy, Middlebox, Origin, OriginConfig, Resolution,
    TestResolver,
};
