//! A threaded HTTP/1.1 origin server for the localhost testbed.
//!
//! Serves configurable pages with `Content-Length`, keep-alive style,
//! binding an ephemeral 127.0.0.1 port. Stands in for the censored
//! destination sites; the "circumvention path" in the testbed is a
//! direct connection here, the "direct path" goes through the
//! censoring middlebox.

use crate::codec::{read_request, write_response};
use csaw_webproto::bytes::BytesMut;
use csaw_webproto::http::Response;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running origin server.
#[derive(Debug)]
pub struct Origin {
    /// The hostname this origin serves.
    pub host: String,
    /// Bound address.
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Origin {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocked accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Configuration for an origin.
#[derive(Debug, Clone)]
pub struct OriginConfig {
    /// Hostname (used to synthesize default pages).
    pub host: String,
    /// Explicit pages by path.
    pub pages: HashMap<String, String>,
    /// Size of synthesized pages for unlisted paths.
    pub default_page_bytes: usize,
}

impl OriginConfig {
    /// An origin serving synthesized pages of the given size.
    pub fn new(host: &str, default_page_bytes: usize) -> OriginConfig {
        OriginConfig {
            host: host.to_string(),
            pages: HashMap::new(),
            default_page_bytes,
        }
    }

    /// Add an explicit page.
    pub fn page(mut self, path: &str, html: &str) -> OriginConfig {
        self.pages.insert(path.to_string(), html.to_string());
        self
    }
}

/// Spawn an origin server on an ephemeral port.
pub fn spawn_origin(cfg: OriginConfig) -> std::io::Result<Origin> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let host = cfg.host.clone();
    let cfg = Arc::new(cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        loop {
            let Ok((mut stream, _)) = listener.accept() else {
                break;
            };
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let cfg = Arc::clone(&cfg);
            std::thread::spawn(move || {
                let mut buf = BytesMut::new();
                // Keep-alive loop: serve requests until the peer closes.
                while let Ok(Some(req)) = read_request(&mut stream, &mut buf) {
                    let path = req.target.split('?').next().unwrap_or("/").to_string();
                    let html = cfg.pages.get(&path).cloned().unwrap_or_else(|| {
                        csaw_webproto::synth_html(&cfg.host, cfg.default_page_bytes)
                    });
                    let resp = Response::ok_html(html);
                    if write_response(&mut stream, &resp).is_err() {
                        break;
                    }
                }
            });
        }
    });
    Ok(Origin {
        host,
        addr,
        stop,
        handle: Some(handle),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_response, write_request};
    use csaw_webproto::http::Request;
    use csaw_webproto::url::Url;

    #[test]
    fn serves_default_and_explicit_pages() {
        let origin = spawn_origin(
            OriginConfig::new("site.test", 20_000)
                .page("/hello", "<html><body>explicit</body></html>"),
        )
        .unwrap();
        let mut s = TcpStream::connect(origin.addr).unwrap();
        let mut buf = BytesMut::new();

        let url = Url::parse("http://site.test/hello").unwrap();
        write_request(&mut s, &Request::get(&url)).unwrap();
        let r = read_response(&mut s, &mut buf).unwrap();
        assert!(std::str::from_utf8(&r.body).unwrap().contains("explicit"));

        // Keep-alive: second request on the same connection.
        let url = Url::parse("http://site.test/other").unwrap();
        write_request(&mut s, &Request::get(&url)).unwrap();
        let r = read_response(&mut s, &mut buf).unwrap();
        assert!(r.body.len() >= 18_000, "{}", r.body.len());
    }
}
