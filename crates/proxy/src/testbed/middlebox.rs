//! The censoring middlebox: a TCP forwarder that inspects HTTP requests
//! and applies per-host blocking actions — the testbed's stand-in for a
//! filtering ISP.
//!
//! Actions mirror the paper's §2.1 HTTP-level taxonomy: pass, silently
//! drop the request (client burns its GET timeout), inject a reset, or
//! serve a block page. Actions are runtime-mutable so tests can flip
//! blocking on mid-run (the §7.5 "in the wild" situation).

use crate::codec::{read_request, write_response};
use csaw_webproto::bytes::BytesMut;
use csaw_webproto::http::Response;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

/// What the middlebox does to requests for a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MbAction {
    /// Forward untouched.
    Pass,
    /// Swallow the request; never respond.
    DropRequest,
    /// Kill the connection (RST-ish: abortive close).
    Reset,
    /// Serve the configured block page.
    BlockPage,
}

/// Runtime-mutable middlebox policy.
#[derive(Debug, Default)]
pub struct MbPolicy {
    /// host → upstream origin address.
    pub routes: HashMap<String, SocketAddr>,
    /// host → action (missing = Pass).
    pub actions: HashMap<String, MbAction>,
    /// Block-page markup.
    pub block_page_html: String,
}

/// A running middlebox.
#[derive(Debug)]
pub struct Middlebox {
    /// The address clients' "direct path" connects to.
    pub addr: SocketAddr,
    policy: Arc<RwLock<MbPolicy>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Middlebox {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocked accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Middlebox {
    /// Change the action for a host at runtime.
    pub fn set_action(&self, host: &str, action: MbAction) {
        self.policy
            .write()
            .unwrap()
            .actions
            .insert(host.to_ascii_lowercase(), action);
    }

    /// Route a host to an upstream origin.
    pub fn set_route(&self, host: &str, upstream: SocketAddr) {
        self.policy
            .write()
            .unwrap()
            .routes
            .insert(host.to_ascii_lowercase(), upstream);
    }
}

/// Spawn a middlebox with an initial policy.
pub fn spawn_middlebox(initial: MbPolicy) -> std::io::Result<Middlebox> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let policy = Arc::new(RwLock::new(initial));
    let policy2 = Arc::clone(&policy);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if stop2.load(Ordering::SeqCst) {
            break;
        }
        let policy = Arc::clone(&policy2);
        std::thread::spawn(move || handle_conn(stream, policy));
    });
    Ok(Middlebox {
        addr,
        policy,
        stop,
        handle: Some(handle),
    })
}

fn handle_conn(mut client: TcpStream, policy: Arc<RwLock<MbPolicy>>) {
    let mut buf = BytesMut::new();
    while let Ok(Some(req)) = read_request(&mut client, &mut buf) {
        csaw_obs::inc("middlebox.requests");
        let host = req.host().unwrap_or_default();
        let (action, upstream, block_html) = {
            let p = policy.read().unwrap();
            (
                p.actions.get(&host).cloned().unwrap_or(MbAction::Pass),
                p.routes.get(&host).copied(),
                p.block_page_html.clone(),
            )
        };
        match action {
            MbAction::Pass => {
                let Some(upstream) = upstream else {
                    let _ = write_response(&mut client, &Response::error(502, "Bad Gateway"));
                    continue;
                };
                // Forward request, relay one response.
                match TcpStream::connect(upstream) {
                    Ok(mut up) => {
                        if crate::codec::write_request(&mut up, &req).is_err() {
                            let _ =
                                write_response(&mut client, &Response::error(502, "Bad Gateway"));
                            continue;
                        }
                        let mut ubuf = BytesMut::new();
                        match crate::codec::read_response(&mut up, &mut ubuf) {
                            Ok(resp) => {
                                if write_response(&mut client, &resp).is_err() {
                                    return;
                                }
                            }
                            Err(_) => {
                                let _ = write_response(
                                    &mut client,
                                    &Response::error(502, "Bad Gateway"),
                                );
                            }
                        }
                    }
                    Err(_) => {
                        let _ = write_response(&mut client, &Response::error(502, "Bad Gateway"));
                    }
                }
            }
            MbAction::DropRequest => {
                // Swallow: never answer, keep the socket open so the
                // client times out exactly like against a silent censor.
                // Park until the client gives up and closes.
                csaw_obs::inc("middlebox.dropped");
                let mut sink = [0u8; 1024];
                while let Ok(n) = client.read(&mut sink) {
                    if n == 0 {
                        break;
                    }
                }
                return;
            }
            MbAction::Reset => {
                // Kill the connection after seeing the request. The peer
                // observes the stream dying mid-exchange; whether the
                // kernel emits FIN or RST, the client-visible signature is
                // the same "connection reset by censor" failure.
                csaw_obs::inc("middlebox.reset");
                return;
            }
            MbAction::BlockPage => {
                csaw_obs::inc("middlebox.block_pages");
                let resp = Response::ok_html(block_html);
                if write_response(&mut client, &resp).is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_response, write_request};
    use crate::testbed::origin::{spawn_origin, OriginConfig};
    use csaw_webproto::http::Request;
    use csaw_webproto::url::Url;
    use std::time::Duration;

    fn fetch_via(mb: SocketAddr, url: &str, timeout: Duration) -> Result<Response, &'static str> {
        let mut s = TcpStream::connect(mb).map_err(|_| "connect")?;
        s.set_read_timeout(Some(timeout)).unwrap();
        let url = Url::parse(url).unwrap();
        write_request(&mut s, &Request::get(&url)).map_err(|_| "write")?;
        let mut buf = BytesMut::new();
        match read_response(&mut s, &mut buf) {
            Ok(r) => Ok(r),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err("timeout")
            }
            Err(_) => Err("reset"),
        }
    }

    #[test]
    fn pass_drop_reset_blockpage() {
        let origin = spawn_origin(OriginConfig::new("ok.test", 5_000)).unwrap();
        let blocked_origin = spawn_origin(OriginConfig::new("bad.test", 5_000)).unwrap();
        let mut policy = MbPolicy {
            block_page_html:
                "<html><body><h1>Access Denied</h1><p>blocked by order</p></body></html>".into(),
            ..Default::default()
        };
        policy.routes.insert("ok.test".into(), origin.addr);
        policy.routes.insert("bad.test".into(), blocked_origin.addr);
        let mb = spawn_middlebox(policy).unwrap();

        // Pass.
        let r = fetch_via(mb.addr, "http://ok.test/", Duration::from_secs(2)).unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body.len() > 4_000);

        // Block page.
        mb.set_action("bad.test", MbAction::BlockPage);
        let r = fetch_via(mb.addr, "http://bad.test/", Duration::from_secs(2)).unwrap();
        assert!(std::str::from_utf8(&r.body)
            .unwrap()
            .contains("Access Denied"));

        // Drop: times out.
        mb.set_action("bad.test", MbAction::DropRequest);
        let e = fetch_via(mb.addr, "http://bad.test/", Duration::from_millis(300));
        assert_eq!(e.unwrap_err(), "timeout");

        // Reset: connection dies.
        mb.set_action("bad.test", MbAction::Reset);
        let e = fetch_via(mb.addr, "http://bad.test/", Duration::from_secs(2));
        assert_eq!(e.unwrap_err(), "reset");

        // Flip back to pass mid-run (the §7.5 unblocking event).
        mb.set_action("bad.test", MbAction::Pass);
        let r = fetch_via(mb.addr, "http://bad.test/", Duration::from_secs(2)).unwrap();
        assert_eq!(r.status, 200);
    }

    #[test]
    fn unrouted_host_is_bad_gateway() {
        let mb = spawn_middlebox(MbPolicy::default()).unwrap();
        let r = fetch_via(mb.addr, "http://nowhere.test/", Duration::from_secs(2)).unwrap();
        assert_eq!(r.status, 502);
    }
}
