//! The censoring middlebox: a TCP forwarder that inspects HTTP requests
//! and applies per-host blocking actions — the testbed's stand-in for a
//! filtering ISP.
//!
//! Actions mirror the paper's §2.1 HTTP-level taxonomy: pass, silently
//! drop the request (client burns its GET timeout), inject a reset, or
//! serve a block page. Actions are runtime-mutable so tests can flip
//! blocking on mid-run (the §7.5 "in the wild" situation).

use crate::codec::{read_request, write_response};
use bytes::BytesMut;
use csaw_webproto::http::Response;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::{TcpListener, TcpStream};
use tokio::task::JoinHandle;

/// What the middlebox does to requests for a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MbAction {
    /// Forward untouched.
    Pass,
    /// Swallow the request; never respond.
    DropRequest,
    /// Kill the connection (RST-ish: abortive close).
    Reset,
    /// Serve the configured block page.
    BlockPage,
}

/// Runtime-mutable middlebox policy.
#[derive(Debug, Default)]
pub struct MbPolicy {
    /// host → upstream origin address.
    pub routes: HashMap<String, SocketAddr>,
    /// host → action (missing = Pass).
    pub actions: HashMap<String, MbAction>,
    /// Block-page markup.
    pub block_page_html: String,
}

/// A running middlebox.
#[derive(Debug)]
pub struct Middlebox {
    /// The address clients' "direct path" connects to.
    pub addr: SocketAddr,
    policy: Arc<RwLock<MbPolicy>>,
    handle: JoinHandle<()>,
}

impl Drop for Middlebox {
    fn drop(&mut self) {
        self.handle.abort();
    }
}

impl Middlebox {
    /// Change the action for a host at runtime.
    pub fn set_action(&self, host: &str, action: MbAction) {
        self.policy
            .write()
            .actions
            .insert(host.to_ascii_lowercase(), action);
    }

    /// Route a host to an upstream origin.
    pub fn set_route(&self, host: &str, upstream: SocketAddr) {
        self.policy
            .write()
            .routes
            .insert(host.to_ascii_lowercase(), upstream);
    }
}

/// Spawn a middlebox with an initial policy.
pub async fn spawn_middlebox(initial: MbPolicy) -> std::io::Result<Middlebox> {
    let listener = TcpListener::bind("127.0.0.1:0").await?;
    let addr = listener.local_addr()?;
    let policy = Arc::new(RwLock::new(initial));
    let policy2 = Arc::clone(&policy);
    let handle = tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else {
                break;
            };
            let policy = Arc::clone(&policy2);
            tokio::spawn(handle_conn(stream, policy));
        }
    });
    Ok(Middlebox {
        addr,
        policy,
        handle,
    })
}

async fn handle_conn(mut client: TcpStream, policy: Arc<RwLock<MbPolicy>>) {
    let mut buf = BytesMut::new();
    while let Ok(Some(req)) = read_request(&mut client, &mut buf).await {
        let host = req.host().unwrap_or_default();
        let (action, upstream, block_html) = {
            let p = policy.read();
            (
                p.actions.get(&host).cloned().unwrap_or(MbAction::Pass),
                p.routes.get(&host).copied(),
                p.block_page_html.clone(),
            )
        };
        match action {
            MbAction::Pass => {
                let Some(upstream) = upstream else {
                    let _ = write_response(&mut client, &Response::error(502, "Bad Gateway")).await;
                    continue;
                };
                // Forward request, relay one response.
                match TcpStream::connect(upstream).await {
                    Ok(mut up) => {
                        if crate::codec::write_request(&mut up, &req).await.is_err() {
                            let _ =
                                write_response(&mut client, &Response::error(502, "Bad Gateway"))
                                    .await;
                            continue;
                        }
                        let mut ubuf = BytesMut::new();
                        match crate::codec::read_response(&mut up, &mut ubuf).await {
                            Ok(resp) => {
                                if write_response(&mut client, &resp).await.is_err() {
                                    return;
                                }
                            }
                            Err(_) => {
                                let _ = write_response(
                                    &mut client,
                                    &Response::error(502, "Bad Gateway"),
                                )
                                .await;
                            }
                        }
                    }
                    Err(_) => {
                        let _ = write_response(&mut client, &Response::error(502, "Bad Gateway"))
                            .await;
                    }
                }
            }
            MbAction::DropRequest => {
                // Swallow: never answer, keep the socket open so the
                // client times out exactly like against a silent censor.
                // Park until the client gives up and closes.
                let mut sink = [0u8; 1024];
                use tokio::io::AsyncReadExt;
                while let Ok(n) = client.read(&mut sink).await {
                    if n == 0 {
                        break;
                    }
                }
                return;
            }
            MbAction::Reset => {
                // Kill the connection after seeing the request. The peer
                // observes the stream dying mid-exchange; whether the
                // kernel emits FIN or RST, the client-visible signature is
                // the same "connection reset by censor" failure.
                return;
            }
            MbAction::BlockPage => {
                let resp = Response::ok_html(block_html);
                if write_response(&mut client, &resp).await.is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_response, write_request};
    use crate::testbed::origin::{spawn_origin, OriginConfig};
    use csaw_webproto::http::Request;
    use csaw_webproto::url::Url;
    use std::time::Duration;

    async fn fetch_via(
        mb: SocketAddr,
        url: &str,
        timeout: Duration,
    ) -> Result<Response, &'static str> {
        let mut s = TcpStream::connect(mb).await.map_err(|_| "connect")?;
        let url = Url::parse(url).unwrap();
        write_request(&mut s, &Request::get(&url))
            .await
            .map_err(|_| "write")?;
        let mut buf = BytesMut::new();
        match tokio::time::timeout(timeout, read_response(&mut s, &mut buf)).await {
            Err(_) => Err("timeout"),
            Ok(Err(_)) => Err("reset"),
            Ok(Ok(r)) => Ok(r),
        }
    }

    #[tokio::test]
    async fn pass_drop_reset_blockpage() {
        let origin = spawn_origin(OriginConfig::new("ok.test", 5_000)).await.unwrap();
        let blocked_origin = spawn_origin(OriginConfig::new("bad.test", 5_000)).await.unwrap();
        let mut policy = MbPolicy {
            block_page_html: "<html><body><h1>Access Denied</h1><p>blocked by order</p></body></html>".into(),
            ..Default::default()
        };
        policy.routes.insert("ok.test".into(), origin.addr);
        policy.routes.insert("bad.test".into(), blocked_origin.addr);
        let mb = spawn_middlebox(policy).await.unwrap();

        // Pass.
        let r = fetch_via(mb.addr, "http://ok.test/", Duration::from_secs(2))
            .await
            .unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body.len() > 4_000);

        // Block page.
        mb.set_action("bad.test", MbAction::BlockPage);
        let r = fetch_via(mb.addr, "http://bad.test/", Duration::from_secs(2))
            .await
            .unwrap();
        assert!(std::str::from_utf8(&r.body).unwrap().contains("Access Denied"));

        // Drop: times out.
        mb.set_action("bad.test", MbAction::DropRequest);
        let e = fetch_via(mb.addr, "http://bad.test/", Duration::from_millis(300)).await;
        assert_eq!(e.unwrap_err(), "timeout");

        // Reset: connection dies.
        mb.set_action("bad.test", MbAction::Reset);
        let e = fetch_via(mb.addr, "http://bad.test/", Duration::from_secs(2)).await;
        assert_eq!(e.unwrap_err(), "reset");

        // Flip back to pass mid-run (the §7.5 unblocking event).
        mb.set_action("bad.test", MbAction::Pass);
        let r = fetch_via(mb.addr, "http://bad.test/", Duration::from_secs(2))
            .await
            .unwrap();
        assert_eq!(r.status, 200);
    }

    #[tokio::test]
    async fn unrouted_host_is_bad_gateway() {
        let mb = spawn_middlebox(MbPolicy::default()).await.unwrap();
        let r = fetch_via(mb.addr, "http://nowhere.test/", Duration::from_secs(2))
            .await
            .unwrap();
        assert_eq!(r.status, 502);
    }
}
