//! The testbed resolver: maps hostnames to the two paths a C-Saw client
//! can take — the **direct** address (through the censoring middlebox)
//! and the **clean** address (straight to the origin, standing in for a
//! circumvention tunnel's exit).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::RwLock;

/// Both paths for one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The censored path (via the middlebox).
    pub direct: SocketAddr,
    /// The circumvention path (tunnel exit → origin).
    pub clean: SocketAddr,
}

/// A shared, runtime-mutable host table.
#[derive(Debug, Default)]
pub struct TestResolver {
    table: RwLock<HashMap<String, Resolution>>,
}

impl TestResolver {
    /// An empty resolver.
    pub fn new() -> TestResolver {
        TestResolver::default()
    }

    /// Register a host.
    pub fn insert(&self, host: &str, direct: SocketAddr, clean: SocketAddr) {
        self.table
            .write()
            .unwrap()
            .insert(host.to_ascii_lowercase(), Resolution { direct, clean });
    }

    /// Resolve a host.
    pub fn resolve(&self, host: &str) -> Option<Resolution> {
        self.table
            .read()
            .unwrap()
            .get(&host.to_ascii_lowercase())
            .copied()
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.table.read().unwrap().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.table.read().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_resolve_case_insensitive() {
        let r = TestResolver::new();
        let a: SocketAddr = "127.0.0.1:1000".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:2000".parse().unwrap();
        r.insert("Example.COM", a, b);
        let res = r.resolve("example.com").unwrap();
        assert_eq!(res.direct, a);
        assert_eq!(res.clean, b);
        assert!(r.resolve("other.com").is_none());
        assert_eq!(r.len(), 1);
    }
}
