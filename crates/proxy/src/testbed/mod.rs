//! The localhost testbed: origin servers, a censoring middlebox, and a
//! resolver mapping each host to its direct (censored) and clean
//! (circumvention) paths.

pub mod middlebox;
pub mod origin;
pub mod resolver;

pub use middlebox::{spawn_middlebox, MbAction, MbPolicy, Middlebox};
pub use origin::{spawn_origin, Origin, OriginConfig};
pub use resolver::{Resolution, TestResolver};
