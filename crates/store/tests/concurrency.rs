//! Concurrency and determinism tests for the sharded store.
//!
//! The store's contract is that concurrent ingestion from disjoint
//! clients *commutes*: whatever the interleaving, the quiescent state
//! (record key set, per-key tallies, voter counts) equals a serial
//! reference run, and every batch's receipt (accepted/rejected/deferred
//! indices) is byte-identical to the one the serial run produced. These
//! tests drive N writer threads through interleaved updates and
//! revocations over the per-shard grouped ingest path and compare
//! against the single-threaded model, then check that the shard count
//! (1/4/16) is invisible in the final state.

use csaw_censor::blocking::BlockingType;
use csaw_simnet::time::SimTime;
use csaw_simnet::topology::Asn;
use csaw_store::{
    Batch, ConfidenceFilter, IngestReceipt, Report, ShardedStore, StorageBackend, Uuid,
};

const THREADS: usize = 16;
const CLIENTS_PER_THREAD: usize = 24;
const URLS: usize = 40;
const ASNS: u32 = 6;

/// One scripted operation against the store.
#[derive(Clone)]
enum Op {
    Post(Batch),
    Revoke(Uuid),
}

fn report(url_idx: usize, asn: u32, at: u64) -> Report {
    Report {
        url: format!("http://site{url_idx}.example.org/"),
        asn,
        measured_at_us: at,
        stages: vec![if url_idx.is_multiple_of(2) {
            BlockingType::DnsNxdomain
        } else {
            BlockingType::HttpDrop
        }],
    }
}

/// The scripted per-thread op sequence. Threads own disjoint clients,
/// so ops from different threads commute; within a thread, program
/// order is preserved by the runner. A deterministic xorshift drives
/// URL/AS choices so the script is a pure function of its indices.
fn ops_for_thread(t: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut x = (0x9e37_79b9u64 ^ ((t as u64) << 32)) | 0x1234_5678;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for c in 0..CLIENTS_PER_THREAD {
        let uuid = Uuid::from_raw((t * CLIENTS_PER_THREAD + c + 1) as u64);
        // Two posts per client, interleaved with other clients' ops.
        for round in 0..2u64 {
            let n = 2 + (next() % 3) as usize;
            let reports: Vec<Report> = (0..n)
                .map(|i| {
                    report(
                        (next() as usize) % URLS,
                        (next() as u32) % ASNS,
                        round * 100 + i as u64,
                    )
                })
                .collect();
            ops.push(Op::Post(Batch::new(
                uuid,
                reports,
                SimTime::from_secs(1 + round),
            )));
        }
        // Every third client is revoked after posting; every ninth is
        // revoked *between* its posts by splicing the revoke earlier.
        if c.is_multiple_of(3) {
            ops.push(Op::Revoke(uuid));
        }
        if c.is_multiple_of(9) && ops.len() >= 2 {
            let last_post = ops.len() - 2;
            ops.insert(last_post, Op::Revoke(uuid));
        }
    }
    ops
}

fn apply(store: &ShardedStore, op: &Op) -> Option<IngestReceipt> {
    match op {
        Op::Post(b) => Some(store.ingest(b).expect("scripted batches are well-formed")),
        Op::Revoke(u) => {
            store.revoke(*u);
            None
        }
    }
}

/// One thread's receipt stream, rendered to bytes. Threads own disjoint
/// clients and the runner preserves per-thread program order, so this
/// stream must not depend on cross-thread interleaving at all.
fn receipt_stream(store: &ShardedStore, t: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for op in ops_for_thread(t) {
        if let Some(r) = apply(store, &op) {
            writeln!(
                out,
                "a={} r={} rej={:?} def={:?}",
                r.accepted, r.rejected, r.rejected_indices, r.deferred_indices
            )
            .expect("write to String cannot fail");
        }
    }
    out
}

/// Order-independent projection of the store's quiescent state.
#[derive(Debug, PartialEq)]
struct StateDigest {
    records: usize,
    voters: usize,
    /// Per-AS blocked URL lists under the default filter.
    blocked: Vec<Vec<String>>,
    /// Per-key (n, s-rounded) tallies over the whole keyspace.
    tallies: Vec<(String, u32, usize, u64)>,
}

fn digest(store: &ShardedStore) -> StateDigest {
    let filter = ConfidenceFilter::default();
    let blocked = (0..ASNS)
        .map(|a| {
            store
                .blocked_for_as(Asn(a), &filter)
                .expect("memory backend reads are infallible")
                .into_iter()
                .map(|r| r.url)
                .collect()
        })
        .collect();
    let mut tallies = Vec::new();
    for u in 0..URLS {
        for a in 0..ASNS {
            let url = format!("http://site{u}.example.org/");
            let t = store.tally(&url, Asn(a));
            if t.n > 0 {
                // Quantize s: float summation over UUID-sorted voters is
                // deterministic, but guard the comparison at 1e-9 anyway.
                tallies.push((url.clone(), a, t.n, (t.s * 1e9).round() as u64));
            }
        }
    }
    StateDigest {
        records: store.record_count(),
        voters: store.ledger().voter_count(),
        blocked,
        tallies,
    }
}

fn serial_reference(shards: usize) -> (StateDigest, Vec<String>) {
    let store = ShardedStore::new(shards).expect("shard count is valid");
    let receipts = (0..THREADS).map(|t| receipt_stream(&store, t)).collect();
    (digest(&store), receipts)
}

#[test]
fn concurrent_run_matches_serial_reference() {
    let (reference, ref_receipts) = serial_reference(16);
    // Repeat to give racy interleavings a few chances to show up.
    for round in 0..3 {
        let store = ShardedStore::new(16).expect("shard count is valid");
        let mut receipts: Vec<String> = vec![String::new(); THREADS];
        std::thread::scope(|s| {
            for (t, slot) in receipts.iter_mut().enumerate() {
                let store = &store;
                s.spawn(move || {
                    *slot = receipt_stream(store, t);
                });
            }
        });
        assert_eq!(
            digest(&store),
            reference,
            "round {round}: concurrent state diverged from serial reference"
        );
        for t in 0..THREADS {
            assert_eq!(
                receipts[t], ref_receipts[t],
                "round {round}: thread {t} receipts diverged from serial reference"
            );
        }
    }
}

#[test]
fn final_state_identical_across_shard_counts() {
    let (one, r1) = serial_reference(1);
    let (four, r4) = serial_reference(4);
    let (sixteen, r16) = serial_reference(16);
    assert_eq!(one, four, "1-shard vs 4-shard state differs");
    assert_eq!(one, sixteen, "1-shard vs 16-shard state differs");
    assert_eq!(r1, r4, "receipts must not depend on shard count");
    assert_eq!(r1, r16, "receipts must not depend on shard count");
    // Sanity: the script actually produced work, including revocations.
    assert!(one.records > 0 && one.voters > 0);
    assert!(
        one.voters < THREADS * CLIENTS_PER_THREAD,
        "revocations must have removed some voters"
    );
}

#[test]
fn contention_metrics_deterministic_and_forced_waits_visible() {
    use csaw_obs::{install, ObsCtx, PerfMode};
    use std::sync::Arc;

    // Virtual perf mode: acquisition counts are exact and a serial
    // replay of the same script yields the identical snapshot — the
    // contention layer must not break the determinism contract.
    let counts = |jobs_serial: bool| -> String {
        let ctx = Arc::new(ObsCtx::new().with_perf(PerfMode::Virtual));
        let _g = install(ctx.clone());
        let store = ShardedStore::new(16).expect("shard count is valid");
        if jobs_serial {
            for t in 0..THREADS {
                for op in ops_for_thread(t) {
                    apply(&store, &op);
                }
            }
        } else {
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let store = &store;
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        let _g = install(ctx);
                        for op in ops_for_thread(t) {
                            apply(store, &op);
                        }
                    });
                }
            });
        }
        // Counts only: `contended` and wait histograms legitimately
        // differ between a serial and a racing run even in virtual time.
        let snap = ctx.registry.snapshot();
        let counters = snap.get("counters").expect("snapshot has counters");
        [
            "lock.store.shard.records.write.acquires",
            "lock.store.ledger.clients.write.acquires",
            "lock.store.ledger.keys.write.acquires",
        ]
        .iter()
        .map(|k| {
            format!(
                "{k}={}",
                counters.get(k).and_then(|v| v.as_u64()).unwrap_or(0)
            )
        })
        .collect::<Vec<_>>()
        .join(",")
    };
    let serial = counts(true);
    let parallel = counts(false);
    assert_eq!(
        serial, parallel,
        "virtual-mode acquisition counts must not depend on interleaving"
    );
    assert!(
        !serial.contains("=0"),
        "script must actually exercise the instrumented locks: {serial}"
    );

    // Monotonic perf mode, 8 writers hammering a single shard: the
    // wait histogram must show real queuing on the one write lock.
    // Retried because on a single-core box a whole writer loop can fit
    // inside one scheduler timeslice and never collide.
    let batches_per_thread = 400u64;
    let mut saw_contention = false;
    for _attempt in 0..5 {
        let ctx = Arc::new(ObsCtx::new().with_perf(PerfMode::Monotonic));
        let store = {
            let _g = install(ctx.clone());
            ShardedStore::new(1).expect("shard count is valid")
        };
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let store = &store;
                s.spawn(move || {
                    for c in 0..batches_per_thread {
                        let uuid = Uuid::from_raw(10_000 + t * 10_000 + c);
                        let b = Batch::new(
                            uuid,
                            (0..8).map(|i| report(i, 1, c)).collect(),
                            SimTime::from_secs(1),
                        );
                        store.ingest(&b).expect("well-formed batch");
                    }
                });
            }
        });
        let reg = &ctx.registry;
        assert_eq!(
            reg.counter("lock.store.shard.records.write.acquires").get(),
            8 * batches_per_thread,
            "every batch takes the single shard's write lock exactly once"
        );
        if reg
            .counter("lock.store.shard.records.write.contended")
            .get()
            > 0
            && reg
                .histogram("lock.store.shard.records.write.wait_us")
                .sum_us()
                > 0
        {
            saw_contention = true;
            break;
        }
    }
    assert!(
        saw_contention,
        "8 writers on 1 shard must record contention and nonzero wait"
    );
}

#[test]
fn concurrent_revocations_and_posts_leave_no_ghost_votes() {
    let store = ShardedStore::new(8).expect("shard count is valid");
    // Half the clients post then get revoked by a rival thread; the
    // revoked clients must contribute zero vote mass at quiescence.
    let n_clients = 32usize;
    std::thread::scope(|s| {
        let store = &store;
        s.spawn(move || {
            for c in 0..n_clients {
                let uuid = Uuid::from_raw(1_000 + c as u64);
                let b = Batch::new(
                    uuid,
                    vec![report(c % URLS, (c as u32) % ASNS, c as u64)],
                    SimTime::from_secs(1),
                );
                store.ingest(&b).expect("well-formed batch");
            }
        });
        s.spawn(move || {
            for c in 0..n_clients {
                if c.is_multiple_of(2) {
                    store.revoke(Uuid::from_raw(1_000 + c as u64));
                }
            }
        });
    });
    // Re-revoke serially: after quiescence the evens are certainly out.
    for c in (0..n_clients).step_by(2) {
        store.revoke(Uuid::from_raw(1_000 + c as u64));
    }
    for c in 0..n_clients {
        let uuid = Uuid::from_raw(1_000 + c as u64);
        let mass = store.ledger().client_vote_mass(uuid);
        if c.is_multiple_of(2) {
            assert_eq!(mass, 0.0, "revoked client {c} still has vote mass");
            assert_eq!(store.ledger().report_count(uuid), 0);
        } else {
            assert!(mass > 0.0, "surviving client {c} lost its vote");
        }
    }
}
